//! Cross-crate property-based tests.
//!
//! Hand-rolled property loops over the in-repo deterministic [`Rng`]
//! (64 seeded cases per property) — the workspace builds with zero
//! registry access, so no external proptest dependency.

use eras::linalg::Rng;
use eras::prelude::*;
use eras::sf::canonical;

const CASES: u64 = 64;

/// A random M = 4 block structure (each cell uniform over the 9 ops).
fn random_block_sf(rng: &mut Rng) -> BlockSf {
    let idx: Vec<usize> = (0..16).map(|_| rng.next_below(9)).collect();
    BlockSf::from_indices(4, &idx)
}

/// A random permutation of `0..4` and a random flip mask.
fn random_transform(rng: &mut Rng) -> (Vec<usize>, u32) {
    let mut perm: Vec<usize> = (0..4).collect();
    rng.shuffle(&mut perm);
    (perm, rng.next_below(16) as u32)
}

/// Canonicalisation is idempotent and stable under group transforms.
#[test]
fn canonicalization_idempotent_and_invariant() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1000 + case);
        let sf = random_block_sf(&mut rng);
        let canon = canonical::canonicalize(&sf);
        assert_eq!(canonical::canonicalize(&canon), canon, "case {case}");
        // Any transform of sf has the same canonical form.
        let (perm, flips) = random_transform(&mut rng);
        let transformed = canonical::transform(&sf, &perm, flips);
        assert_eq!(canonical::canonicalize(&transformed), canon, "case {case}");
    }
}

/// Structural invariants survive the symmetry group.
#[test]
fn invariants_stable_under_transform() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2000 + case);
        let sf = random_block_sf(&mut rng);
        let (perm, flips) = random_transform(&mut rng);
        let t = canonical::transform(&sf, &perm, flips);
        assert_eq!(t.num_nonzero(), sf.num_nonzero(), "case {case}");
        assert_eq!(
            t.blocks_used().count_ones(),
            sf.blocks_used().count_ones(),
            "case {case}"
        );
        assert_eq!(t.is_degenerate(), sf.is_degenerate(), "case {case}");
    }
}

/// Expressiveness flags are invariant under the symmetry group —
/// they are properties of the function family, not the encoding.
#[test]
fn expressiveness_invariant_under_transform() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x3000 + case);
        let sf = random_block_sf(&mut rng);
        let (perm, flips) = random_transform(&mut rng);
        let t = canonical::transform(&sf, &perm, flips);
        assert_eq!(
            eras::sf::expressive::analyze(&sf),
            eras::sf::expressive::analyze(&t),
            "case {case}"
        );
    }
}

/// Token encode/decode through the supernet is a bijection on
/// well-formed sequences.
#[test]
fn supernet_token_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x4000 + case);
        let tokens: Vec<usize> = (0..32).map(|_| rng.next_below(9)).collect();
        let supernet = Supernet::new(4, 2);
        let sfs = supernet.decode(&tokens);
        assert_eq!(supernet.encode(&sfs), tokens, "case {case}");
    }
}

/// Scoring is linear in the structure: scoring with a structure whose
/// every op sign is flipped negates the score.
#[test]
fn sign_flip_negates_score() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5000 + case);
        let sf = random_block_sf(&mut rng);
        let emb = Embeddings::init(10, 2, 16, &mut rng);
        let flipped_grid: Vec<Op> = sf.cells().iter().map(|op| op.negate()).collect();
        let flipped = BlockSf::from_grid(4, flipped_grid);
        let model_a = BlockModel::universal(sf, 2);
        let model_b = BlockModel::universal(flipped, 2);
        let t = Triple::new(1, 0, 3);
        let sa = model_a.score_triple(&emb, t);
        let sb = model_b.score_triple(&emb, t);
        assert!(
            (sa + sb).abs() < 1e-4 * (1.0 + sa.abs()),
            "case {case}: {sa} vs {sb}"
        );
    }
}

/// Filtered ranks are within [1, N].
#[test]
fn rank_bounds() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6000 + case);
        let scores: Vec<f32> = (0..20).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let target = rng.next_below(20) as u32;
        let rank = eras::train::eval::filtered_rank(&scores, target, &[]);
        assert!(rank >= 1.0, "case {case}");
        assert!(rank <= scores.len() as f64, "case {case}");
    }
}

/// The QuatE tail-query identity ⟨h ⊗ r̂, t⟩ = ⟨h, t ⊗ r̂*⟩ holds for
/// random embeddings (head/tail query consistency).
#[test]
fn quate_head_tail_query_identity() {
    use eras::train::eval::ScoreModel;
    use eras::train::quate::QuatE;
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x7000 + case);
        let emb = Embeddings::init(8, 2, 8, &mut rng);
        let model = QuatE::new(&emb, 0.1, 2);
        let mut tails = vec![0.0f32; 8];
        let mut heads = vec![0.0f32; 8];
        model.score_all_tails(&emb, 1, 0, &mut tails);
        model.score_all_heads(&emb, 3, 0, &mut heads);
        // score(1, r0, 3) computed both ways must agree.
        assert!(
            (tails[3] - heads[1]).abs() < 1e-3 * (1.0 + tails[3].abs()),
            "case {case}: {} vs {}",
            tails[3],
            heads[1]
        );
    }
}

/// Mined rules never include the trivial identity and always respect
/// the per-relation cap.
#[test]
fn rule_mining_invariants() {
    use eras::rules::{learn_rules, LearnConfig};
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x8000 + case);
        let n_edges = 20 + rng.next_below(60);
        let triples: Vec<Triple> = (0..n_edges)
            .map(|_| {
                Triple::new(
                    rng.next_below(30) as u32,
                    rng.next_below(3) as u32,
                    rng.next_below(30) as u32,
                )
            })
            .collect();
        let graph = eras::rules::graph::Graph::build(&triples, 3);
        let cfg = LearnConfig {
            max_rules_per_relation: 5,
            ..LearnConfig::default()
        };
        let rules = learn_rules(&graph, &cfg);
        let mut counts = std::collections::HashMap::new();
        for s in &rules {
            assert!(!s.rule.is_trivial(), "case {case}");
            assert!(s.confidence >= cfg.min_confidence, "case {case}");
            assert!(s.confidence <= 1.0 + 1e-9, "case {case}");
            *counts.entry(s.rule.head_rel).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 5), "case {case}");
    }
}

/// The generator always produces valid datasets across a range of shapes.
#[test]
fn generator_always_valid() {
    for case in 0..32 {
        let mut rng = Rng::seed_from_u64(0x9000 + case);
        let cfg = GeneratorConfig {
            name: "prop".into(),
            num_entities: 10 + rng.next_below(70),
            num_clusters: 3,
            planted_dim: 3,
            relations: vec![
                RelationSpec {
                    pattern: RelationPattern::Symmetric,
                    num_triples: 10 + rng.next_below(50),
                },
                RelationSpec {
                    pattern: RelationPattern::AntiSymmetric,
                    num_triples: 10 + rng.next_below(50),
                },
            ],
            zipf_exponent: 0.4,
            entity_noise: 0.7,
            noise: 0.05,
            candidate_pool: usize::MAX,
            valid_frac: 0.1,
            test_frac: 0.1,
            seed: case,
        };
        let dataset = generate(&cfg);
        assert!(dataset.validate().is_ok(), "case {case}");
        assert!(!dataset.train.is_empty(), "case {case}");
    }
}
