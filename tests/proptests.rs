//! Cross-crate property-based tests (proptest).

use eras::linalg::Rng;
use eras::prelude::*;
use eras::sf::canonical;
use proptest::prelude::*;

/// Strategy: a random op index for M = 4 (0..9).
fn op_index() -> impl Strategy<Value = usize> {
    0usize..9
}

/// Strategy: a random M = 4 block structure.
fn block_sf() -> impl Strategy<Value = BlockSf> {
    proptest::collection::vec(op_index(), 16).prop_map(|idx| BlockSf::from_indices(4, &idx))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalisation is idempotent and stable under group transforms.
    #[test]
    fn canonicalization_idempotent_and_invariant(sf in block_sf(), perm_seed in 0u64..1000, flips in 0u32..16) {
        let canon = canonical::canonicalize(&sf);
        prop_assert_eq!(canonical::canonicalize(&canon), canon.clone());
        // Any transform of sf has the same canonical form.
        let mut rng = Rng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..4).collect();
        rng.shuffle(&mut perm);
        let transformed = canonical::transform(&sf, &perm, flips);
        prop_assert_eq!(canonical::canonicalize(&transformed), canon);
    }

    /// Structural invariants survive the symmetry group.
    #[test]
    fn invariants_stable_under_transform(sf in block_sf(), seed in 0u64..1000, flips in 0u32..16) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..4).collect();
        rng.shuffle(&mut perm);
        let t = canonical::transform(&sf, &perm, flips);
        prop_assert_eq!(t.num_nonzero(), sf.num_nonzero());
        prop_assert_eq!(t.blocks_used().count_ones(), sf.blocks_used().count_ones());
        prop_assert_eq!(t.is_degenerate(), sf.is_degenerate());
    }

    /// Expressiveness flags are invariant under the symmetry group —
    /// they are properties of the function family, not the encoding.
    #[test]
    fn expressiveness_invariant_under_transform(sf in block_sf(), seed in 0u64..1000, flips in 0u32..16) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..4).collect();
        rng.shuffle(&mut perm);
        let t = canonical::transform(&sf, &perm, flips);
        let ea = eras::sf::expressive::analyze(&sf);
        let eb = eras::sf::expressive::analyze(&t);
        prop_assert_eq!(ea, eb);
    }

    /// Token encode/decode through the supernet is a bijection on
    /// well-formed sequences.
    #[test]
    fn supernet_token_roundtrip(tokens in proptest::collection::vec(op_index(), 32)) {
        let supernet = Supernet::new(4, 2);
        let sfs = supernet.decode(&tokens);
        prop_assert_eq!(supernet.encode(&sfs), tokens);
    }

    /// Scoring is linear in the structure: scoring with a structure whose
    /// every op sign is flipped negates the score.
    #[test]
    fn sign_flip_negates_score(sf in block_sf(), seed in 0u64..1000) {
        let mut rng = Rng::seed_from_u64(seed);
        let emb = Embeddings::init(10, 2, 16, &mut rng);
        let flipped_grid: Vec<Op> = sf.cells().iter().map(|op| op.negate()).collect();
        let flipped = BlockSf::from_grid(4, flipped_grid);
        let model_a = BlockModel::universal(sf, 2);
        let model_b = BlockModel::universal(flipped, 2);
        let t = Triple::new(1, 0, 3);
        let sa = model_a.score_triple(&emb, t);
        let sb = model_b.score_triple(&emb, t);
        prop_assert!((sa + sb).abs() < 1e-4 * (1.0 + sa.abs()));
    }

    /// Filtered ranks are within [1, N] and reciprocal ranks aggregate to
    /// an MRR within (0, 1].
    #[test]
    fn rank_bounds(scores in proptest::collection::vec(-100.0f32..100.0, 20), target in 0u32..20) {
        let rank = eras::train::eval::filtered_rank(&scores, target, &[]);
        prop_assert!(rank >= 1.0);
        prop_assert!(rank <= scores.len() as f64);
    }

    /// Quaternion-style rotation scoring (QuatE) preserves candidate
    /// ordering under global score shifts... more precisely: the
    /// tail-query identity ⟨h ⊗ r̂, t⟩ = ⟨h, t ⊗ r̂*⟩ holds for random
    /// embeddings (head/tail query consistency).
    #[test]
    fn quate_head_tail_query_identity(seed in 0u64..500) {
        use eras::train::quate::QuatE;
        use eras::train::eval::ScoreModel;
        let mut rng = Rng::seed_from_u64(seed);
        let emb = Embeddings::init(8, 2, 8, &mut rng);
        let model = QuatE::new(&emb, 0.1, 2);
        let mut tails = vec![0.0f32; 8];
        let mut heads = vec![0.0f32; 8];
        model.score_all_tails(&emb, 1, 0, &mut tails);
        model.score_all_heads(&emb, 3, 0, &mut heads);
        // score(1, r0, 3) computed both ways must agree.
        prop_assert!((tails[3] - heads[1]).abs() < 1e-3 * (1.0 + tails[3].abs()));
    }

    /// Mined rules never include the trivial identity and always respect
    /// the per-relation cap.
    #[test]
    fn rule_mining_invariants(seed in 0u64..50, n_edges in 20usize..80) {
        use eras::rules::{learn_rules, LearnConfig};
        let mut rng = Rng::seed_from_u64(seed);
        let triples: Vec<Triple> = (0..n_edges)
            .map(|_| Triple::new(
                rng.next_below(30) as u32,
                rng.next_below(3) as u32,
                rng.next_below(30) as u32,
            ))
            .collect();
        let graph = eras::rules::graph::Graph::build(&triples, 3);
        let cfg = LearnConfig { max_rules_per_relation: 5, ..LearnConfig::default() };
        let rules = learn_rules(&graph, &cfg);
        let mut counts = std::collections::HashMap::new();
        for s in &rules {
            prop_assert!(!s.rule.is_trivial());
            prop_assert!(s.confidence >= cfg.min_confidence);
            prop_assert!(s.confidence <= 1.0 + 1e-9);
            *counts.entry(s.rule.head_rel).or_insert(0usize) += 1;
        }
        prop_assert!(counts.values().all(|&c| c <= 5));
    }

    /// The generator always produces valid datasets across a range of
    /// shapes.
    #[test]
    fn generator_always_valid(
        num_entities in 10usize..80,
        seed in 0u64..50,
        sym in 10usize..60,
        anti in 10usize..60,
    ) {
        let cfg = GeneratorConfig {
            name: "prop".into(),
            num_entities,
            num_clusters: 3,
            planted_dim: 3,
            relations: vec![
                RelationSpec { pattern: RelationPattern::Symmetric, num_triples: sym },
                RelationSpec { pattern: RelationPattern::AntiSymmetric, num_triples: anti },
            ],
            zipf_exponent: 0.4,
            entity_noise: 0.7,
            noise: 0.05,
            candidate_pool: usize::MAX,
            valid_frac: 0.1,
            test_frac: 0.1,
            seed,
        };
        let dataset = generate(&cfg);
        prop_assert!(dataset.validate().is_ok());
        prop_assert!(!dataset.train.is_empty());
    }
}
