//! Integration tests pinning the paper's qualitative claims at the
//! pattern level (the Section III-A motivation) on synthetic data.

use eras::prelude::*;

fn trained_pattern_hits1(
    sf: BlockSf,
    dataset: &Dataset,
    filter: &FilterIndex,
    pattern: RelationPattern,
) -> f64 {
    let cfg = TrainConfig {
        dim: 32,
        max_epochs: 30,
        eval_every: 10,
        patience: 2,
        ..TrainConfig::default()
    };
    let model = BlockModel::universal(sf, dataset.num_relations());
    let outcome = train_standalone(&model, dataset, filter, &cfg);
    let triples = dataset.test_triples_with_pattern(pattern);
    assert!(!triples.is_empty(), "{pattern:?} slice empty");
    link_prediction(&model, &outcome.embeddings, &triples, filter).mrr
}

/// DistMult is structurally symmetric: on symmetric relations it should
/// be competitive, while on anti-symmetric relations the universal
/// ComplEx must clearly beat it (the Table III shape).
#[test]
fn complex_beats_distmult_on_antisymmetric_relations() {
    let dataset = Preset::Tiny.build(200);
    let filter = FilterIndex::build(&dataset);

    let dm_anti = trained_pattern_hits1(
        zoo::distmult(4),
        &dataset,
        &filter,
        RelationPattern::AntiSymmetric,
    );
    let cx_anti = trained_pattern_hits1(
        zoo::complex(),
        &dataset,
        &filter,
        RelationPattern::AntiSymmetric,
    );
    assert!(
        cx_anti > dm_anti,
        "ComplEx ({cx_anti:.3}) should beat DistMult ({dm_anti:.3}) on anti-symmetric MRR"
    );
}

/// Both models handle symmetric relations; DistMult must not collapse
/// there (it is the symmetric specialist).
#[test]
fn distmult_is_competitive_on_symmetric_relations() {
    let dataset = Preset::Tiny.build(201);
    let filter = FilterIndex::build(&dataset);
    let dm_sym = trained_pattern_hits1(
        zoo::distmult(4),
        &dataset,
        &filter,
        RelationPattern::Symmetric,
    );
    // Chance MRR over 150 entities ≈ 0.03; require clear learning.
    assert!(
        dm_sym > 0.15,
        "DistMult should learn symmetric relations well, got MRR {dm_sym:.3}"
    );
}

/// The empirical pattern detector must recover the generator's labels on
/// a fresh dataset (cross-crate: generator → patterns).
#[test]
fn detector_recovers_planted_pattern_labels() {
    let dataset = Preset::Tiny.build(202);
    let detected = eras::data::patterns::detect_patterns(&dataset);
    let mut agree = 0usize;
    let mut total = 0usize;
    for (rel, (&truth, &found)) in dataset.pattern_labels.iter().zip(&detected).enumerate() {
        total += 1;
        // Composition and general-asymmetric both detect as asymmetric
        // variants; require exact agreement only on the sharp classes.
        match truth {
            RelationPattern::Symmetric | RelationPattern::Inverse => {
                if truth == found {
                    agree += 1;
                } else {
                    panic!("relation {rel}: planted {truth:?}, detected {found:?}");
                }
            }
            _ => {
                agree += 1;
            }
        }
    }
    assert_eq!(agree, total);
}
