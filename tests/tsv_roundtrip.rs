//! Integration test: a generated dataset written in the standard
//! benchmark TSV layout reloads into an equivalent dataset — the path a
//! user with the real WN18/FB15k files would take.

use eras::data::tsv;
use eras::prelude::*;
use std::fmt::Write as _;

fn write_split(dir: &std::path::Path, file: &str, dataset: &Dataset, triples: &[Triple]) {
    let mut buf = String::new();
    for t in triples {
        let _ = writeln!(
            buf,
            "{}\t{}\t{}",
            dataset.entities.name(t.head),
            dataset.relations.name(t.rel),
            dataset.entities.name(t.tail)
        );
    }
    std::fs::write(dir.join(file), buf).unwrap();
}

#[test]
fn generated_dataset_roundtrips_through_tsv() {
    let original = Preset::Tiny.build(300);
    let dir = std::env::temp_dir().join(format!("eras_it_tsv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    write_split(&dir, "train.txt", &original, &original.train);
    write_split(&dir, "valid.txt", &original, &original.valid);
    write_split(&dir, "test.txt", &original, &original.test);

    let reloaded = tsv::load_dir(&dir, "roundtrip").unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert!(reloaded.validate().is_ok());
    assert_eq!(reloaded.num_entities(), original.num_entities());
    assert_eq!(reloaded.num_relations(), original.num_relations());
    assert_eq!(reloaded.train.len(), original.train.len());
    assert_eq!(reloaded.valid.len(), original.valid.len());
    assert_eq!(reloaded.test.len(), original.test.len());

    // Triple sets agree after translating through the (possibly
    // re-ordered) vocabularies.
    let translate = |t: &Triple, from: &Dataset, to: &Dataset| -> Triple {
        Triple::new(
            to.entities.id(from.entities.name(t.head)).unwrap(),
            to.relations.id(from.relations.name(t.rel)).unwrap(),
            to.entities.id(from.entities.name(t.tail)).unwrap(),
        )
    };
    let mut orig_train: Vec<Triple> = original
        .train
        .iter()
        .map(|t| translate(t, &original, &reloaded))
        .collect();
    let mut re_train = reloaded.train.clone();
    orig_train.sort();
    re_train.sort();
    assert_eq!(orig_train, re_train);

    // Training on the reloaded dataset behaves the same as on the
    // original (same data, same seed ⇒ same metrics up to id relabeling;
    // we check coarse equality of MRR).
    let cfg = TrainConfig {
        dim: 16,
        max_epochs: 8,
        eval_every: 4,
        patience: 2,
        ..TrainConfig::default()
    };
    let filter_a = FilterIndex::build(&original);
    let filter_b = FilterIndex::build(&reloaded);
    let model_a = BlockModel::universal(zoo::simple(), original.num_relations());
    let model_b = BlockModel::universal(zoo::simple(), reloaded.num_relations());
    let out_a = train_standalone(&model_a, &original, &filter_a, &cfg);
    let out_b = train_standalone(&model_b, &reloaded, &filter_b, &cfg);
    assert!(
        (out_a.test.mrr - out_b.test.mrr).abs() < 0.08,
        "reloaded dataset trains very differently: {} vs {}",
        out_a.test.mrr,
        out_b.test.mrr
    );
}
