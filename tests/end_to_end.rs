//! Cross-crate integration tests: the full ERAS pipeline through the
//! facade API.

use eras::prelude::*;

#[test]
fn eras_pipeline_produces_consistent_artifacts() {
    let dataset = Preset::Tiny.build(100);
    let filter = FilterIndex::build(&dataset);
    let cfg = ErasConfig {
        n_groups: 2,
        epochs: 6,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);

    // Structures, assignment and model agree with each other.
    assert_eq!(outcome.sfs.len(), cfg.n_groups);
    assert_eq!(outcome.assignment.len(), dataset.num_relations());
    assert_eq!(outcome.model.sfs(), outcome.sfs.as_slice());
    assert_eq!(outcome.model.assignment(), outcome.assignment.as_slice());

    // The exploitative constraint holds on the derived set.
    let supernet = Supernet::new(cfg.m, cfg.n_groups);
    assert!(supernet.satisfies_exploitative_constraint(&outcome.sfs));

    // Retrained embeddings have the retrain dimension and score finitely.
    assert_eq!(outcome.embeddings.dim(), cfg.retrain.dim);
    let t = dataset.test[0];
    assert!(outcome
        .model
        .score_triple(&outcome.embeddings, t)
        .is_finite());

    // Metrics are proper probabilities-ish and the trace is non-trivial.
    for m in [outcome.valid, outcome.test] {
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        assert!(m.hits1 <= m.hits3 && m.hits3 <= m.hits10);
    }
    assert_eq!(outcome.search_trace.len(), cfg.epochs);
}

#[test]
fn eras_runs_are_reproducible_through_the_facade() {
    let dataset = Preset::Tiny.build(101);
    let filter = FilterIndex::build(&dataset);
    let cfg = ErasConfig {
        epochs: 3,
        ..ErasConfig::fast()
    };
    let a = run_eras(&dataset, &filter, &cfg, Variant::Full);
    let b = run_eras(&dataset, &filter, &cfg, Variant::Full);
    assert_eq!(a.sfs, b.sfs);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.test.mrr, b.test.mrr);
    assert_eq!(a.search_trace.points.len(), b.search_trace.points.len());
    for (pa, pb) in a.search_trace.points.iter().zip(&b.search_trace.points) {
        assert_eq!(pa.candidate_mrr, pb.candidate_mrr);
    }
}

#[test]
fn every_ablation_variant_completes() {
    let dataset = Preset::Tiny.build(102);
    let filter = FilterIndex::build(&dataset);
    let cfg = ErasConfig {
        epochs: 2,
        n_groups: 2,
        derive_k: 2,
        derive_screen: 1,
        ..ErasConfig::fast()
    };
    for variant in Variant::ablations() {
        let outcome = run_eras(&dataset, &filter, &cfg, variant);
        assert!(
            outcome.test.mrr.is_finite() && outcome.test.mrr > 0.0,
            "{variant:?} produced mrr {}",
            outcome.test.mrr
        );
    }
}

#[test]
fn searched_model_classifies_triplets() {
    let dataset = Preset::Tiny.build(103);
    let filter = FilterIndex::build(&dataset);
    let cfg = ErasConfig {
        epochs: 6,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
    let acc = classify_dataset(&outcome.model, &outcome.embeddings, &dataset, &filter, 5);
    assert!(
        acc > 0.5,
        "trained searched model should classify better than coin flips, got {acc}"
    );
}
