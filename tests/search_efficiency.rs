//! Integration test for the paper's headline efficiency claim
//! (Figure 2 / Table IX): the one-shot supernet search completes far
//! faster than a stand-alone searcher given a comparable number of
//! candidate evaluations, because it never trains candidates from
//! scratch.

use eras::prelude::*;
use eras::search::evaluator::SearchBudget;
use eras::search::random;
use std::time::Instant;

#[test]
fn one_shot_search_is_much_faster_than_standalone() {
    let dataset = Preset::Tiny.build(400);
    let filter = FilterIndex::build(&dataset);

    // Stand-alone: 10 random candidates, each trained for 8 epochs.
    let train_cfg = TrainConfig {
        dim: 16,
        max_epochs: 8,
        eval_every: 8,
        patience: 1,
        ..TrainConfig::default()
    };
    let started = Instant::now();
    let standalone = random::search(
        &dataset,
        &filter,
        &train_cfg,
        4,
        8,
        1,
        SearchBudget {
            max_evaluations: 10,
            max_seconds: f64::INFINITY,
        },
    );
    let standalone_secs = started.elapsed().as_secs_f64();
    assert_eq!(standalone.evaluations, 10);

    // One-shot: ERAS evaluates 10 epochs × 2 updates × 4 samples = 80
    // candidate rewards against ONE shared embedding set.
    let cfg = ErasConfig {
        epochs: 10,
        ctrl_updates_per_epoch: 2,
        u_samples: 4,
        derive_k: 2,
        derive_screen: 1,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);

    // The supernet phase must finish under the stand-alone search
    // despite evaluating 8x the candidates.
    assert!(
        outcome.search_secs < standalone_secs,
        "one-shot search {:.2}s should be under stand-alone {:.2}s",
        outcome.search_secs,
        standalone_secs
    );

    // And per candidate evaluation it must be far cheaper — the paper
    // reports >10x (Table IX); we assert a conservative 3x so the test
    // stays robust to CI noise and to kernel speedups that accelerate
    // the stand-alone denominator as well.
    let one_shot_evals = (cfg.epochs * cfg.ctrl_updates_per_epoch * cfg.u_samples) as f64;
    assert!(one_shot_evals >= 10.0);
    let per_one_shot = outcome.search_secs / one_shot_evals;
    let per_standalone = standalone_secs / standalone.evaluations as f64;
    assert!(
        per_one_shot * 3.0 < per_standalone,
        "one-shot {:.3}s/candidate should be well under stand-alone {:.3}s/candidate",
        per_one_shot,
        per_standalone
    );
}
