//! # eras — Efficient Relation-aware Scoring Function Search for KG Embedding
//!
//! A from-scratch Rust reproduction of **ERAS** (Di, Yao, Zhang, Chen —
//! ICDE 2021): automated search for *relation-aware* scoring functions in
//! knowledge-graph embedding, together with the complete substrate it
//! needs (embedding training engine, baseline models, the AutoSF / random
//! / Bayes search baselines, synthetic benchmark generators) and a
//! harness that regenerates every table and figure of the paper's
//! evaluation section.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace and provides a [`prelude`]. See `README.md` for the
//! architecture overview and `DESIGN.md` for the system inventory.
//!
//! ## Quickstart
//!
//! ```
//! use eras::prelude::*;
//!
//! // A small synthetic KG with labelled relation patterns.
//! let dataset = Preset::Tiny.build(7);
//! let filter = FilterIndex::build(&dataset);
//!
//! // Search relation-aware scoring functions with ERAS.
//! let cfg = ErasConfig { n_groups: 2, epochs: 2, ..ErasConfig::fast() };
//! let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
//! assert_eq!(outcome.sfs.len(), 2);
//! println!("test MRR = {:.3}", outcome.test.mrr);
//! ```

pub use eras_audit as audit;
pub use eras_ctrl as ctrl;
pub use eras_data as data;
pub use eras_linalg as linalg;
pub use eras_obs as obs;
pub use eras_rules as rules;
pub use eras_search as search;
pub use eras_serve as serve;
pub use eras_sf as sf;
pub use eras_train as train;

/// The paper's primary contribution: the ERAS algorithm itself.
pub mod eras_algorithm {
    pub use eras_core::*;
}

/// The most common imports in one place.
pub mod prelude {
    pub use eras_core::algorithm::{run_eras, ErasOutcome};
    pub use eras_core::config::ErasConfig;
    pub use eras_core::correlation::{one_shot_vs_standalone, OneShotMeasure};
    pub use eras_core::supernet::Supernet;
    pub use eras_core::variants::Variant;
    pub use eras_data::generator::{generate, GeneratorConfig, RelationSpec};
    pub use eras_data::{Dataset, FilterIndex, Preset, RelationPattern, Triple};
    pub use eras_linalg::Rng;
    pub use eras_rules::{LearnConfig, RuleModel};
    pub use eras_serve::{Answer, Direction, Query, QueryEngine};
    pub use eras_sf::{render, zoo, BlockSf, Op};
    pub use eras_train::classify::classify_dataset;
    pub use eras_train::eval::{
        link_prediction, link_prediction_by_pattern, LinkPredictionMetrics, ScoreModel,
    };
    pub use eras_train::io::Snapshot;
    pub use eras_train::trainer::{train_standalone, TrainConfig};
    pub use eras_train::{BlockModel, Embeddings, LossMode};
}
