#!/bin/sh
# Regenerate every table and figure of the paper sequentially.
# Usage: scripts/run_all_experiments.sh [--quick]
# Logs to results/<name>.log, JSON to results/<name>.json.
set -u
QUICK="${1:-}"
mkdir -p results
for bin in table1 table7 table6 fig2 table9 table3 table8 table10 table11 fig5 fig3_4 fig6 fig7 ablation_impl; do
    echo "== $bin =="
    if [ -n "$QUICK" ]; then
        cargo run --release -p eras-bench --bin "$bin" -- --quick \
            >"results/$bin.log" 2>"results/$bin.err"
    else
        cargo run --release -p eras-bench --bin "$bin" \
            >"results/$bin.log" 2>"results/$bin.err"
    fi
    echo "   done (results/$bin.log)"
done
