//! Link prediction with fixed (human-designed) scoring functions.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```
//!
//! Trains the bilinear zoo — DistMult, ComplEx, SimplE, Analogy — on the
//! WN18RR-like synthetic benchmark and prints filtered MRR / Hit@k, the
//! classic evaluation protocol of the paper's Table VI.

use eras::prelude::*;

fn main() {
    let dataset = Preset::Wn18rr.build(7);
    let filter = FilterIndex::build(&dataset);
    println!(
        "dataset {}: {} entities, {} relations, {} train triples\n",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.train.len()
    );

    let cfg = TrainConfig {
        dim: 32,
        max_epochs: 40,
        eval_every: 5,
        patience: 3,
        ..TrainConfig::default()
    };

    println!(
        "{:<10} | {:>6} | {:>7} | {:>7} | {:>8}",
        "model", "MRR", "Hit@1", "Hit@10", "time (s)"
    );
    println!("{}", "-".repeat(50));
    for (name, sf) in zoo::all_m4() {
        let model = BlockModel::universal(sf, dataset.num_relations());
        let started = std::time::Instant::now();
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        println!(
            "{:<10} | {:>6.3} | {:>6.1}% | {:>6.1}% | {:>8.1}",
            name,
            outcome.test.mrr,
            100.0 * outcome.test.hits1,
            100.0 * outcome.test.hits10,
            started.elapsed().as_secs_f64()
        );
    }
}
