//! Quickstart: search relation-aware scoring functions on a small KG.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small synthetic knowledge graph with labelled relation
//! patterns, runs the ERAS search (Algorithm 2 of the paper), prints the
//! searched scoring functions per relation group (the paper's Figures
//! 3/4 view) and the final link-prediction metrics.

use eras::prelude::*;

fn main() {
    // 1. Data: a ~150-entity KG with symmetric, anti-symmetric, inverse
    //    and generally-asymmetric relations (ground-truth labelled).
    let dataset = Preset::Tiny.build(42);
    let filter = FilterIndex::build(&dataset);
    println!(
        "dataset {}: {} entities, {} relations, {} train / {} valid / {} test triples\n",
        dataset.name,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.train.len(),
        dataset.valid.len(),
        dataset.test.len(),
    );

    // 2. Search: 3 relation groups, small budget (seconds on a laptop).
    let cfg = ErasConfig {
        n_groups: 3,
        epochs: 20,
        ..ErasConfig::fast()
    };
    println!(
        "searching {} relation-aware scoring functions (search space ~10^{:.0})...",
        cfg.n_groups,
        Supernet::new(cfg.m, cfg.n_groups).log10_space_size()
    );
    let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);

    // 3. Report: the searched functions and their relation groups.
    for (group, sf) in outcome.sfs.iter().enumerate() {
        let members: Vec<&str> = outcome
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, &g)| g as usize == group)
            .map(|(r, _)| dataset.relations.name(r as u32))
            .collect();
        println!("{}", render::render_group(group, sf, &members));
    }

    println!(
        "search took {:.1}s, derivation + retraining {:.1}s",
        outcome.search_secs, outcome.evaluation_secs
    );
    println!(
        "link prediction (test): MRR {:.3}  Hit@1 {:.1}%  Hit@10 {:.1}%",
        outcome.test.mrr,
        100.0 * outcome.test.hits1,
        100.0 * outcome.test.hits10
    );
}
