//! The paper's motivating observation (Section III-A): universal scoring
//! functions trade performance across relation patterns.
//!
//! ```sh
//! cargo run --release --example relation_patterns
//! ```
//!
//! Trains DistMult (symmetric-only) and ComplEx (universal) on a
//! pattern-labelled synthetic KG and slices Hit@1 by ground-truth
//! relation pattern — the Table III view — then runs relation-aware ERAS
//! and shows the Table VIII view.

use eras::prelude::*;

fn pattern_report<M: ScoreModel>(
    name: &str,
    model: &M,
    emb: &Embeddings,
    dataset: &Dataset,
    filter: &FilterIndex,
) {
    println!("{name}:");
    for (pattern, metrics) in link_prediction_by_pattern(model, emb, dataset, filter) {
        println!(
            "  {:<20} Hit@1 {:>5.1}%   MRR {:.3}   ({} queries)",
            pattern.label(),
            100.0 * metrics.hits1,
            metrics.mrr,
            metrics.count
        );
    }
    println!();
}

fn main() {
    let dataset = Preset::Tiny.build(3);
    let filter = FilterIndex::build(&dataset);
    let cfg = TrainConfig {
        dim: 32,
        max_epochs: 40,
        eval_every: 5,
        patience: 3,
        ..TrainConfig::default()
    };

    // DistMult can only model symmetric relations; ComplEx models all
    // four patterns. Watch the anti-symmetric rows.
    for (name, sf) in [("DistMult", zoo::distmult(4)), ("ComplEx", zoo::complex())] {
        let model = BlockModel::universal(sf, dataset.num_relations());
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        pattern_report(name, &model, &outcome.embeddings, &dataset, &filter);
    }

    // Relation-aware ERAS: one searched function per relation group.
    let eras_cfg = ErasConfig {
        n_groups: 3,
        epochs: 20,
        retrain: cfg,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &eras_cfg, Variant::Full);
    pattern_report(
        "ERAS (relation-aware)",
        &outcome.model,
        &outcome.embeddings,
        &dataset,
        &filter,
    );
}
