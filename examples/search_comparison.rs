//! Search-efficiency comparison (the paper's Figure 2, in miniature).
//!
//! ```sh
//! cargo run --release --example search_comparison
//! ```
//!
//! Runs ERAS (one-shot, embedding-shared) against the stand-alone
//! searchers — AutoSF's progressive greedy, random search and TPE — under
//! a small evaluation budget and prints each method's best validation MRR
//! and wall-clock time.

use eras::prelude::*;
use eras::search::autosf::{self, AutoSfConfig};
use eras::search::evaluator::SearchBudget;
use eras::search::{random, tpe};

fn main() {
    let dataset = Preset::Tiny.build(5);
    let filter = FilterIndex::build(&dataset);
    let train_cfg = TrainConfig {
        dim: 16,
        max_epochs: 10,
        eval_every: 5,
        patience: 2,
        ..TrainConfig::default()
    };
    let budget = SearchBudget {
        max_evaluations: 12,
        max_seconds: f64::INFINITY,
    };

    println!(
        "search comparison on {} (budget: 12 stand-alone evaluations)\n",
        dataset.name
    );
    println!(
        "{:<10} | {:>9} | {:>6} | {:>8}",
        "method", "evals", "MRR", "time (s)"
    );
    println!("{}", "-".repeat(42));

    let started = std::time::Instant::now();
    let autosf = autosf::search(
        &dataset,
        &filter,
        &train_cfg,
        &AutoSfConfig::default(),
        budget,
    );
    println!(
        "{:<10} | {:>9} | {:>6.3} | {:>8.1}",
        "AutoSF",
        autosf.evaluations,
        autosf.best_mrr,
        started.elapsed().as_secs_f64()
    );

    let started = std::time::Instant::now();
    let rand_result = random::search(&dataset, &filter, &train_cfg, 4, 8, 0, budget);
    println!(
        "{:<10} | {:>9} | {:>6.3} | {:>8.1}",
        "Random",
        rand_result.evaluations,
        rand_result.best_mrr,
        started.elapsed().as_secs_f64()
    );

    let started = std::time::Instant::now();
    let tpe_result = tpe::search(
        &dataset,
        &filter,
        &train_cfg,
        &tpe::TpeConfig::default(),
        budget,
    );
    println!(
        "{:<10} | {:>9} | {:>6.3} | {:>8.1}",
        "Bayes",
        tpe_result.evaluations,
        tpe_result.best_mrr,
        started.elapsed().as_secs_f64()
    );

    // ERAS trains ONE shared supernet instead of 12 stand-alone models.
    let started = std::time::Instant::now();
    let cfg = ErasConfig {
        n_groups: 2,
        epochs: 15,
        retrain: train_cfg,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
    println!(
        "{:<10} | {:>9} | {:>6.3} | {:>8.1}",
        "ERAS",
        "(one-shot)",
        outcome.valid.mrr,
        started.elapsed().as_secs_f64()
    );
}
