//! Triplet classification (the paper's second task, Table X).
//!
//! ```sh
//! cargo run --release --example triplet_classification
//! ```
//!
//! Trains several scoring functions, fits relation-specific decision
//! thresholds on validation, and reports test accuracy against sampled
//! filtered negatives.

use eras::prelude::*;

fn main() {
    let dataset = Preset::Tiny.build(17);
    let filter = FilterIndex::build(&dataset);
    let cfg = TrainConfig {
        dim: 32,
        max_epochs: 40,
        eval_every: 5,
        patience: 3,
        ..TrainConfig::default()
    };

    println!("triplet classification on {}\n", dataset.name);
    println!("{:<10} | {:>9}", "model", "accuracy");
    println!("{}", "-".repeat(24));
    for (name, sf) in zoo::all_m4() {
        let model = BlockModel::universal(sf, dataset.num_relations());
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        let acc = classify_dataset(&model, &outcome.embeddings, &dataset, &filter, 99);
        println!("{:<10} | {:>8.1}%", name, 100.0 * acc);
    }

    let eras_cfg = ErasConfig {
        n_groups: 2,
        epochs: 15,
        retrain: cfg,
        ..ErasConfig::fast()
    };
    let outcome = run_eras(&dataset, &filter, &eras_cfg, Variant::Full);
    let acc = classify_dataset(&outcome.model, &outcome.embeddings, &dataset, &filter, 99);
    println!("{:<10} | {:>8.1}%", "ERAS", 100.0 * acc);
}
