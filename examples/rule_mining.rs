//! Rule mining on a leaky benchmark: why AnyBURL embarrasses embeddings
//! on WN18.
//!
//! ```sh
//! cargo run --release --example rule_mining
//! ```
//!
//! WN18's inverse relation pairs mean the reverse of many test triples
//! sits in the training set under the partner relation. A single learned
//! inversion rule exploits that perfectly — the reason the paper's
//! Table VI shows the rule-based AnyBURL matching billion-parameter
//! embedding models on WN18 while trailing on the de-leaked FB15k-237.

use eras::prelude::*;

fn mrr_on(dataset: &Dataset, model: &RuleModel, pattern: RelationPattern) -> Option<f64> {
    let triples = dataset.test_triples_with_pattern(pattern);
    if triples.is_empty() {
        return None;
    }
    let filter = FilterIndex::build(dataset);
    let emb = model.dummy_embeddings();
    Some(link_prediction(model, &emb, &triples, &filter).mrr)
}

fn main() {
    for preset in [Preset::Wn18, Preset::Fb15k237] {
        let dataset = preset.build(7);
        println!("=== {} ===", dataset.name);
        let started = std::time::Instant::now();
        let model = RuleModel::learn(&dataset, &LearnConfig::default());
        println!(
            "mined {} rules in {:.1}s; strongest per relation:",
            model.num_rules(),
            started.elapsed().as_secs_f64()
        );
        for rel in 0..dataset.num_relations() as u32 {
            if let Some(best) = model.rules_for(rel).first() {
                println!(
                    "  {:<30} conf {:.2}  {}",
                    dataset.relations.name(rel),
                    best.confidence,
                    best.rule
                );
            }
        }
        for pattern in [
            RelationPattern::Inverse,
            RelationPattern::Symmetric,
            RelationPattern::GeneralAsymmetric,
        ] {
            if let Some(mrr) = mrr_on(&dataset, &model, pattern) {
                println!("  test MRR on {:<20} {:.3}", pattern.label(), mrr);
            }
        }
        println!();
    }
    println!(
        "shape: rules ace the inverse/symmetric slices of the leaky dataset and\n\
         collapse on generally-asymmetric relations — the paper's AnyBURL row."
    );
}
