//! Structural analysis of the benchmark stand-ins.
//!
//! ```sh
//! cargo run --release --example dataset_analysis
//! ```
//!
//! Prints, per dataset: split sizes (Table VII), the TransH-style relation
//! cardinality histogram (1-1 / 1-N / N-1 / N-N), entity-degree skew, and
//! the relation-pattern composition — the structural facts the paper's
//! motivation (Section III) builds on.

use eras::data::analysis::{cardinality_histogram, degree_stats};
use eras::data::stats::{dataset_stats, stats_header};
use eras::prelude::*;

fn main() {
    println!("{}", stats_header());
    for preset in Preset::paper_benchmarks() {
        let d = preset.build(7);
        println!("{}", dataset_stats(&d));
    }
    println!();

    for preset in Preset::paper_benchmarks() {
        let d = preset.build(7);
        println!("=== {} ===", d.name);

        let hist = cardinality_histogram(&d);
        let cards: Vec<String> = hist
            .iter()
            .map(|(c, n)| format!("{} x{}", c.label(), n))
            .collect();
        println!("  relation cardinalities: {}", cards.join(", "));

        let s = degree_stats(&d.train, d.num_entities());
        println!(
            "  entity degree: mean {:.1}, median {}, max {}, gini {:.2}, isolated {:.1}%",
            s.mean,
            s.median,
            s.max,
            s.gini,
            100.0 * s.isolated_frac
        );

        let mut pattern_counts = std::collections::HashMap::new();
        for p in &d.pattern_labels {
            *pattern_counts.entry(p.label()).or_insert(0usize) += 1;
        }
        let mut patterns: Vec<_> = pattern_counts.into_iter().collect();
        patterns.sort();
        let rendered: Vec<String> = patterns.iter().map(|(p, n)| format!("{p} x{n}")).collect();
        println!("  patterns: {}\n", rendered.join(", "));
    }
}
