//! # eras-rules
//!
//! An AnyBURL-style bottom-up rule learner (Meilicke et al., IJCAI 2019)
//! — the rule-based comparator of the paper's Table VI.
//!
//! AnyBURL learns horn rules by sampling paths from the knowledge graph
//! and generalising them, then answers link-prediction queries by firing
//! the learned rules and ranking candidates by rule confidence. It is the
//! paper's representative for the non-embedding family: very strong on
//! datasets with crisp relational regularities (WN18's inverse pairs),
//! weaker where evidence is statistical.
//!
//! This implementation covers the binary path rules that carry almost all
//! of AnyBURL's benchmark performance:
//!
//! ```text
//! r(X, Y) ← r₁(X, Y)                      (equivalence / hierarchy)
//! r(X, Y) ← r₁(Y, X)                      (inversion; r₁ = r is symmetry)
//! r(X, Y) ← r₁(X, Z) ∧ r₂(Z, Y)           (composition, all 4 direction
//!                                          combinations of the body atoms)
//! ```
//!
//! Rules are mined from sampled training triples ([`learn`]), scored with
//! the standard *confidence* = support / body-groundings estimate, and
//! applied with max-confidence aggregation ([`predict`]). The predictor
//! implements `eras_train::eval::ScoreModel`, so the same filtered-MRR
//! evaluator that scores the embedding models scores the rule model.

pub mod graph;
pub mod learn;
pub mod predict;
pub mod rule;

pub use learn::{learn_rules, LearnConfig};
pub use predict::RuleModel;
pub use rule::{Atom, Rule};
