//! Bottom-up rule mining.
//!
//! AnyBURL samples training edges, finds alternative paths between their
//! endpoints, generalises the paths into rules, and keeps rules whose
//! (Laplace-smoothed) confidence clears a threshold. This module follows
//! that recipe for path rules of length 1 and 2.

use crate::graph::Graph;
use crate::rule::{Atom, Rule, ScoredRule};
use eras_linalg::cmp::nan_last_desc_f64;
use eras_linalg::Rng;
use std::collections::HashMap;

/// Mining budget and thresholds.
#[derive(Debug, Clone)]
pub struct LearnConfig {
    /// Training edges sampled per relation when proposing rules.
    pub samples_per_relation: usize,
    /// Anchor entities sampled when estimating a rule's confidence.
    pub confidence_anchors: usize,
    /// Minimum (sampled) support for a candidate to be scored at all.
    pub min_support: usize,
    /// Minimum smoothed confidence to keep a rule.
    pub min_confidence: f64,
    /// Laplace pseudo-count (AnyBURL's `pc`).
    pub pseudo_count: f64,
    /// Rules kept per head relation (best by confidence).
    pub max_rules_per_relation: usize,
    /// Cap on the intermediate-node fan-out explored per path step.
    pub max_branch: usize,
    /// Mining seed.
    pub seed: u64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            samples_per_relation: 60,
            confidence_anchors: 150,
            min_support: 2,
            min_confidence: 0.05,
            pseudo_count: 5.0,
            max_rules_per_relation: 24,
            max_branch: 32,
            seed: 0,
        }
    }
}

/// All atoms over the graph's relations, forward and backward.
fn all_atoms(num_relations: usize) -> Vec<Atom> {
    (0..num_relations as u32)
        .flat_map(|r| [Atom::fwd(r), Atom::bwd(r)])
        .collect()
}

/// Propose candidate rules by sampling edges of each relation and finding
/// alternative length-1/2 paths between their endpoints.
fn propose(graph: &Graph, cfg: &LearnConfig, rng: &mut Rng) -> HashMap<Rule, usize> {
    let atoms = all_atoms(graph.num_relations());
    let mut support: HashMap<Rule, usize> = HashMap::new();
    // Group training edges by relation for sampling.
    let mut by_rel: Vec<Vec<(u32, u32)>> = vec![Vec::new(); graph.num_relations()];
    for t in graph.triples() {
        by_rel[t.rel as usize].push((t.head, t.tail));
    }

    for (rel, edges) in by_rel.iter().enumerate() {
        if edges.is_empty() {
            continue;
        }
        let rel = rel as u32;
        let n = cfg.samples_per_relation.min(edges.len());
        let picks = rng.sample_distinct(edges.len(), n);
        for pick in picks {
            let (h, t) = edges[pick];
            // Length-1 alternatives.
            for &a in &atoms {
                if a.rel == rel && !a.reversed {
                    continue; // trivial identity
                }
                let reaches = graph.step(h, a).binary_search(&t).is_ok();
                if reaches {
                    *support.entry(Rule::unary(rel, a)).or_insert(0) += 1;
                }
            }
            // Length-2 alternatives: h --a--> z --b--> t via sorted-list
            // intersection of step(h, a) and step(t, b̄).
            for &a in &atoms {
                let zs = graph.step(h, a);
                if zs.is_empty() || zs.len() > cfg.max_branch * 4 {
                    continue;
                }
                for &b in &atoms {
                    let back = Atom {
                        rel: b.rel,
                        reversed: !b.reversed,
                    };
                    let ws = graph.step(t, back);
                    if ws.is_empty() {
                        continue;
                    }
                    // Intersect two sorted lists.
                    let (mut i, mut j) = (0usize, 0usize);
                    let mut hit = false;
                    while i < zs.len() && j < ws.len() {
                        match zs[i].cmp(&ws[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                // Exclude the degenerate midpoint z == h == t path.
                                hit = true;
                                break;
                            }
                        }
                    }
                    if hit {
                        *support.entry(Rule::binary(rel, a, b)).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    support
}

/// Estimate a rule's confidence by sampling anchor entities, walking the
/// body, and checking how many produced pairs are true head-relation
/// edges.
fn estimate_confidence(
    graph: &Graph,
    rule: &Rule,
    cfg: &LearnConfig,
    rng: &mut Rng,
) -> (usize, usize) {
    let first = rule.body[0];
    let anchors: Vec<u32> = graph.sources(first).collect();
    if anchors.is_empty() {
        return (0, 0);
    }
    let n = cfg.confidence_anchors.min(anchors.len());
    let picks = rng.sample_distinct(anchors.len(), n);
    let mut body = 0usize;
    let mut correct = 0usize;
    for pick in picks {
        let x = anchors[pick];
        match rule.body.as_slice() {
            [a] => {
                for &y in graph.step(x, *a).iter().take(cfg.max_branch) {
                    body += 1;
                    if graph.has_edge(x, rule.head_rel, y) {
                        correct += 1;
                    }
                }
            }
            [a, b] => {
                let mut seen_y: Vec<u32> = Vec::new();
                for &z in graph.step(x, *a).iter().take(cfg.max_branch) {
                    for &y in graph.step(z, *b).iter().take(cfg.max_branch) {
                        if seen_y.contains(&y) {
                            continue;
                        }
                        seen_y.push(y);
                        body += 1;
                        if graph.has_edge(x, rule.head_rel, y) {
                            correct += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    // Scale the sampled counts back to the full anchor population.
    let scale = anchors.len() as f64 / n as f64;
    (
        (correct as f64 * scale) as usize,
        (body as f64 * scale) as usize,
    )
}

/// Mine, score and filter rules from a training graph.
pub fn learn_rules(graph: &Graph, cfg: &LearnConfig) -> Vec<ScoredRule> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let proposals = propose(graph, cfg, &mut rng);
    let mut scored: Vec<ScoredRule> = Vec::new();
    // Deterministic iteration: sort proposals.
    let mut candidates: Vec<(Rule, usize)> = proposals.into_iter().collect();
    candidates.sort();
    for (rule, sampled_support) in candidates {
        if sampled_support < cfg.min_support || rule.is_trivial() {
            continue;
        }
        let (correct, body) = estimate_confidence(graph, &rule, cfg, &mut rng);
        let confidence = correct as f64 / (body as f64 + cfg.pseudo_count);
        if confidence >= cfg.min_confidence {
            scored.push(ScoredRule {
                rule,
                support: correct,
                body_count: body,
                confidence,
            });
        }
    }
    // Keep the best per head relation.
    scored.sort_by(|a, b| {
        (a.rule.head_rel, std::cmp::Reverse(ordered(b.confidence)))
            .cmp(&(b.rule.head_rel, std::cmp::Reverse(ordered(a.confidence))))
    });
    let mut kept: Vec<ScoredRule> = Vec::new();
    let mut count_for: HashMap<u32, usize> = HashMap::new();
    // Re-sort: per relation by confidence descending.
    scored.sort_by(|a, b| {
        a.rule
            .head_rel
            .cmp(&b.rule.head_rel)
            .then(nan_last_desc_f64(a.confidence, b.confidence))
    });
    for s in scored {
        let c = count_for.entry(s.rule.head_rel).or_insert(0);
        if *c < cfg.max_rules_per_relation {
            *c += 1;
            kept.push(s);
        }
    }
    kept
}

/// Total-order wrapper for f64 confidences (finite by construction).
fn ordered(x: f64) -> u64 {
    // Monotone map of non-negative finite f64 to u64.
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Triple;

    /// Build a graph where r1 is exactly the inverse of r0, plus noise
    /// relation r2.
    fn inverse_world() -> Graph {
        let mut triples = Vec::new();
        for i in 0..30u32 {
            triples.push(Triple::new(i, 0, (i + 1) % 30));
            triples.push(Triple::new((i + 1) % 30, 1, i));
        }
        triples.push(Triple::new(0, 2, 5));
        Graph::build(&triples, 3)
    }

    #[test]
    fn learns_inversion_rule_with_high_confidence() {
        let graph = inverse_world();
        let rules = learn_rules(&graph, &LearnConfig::default());
        let inv = rules
            .iter()
            .find(|s| s.rule == Rule::unary(1, Atom::bwd(0)))
            .expect("should learn r1(X,Y) <- r0(Y,X)");
        assert!(
            inv.confidence > 0.7,
            "inversion confidence {}",
            inv.confidence
        );
        // And the symmetric counterpart for r0.
        assert!(rules.iter().any(|s| s.rule == Rule::unary(0, Atom::bwd(1))));
    }

    #[test]
    fn learns_symmetry_rule() {
        // r0 is symmetric.
        let mut triples = Vec::new();
        for i in 0..20u32 {
            triples.push(Triple::new(i, 0, (i + 7) % 20));
            triples.push(Triple::new((i + 7) % 20, 0, i));
        }
        let graph = Graph::build(&triples, 1);
        let rules = learn_rules(&graph, &LearnConfig::default());
        let sym = rules
            .iter()
            .find(|s| s.rule == Rule::unary(0, Atom::bwd(0)))
            .expect("should learn the symmetry rule");
        assert!(sym.confidence > 0.7, "{}", sym.confidence);
    }

    #[test]
    fn learns_composition_rule() {
        // r2 = r0 ∘ r1 on a chain: r0(i, i+1), r1(i+1, i+2), r2(i, i+2).
        let mut triples = Vec::new();
        for i in 0..40u32 {
            triples.push(Triple::new(i, 0, i + 1));
            triples.push(Triple::new(i + 1, 1, i + 2));
            triples.push(Triple::new(i, 2, i + 2));
        }
        let graph = Graph::build(&triples, 3);
        let rules = learn_rules(&graph, &LearnConfig::default());
        let comp = rules
            .iter()
            .find(|s| s.rule == Rule::binary(2, Atom::fwd(0), Atom::fwd(1)))
            .expect("should learn the composition rule");
        assert!(comp.confidence > 0.5, "{}", comp.confidence);
    }

    #[test]
    fn no_rules_from_random_noise() {
        // Random sparse edges: any surviving rule must clear the
        // confidence threshold honestly, so there should be few.
        let mut rng = Rng::seed_from_u64(9);
        let triples: Vec<Triple> = (0..60)
            .map(|_| {
                Triple::new(
                    rng.next_below(200) as u32,
                    rng.next_below(4) as u32,
                    rng.next_below(200) as u32,
                )
            })
            .collect();
        let graph = Graph::build(&triples, 4);
        let rules = learn_rules(&graph, &LearnConfig::default());
        assert!(rules.len() <= 4, "noise produced {} rules", rules.len());
    }

    #[test]
    fn trivial_identity_rule_is_never_kept() {
        let graph = inverse_world();
        let rules = learn_rules(&graph, &LearnConfig::default());
        assert!(rules.iter().all(|s| !s.rule.is_trivial()));
    }

    #[test]
    fn respects_per_relation_cap() {
        let graph = inverse_world();
        let cfg = LearnConfig {
            max_rules_per_relation: 1,
            ..LearnConfig::default()
        };
        let rules = learn_rules(&graph, &cfg);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for s in &rules {
            *counts.entry(s.rule.head_rel).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c <= 1));
    }
}
