//! Rule representation.

use std::fmt;

/// One body atom: a relation traversed forward (`r(X, Y)`) or backward
/// (`r(Y, X)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation id.
    pub rel: u32,
    /// True when the atom is traversed tail→head.
    pub reversed: bool,
}

impl Atom {
    /// Forward atom `rel(X, Y)`.
    pub fn fwd(rel: u32) -> Atom {
        Atom {
            rel,
            reversed: false,
        }
    }

    /// Backward atom `rel(Y, X)`.
    pub fn bwd(rel: u32) -> Atom {
        Atom {
            rel,
            reversed: true,
        }
    }
}

/// A horn rule `head_rel(X, Y) ← body`, with the body a chain of one or
/// two atoms connecting `X` to `Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rule {
    /// Relation predicted by the rule.
    pub head_rel: u32,
    /// Body chain (length 1 or 2).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Length-1 rule `head(X,Y) ← a(X,Y)`.
    pub fn unary(head_rel: u32, a: Atom) -> Rule {
        Rule {
            head_rel,
            body: vec![a],
        }
    }

    /// Length-2 rule `head(X,Y) ← a(X,Z) ∧ b(Z,Y)`.
    pub fn binary(head_rel: u32, a: Atom, b: Atom) -> Rule {
        Rule {
            head_rel,
            body: vec![a, b],
        }
    }

    /// Is this the trivial identity rule `r(X,Y) ← r(X,Y)`?
    pub fn is_trivial(&self) -> bool {
        self.body.len() == 1 && self.body[0].rel == self.head_rel && !self.body[0].reversed
    }

    /// Body length (1 or 2).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Rules always have a non-empty body.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A rule with its mined statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// Training triples the rule correctly predicts.
    pub support: usize,
    /// Estimated number of body groundings.
    pub body_count: usize,
    /// Laplace-smoothed confidence `support / (body_count + pc)`.
    pub confidence: f64,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let var = |a: &Atom, from: char, to: char| {
            if a.reversed {
                format!("r{}({to},{from})", a.rel)
            } else {
                format!("r{}({from},{to})", a.rel)
            }
        };
        match self.body.as_slice() {
            [a] => write!(f, "r{}(X,Y) <- {}", self.head_rel, var(a, 'X', 'Y')),
            [a, b] => write!(
                f,
                "r{}(X,Y) <- {} ^ {}",
                self.head_rel,
                var(a, 'X', 'Z'),
                var(b, 'Z', 'Y')
            ),
            _ => write!(f, "r{}(X,Y) <- ?", self.head_rel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_rule_detection() {
        assert!(Rule::unary(3, Atom::fwd(3)).is_trivial());
        assert!(!Rule::unary(3, Atom::bwd(3)).is_trivial());
        assert!(!Rule::unary(3, Atom::fwd(2)).is_trivial());
        assert!(!Rule::binary(3, Atom::fwd(3), Atom::fwd(3)).is_trivial());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Rule::unary(0, Atom::bwd(1)).to_string(),
            "r0(X,Y) <- r1(Y,X)"
        );
        assert_eq!(
            Rule::binary(2, Atom::fwd(0), Atom::bwd(1)).to_string(),
            "r2(X,Y) <- r0(X,Z) ^ r1(Y,Z)"
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut rules = [
            Rule::binary(1, Atom::fwd(0), Atom::fwd(1)),
            Rule::unary(0, Atom::fwd(1)),
            Rule::unary(0, Atom::fwd(0)),
        ];
        rules.sort();
        assert_eq!(rules[0], Rule::unary(0, Atom::fwd(0)));
    }
}
