//! Rule-based link prediction with max-confidence aggregation.

use crate::graph::Graph;
use crate::learn::{learn_rules, LearnConfig};
use crate::rule::{Atom, Rule, ScoredRule};
use eras_data::{Dataset, Triple};
use eras_linalg::cmp::nan_last_desc_f64;
use eras_train::eval::ScoreModel;
use eras_train::Embeddings;

/// A trained rule predictor.
///
/// Implements [`ScoreModel`] so the shared filtered-MRR evaluator can
/// score it; the `Embeddings` argument of the trait is ignored (pass
/// [`RuleModel::dummy_embeddings`]).
#[derive(Debug, Clone)]
pub struct RuleModel {
    graph: Graph,
    /// Rules grouped by head relation, best confidence first.
    by_relation: Vec<Vec<ScoredRule>>,
    num_entities: usize,
}

impl RuleModel {
    /// Mine rules from a dataset's training split.
    pub fn learn(dataset: &Dataset, cfg: &LearnConfig) -> RuleModel {
        let graph = Graph::build(&dataset.train, dataset.num_relations());
        let rules = learn_rules(&graph, cfg);
        let mut by_relation: Vec<Vec<ScoredRule>> = vec![Vec::new(); dataset.num_relations()];
        for s in rules {
            by_relation[s.rule.head_rel as usize].push(s);
        }
        for list in &mut by_relation {
            list.sort_by(|a, b| nan_last_desc_f64(a.confidence, b.confidence));
        }
        RuleModel {
            graph,
            by_relation,
            num_entities: dataset.num_entities(),
        }
    }

    /// All learned rules for one relation (best first).
    pub fn rules_for(&self, rel: u32) -> &[ScoredRule] {
        &self.by_relation[rel as usize]
    }

    /// Total number of learned rules.
    pub fn num_rules(&self) -> usize {
        self.by_relation.iter().map(Vec::len).sum()
    }

    /// Placeholder embeddings for the [`ScoreModel`] interface.
    pub fn dummy_embeddings(&self) -> Embeddings {
        let mut rng = eras_linalg::Rng::seed_from_u64(0);
        Embeddings::init(
            self.num_entities,
            self.by_relation.len().max(1),
            1,
            &mut rng,
        )
    }

    /// Fire one rule body from `x`, accumulating `max(confidence)` into
    /// `scores` for every reached entity.
    fn fire(&self, rule: &Rule, confidence: f64, x: u32, reversed: bool, scores: &mut [f32]) {
        let conf = confidence as f32;
        // To answer a head query (?, r, t) we walk the body backwards
        // from t with each atom flipped.
        let body: Vec<Atom> = if reversed {
            rule.body
                .iter()
                .rev()
                .map(|a| Atom {
                    rel: a.rel,
                    reversed: !a.reversed,
                })
                .collect()
        } else {
            rule.body.clone()
        };
        match body.as_slice() {
            [a] => {
                for &y in self.graph.step(x, *a) {
                    let s = &mut scores[y as usize];
                    *s = s.max(conf);
                }
            }
            [a, b] => {
                for &z in self.graph.step(x, *a) {
                    for &y in self.graph.step(z, *b) {
                        let s = &mut scores[y as usize];
                        *s = s.max(conf);
                    }
                }
            }
            _ => {}
        }
    }
}

impl ScoreModel for RuleModel {
    fn score_all_tails(&self, _emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        out.fill(0.0);
        for s in self.rules_for(r) {
            self.fire(&s.rule, s.confidence, h, false, out);
        }
    }

    fn score_all_heads(&self, _emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        out.fill(0.0);
        for s in self.rules_for(r) {
            self.fire(&s.rule, s.confidence, t, true, out);
        }
    }

    fn score_triple(&self, _emb: &Embeddings, triple: Triple) -> f32 {
        let mut best = 0.0f32;
        for s in self.rules_for(triple.rel) {
            let conf = s.confidence as f32;
            if conf <= best {
                break; // sorted descending
            }
            let reached = match s.rule.body.as_slice() {
                [a] => self
                    .graph
                    .step(triple.head, *a)
                    .binary_search(&triple.tail)
                    .is_ok(),
                [a, b] => self
                    .graph
                    .step(triple.head, *a)
                    .iter()
                    .any(|&z| self.graph.step(z, *b).binary_search(&triple.tail).is_ok()),
                _ => false,
            };
            if reached {
                best = conf;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::{FilterIndex, Preset};
    use eras_train::eval::link_prediction;

    #[test]
    fn rule_model_beats_chance_on_leaky_dataset() {
        // The tiny preset has an inverse pair: the reverse of a test
        // triple under the partner relation usually sits in train, which
        // is exactly what an inversion rule exploits (the WN18 story).
        let dataset = Preset::Tiny.build(50);
        let filter = FilterIndex::build(&dataset);
        let model = RuleModel::learn(&dataset, &LearnConfig::default());
        assert!(model.num_rules() > 0, "no rules learned");
        let emb = model.dummy_embeddings();
        let inverse_tests: Vec<Triple> = dataset
            .test_triples_with_pattern(eras_data::RelationPattern::Inverse)
            .into_iter()
            .collect();
        assert!(!inverse_tests.is_empty());
        let m = link_prediction(&model, &emb, &inverse_tests, &filter);
        // Chance MRR over 150 entities is ≈ 0.03; an inversion rule lifts
        // Hit@1 dramatically on these relations.
        assert!(
            m.mrr > 0.3,
            "rule model should exploit inverse leakage, got MRR {:.3}",
            m.mrr
        );
    }

    #[test]
    fn score_triple_agrees_with_score_all_tails() {
        let dataset = Preset::Tiny.build(51);
        let model = RuleModel::learn(&dataset, &LearnConfig::default());
        let emb = model.dummy_embeddings();
        let mut out = vec![0.0f32; dataset.num_entities()];
        for &t in dataset.test.iter().take(20) {
            model.score_all_tails(&emb, t.head, t.rel, &mut out);
            let direct = model.score_triple(&emb, t);
            assert!(
                (out[t.tail as usize] - direct).abs() < 1e-6,
                "mismatch on {t:?}"
            );
        }
    }

    #[test]
    fn head_queries_reverse_the_body() {
        // r1 is the inverse of r0; a head query (?, r1, t) must find the
        // original r0-head via the reversed body walk.
        let triples: Vec<Triple> = (0..20u32)
            .flat_map(|i| {
                [
                    Triple::new(i, 0, (i + 1) % 20),
                    Triple::new((i + 1) % 20, 1, i),
                ]
            })
            .collect();
        let mut entities = eras_data::vocab::Vocab::new();
        for i in 0..20 {
            entities.intern(&format!("e{i}"));
        }
        let mut relations = eras_data::vocab::Vocab::new();
        relations.intern("r0");
        relations.intern("r1");
        let dataset = Dataset {
            name: "inv".into(),
            entities,
            relations,
            train: triples,
            valid: vec![],
            test: vec![],
            pattern_labels: vec![],
        };
        let model = RuleModel::learn(&dataset, &LearnConfig::default());
        let emb = model.dummy_embeddings();
        let mut out = vec![0.0f32; 20];
        // (?, r1, 3): truth is 4 (since r1(4, 3) holds ⇔ r0(3, 4)).
        model.score_all_heads(&emb, 3, 1, &mut out);
        let best = eras_linalg::vecops::argmax(&out);
        assert_eq!(best, 4, "scores {out:?}");
    }
}
