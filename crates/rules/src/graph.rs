//! Adjacency view of the training graph for rule mining and firing.

use crate::rule::Atom;
use eras_data::Triple;
use std::collections::HashMap;

/// Per-relation forward and backward adjacency lists.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `out[rel]` maps head → sorted tails.
    out: Vec<HashMap<u32, Vec<u32>>>,
    /// `inc[rel]` maps tail → sorted heads.
    inc: Vec<HashMap<u32, Vec<u32>>>,
    /// All training triples (for mining walks).
    triples: Vec<Triple>,
    num_relations: usize,
}

impl Graph {
    /// Build from training triples.
    pub fn build(triples: &[Triple], num_relations: usize) -> Graph {
        let mut out: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); num_relations];
        let mut inc: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); num_relations];
        for t in triples {
            out[t.rel as usize].entry(t.head).or_default().push(t.tail);
            inc[t.rel as usize].entry(t.tail).or_default().push(t.head);
        }
        for side in [&mut out, &mut inc] {
            for rel in side.iter_mut() {
                for list in rel.values_mut() {
                    list.sort_unstable();
                    list.dedup();
                }
            }
        }
        Graph {
            out,
            inc,
            triples: triples.to_vec(),
            num_relations,
        }
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Training triples backing this graph.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Neighbours of `e` along `atom` (forward: tails; reversed: heads).
    pub fn step(&self, e: u32, atom: Atom) -> &[u32] {
        let side = if atom.reversed {
            &self.inc[atom.rel as usize]
        } else {
            &self.out[atom.rel as usize]
        };
        side.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does the edge `rel(h, t)` exist in training?
    pub fn has_edge(&self, h: u32, rel: u32, t: u32) -> bool {
        self.out[rel as usize]
            .get(&h)
            .map(|tails| tails.binary_search(&t).is_ok())
            .unwrap_or(false)
    }

    /// Entities with at least one outgoing `atom` step (mining anchors).
    pub fn sources(&self, atom: Atom) -> impl Iterator<Item = u32> + '_ {
        let side = if atom.reversed {
            &self.inc[atom.rel as usize]
        } else {
            &self.out[atom.rel as usize]
        };
        side.keys().copied()
    }

    /// Degree-weighted count of `atom`'s groundings (number of edges).
    pub fn atom_groundings(&self, atom: Atom) -> usize {
        let side = if atom.reversed {
            &self.inc[atom.rel as usize]
        } else {
            &self.out[atom.rel as usize]
        };
        side.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> Graph {
        // 0 -r0-> 1 -r0-> 2 ; 1 -r1-> 0 (inverse-ish edge)
        let triples = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(1, 1, 0),
        ];
        Graph::build(&triples, 2)
    }

    #[test]
    fn forward_and_backward_steps() {
        let g = chain_graph();
        assert_eq!(g.step(0, Atom::fwd(0)), &[1]);
        assert_eq!(g.step(1, Atom::fwd(0)), &[2]);
        assert_eq!(g.step(1, Atom::bwd(0)), &[0]);
        assert_eq!(g.step(2, Atom::bwd(0)), &[1]);
        assert_eq!(g.step(0, Atom::fwd(1)), &[] as &[u32]);
        assert_eq!(g.step(0, Atom::bwd(1)), &[1]);
    }

    #[test]
    fn has_edge_is_directional() {
        let g = chain_graph();
        assert!(g.has_edge(0, 0, 1));
        assert!(!g.has_edge(1, 0, 0));
        assert!(g.has_edge(1, 1, 0));
    }

    #[test]
    fn groundings_count_edges() {
        let g = chain_graph();
        assert_eq!(g.atom_groundings(Atom::fwd(0)), 2);
        assert_eq!(g.atom_groundings(Atom::bwd(0)), 2);
        assert_eq!(g.atom_groundings(Atom::fwd(1)), 1);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let triples = vec![Triple::new(0, 0, 1), Triple::new(0, 0, 1)];
        let g = Graph::build(&triples, 1);
        assert_eq!(g.step(0, Atom::fwd(0)), &[1]);
        assert_eq!(g.atom_groundings(Atom::fwd(0)), 1);
    }
}
