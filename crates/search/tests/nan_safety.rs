//! Regression tests for NaN-unsafe ranking.
//!
//! The seed used `partial_cmp(..).expect("finite MRR")` in the AutoSF /
//! TPE candidate sorts and in the predictor's pivot selection, so one
//! diverged training run (NaN validation MRR) panicked mid-search. These
//! tests pin the fixed behaviour: NaN scores flow through ranking and
//! fitting without panics and never outrank real scores.

use eras_linalg::cmp::{nan_last_desc_f64, nan_lowest_f64};
use eras_linalg::Rng;
use eras_search::predictor::Predictor;
use eras_sf::BlockSf;

fn sample_sf(seed: u64) -> BlockSf {
    let mut rng = Rng::seed_from_u64(seed);
    BlockSf::random(4, 6, &mut rng)
}

/// The exact sort the AutoSF parent-selection loop runs, fed a NaN MRR.
/// With the seed's `partial_cmp(..).expect(..)` this panicked; now NaN
/// parents rank strictly last and are truncated away first.
#[test]
fn autosf_parent_sort_survives_nan_mrr() {
    let mut scored_parents: Vec<(BlockSf, f64)> = vec![
        (sample_sf(1), 0.41),
        (sample_sf(2), f64::NAN), // diverged stand-alone run
        (sample_sf(3), 0.55),
        (sample_sf(4), 0.13),
    ];
    scored_parents.sort_by(|a, b| nan_last_desc_f64(a.1, b.1));
    assert_eq!(scored_parents[0].1, 0.55);
    assert_eq!(scored_parents[1].1, 0.41);
    assert_eq!(scored_parents[2].1, 0.13);
    assert!(
        scored_parents[3].1.is_nan(),
        "NaN must rank last, not first"
    );
}

/// The TPE likelihood-ratio argmax, fed NaN ratios: the max must be a
/// real candidate, and an all-NaN pool must still return *something*
/// rather than panic.
#[test]
fn tpe_argmax_never_selects_nan_ratio() {
    let pool = [(0usize, f64::NAN), (1, 0.2), (2, f64::NAN), (3, 0.9)];
    let best = pool
        .iter()
        .max_by(|a, b| nan_lowest_f64(a.1, b.1))
        .expect("non-empty pool");
    assert_eq!(best.0, 3);

    let all_nan = [(0usize, f64::NAN), (1, f64::NAN)];
    let picked = all_nan.iter().max_by(|a, b| nan_lowest_f64(a.1, b.1));
    assert!(picked.is_some(), "all-NaN pool must not panic");
}

/// The ridge predictor used to panic inside Gaussian-elimination pivot
/// selection when any observed MRR was NaN (NaN propagates into the
/// normal equations). It must now fit and predict without panicking, and
/// keep returning finite predictions once refit on clean data.
#[test]
fn predictor_survives_nan_observations() {
    let mut predictor = Predictor::new(1e-3);
    for seed in 0..6u64 {
        predictor.observe(&sample_sf(seed), 0.1 + 0.05 * seed as f64);
    }
    predictor.observe(&sample_sf(99), f64::NAN);
    predictor.fit(); // must not panic
    let _ = predictor.predict(&sample_sf(100)); // may be NaN, must not panic

    // A fresh predictor on clean data still produces finite predictions.
    let mut clean = Predictor::new(1e-3);
    for seed in 0..8u64 {
        clean.observe(&sample_sf(seed), 0.1 + 0.05 * seed as f64);
    }
    clean.fit();
    assert!(clean.predict(&sample_sf(100)).is_finite());
}
