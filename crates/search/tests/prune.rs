//! Search-time static pruning: the numeric certifier rejects degenerate
//! candidates before any training step is spent on them, and the filter
//! never changes what the search *finds* — only what it pays for.
//!
//! The shipped searchers already reject structurally degenerate
//! proposals, so these tests inject degenerate candidates straight into
//! the evaluator, the way a buggy or third-party searcher would.

use eras_data::{FilterIndex, Preset};
use eras_search::evaluator::{SearchBudget, StandaloneEvaluator};
use eras_sf::{zoo, BlockSf, Op};
use eras_train::trainer::TrainConfig;

fn fast_cfg() -> TrainConfig {
    TrainConfig {
        dim: 16,
        max_epochs: 2,
        eval_every: 1,
        patience: 1,
        ..TrainConfig::default()
    }
}

/// A structure with an empty row: h4's gradient is identically zero
/// under any declared bounds, so the certifier refutes it as W801.
fn dead_row_sf() -> BlockSf {
    let mut sf = zoo::distmult(4);
    sf.set(3, 3, Op::Zero);
    sf
}

/// ≥1 seeded degenerate candidate is statically skipped: zero training
/// budget, Some(0.0) score, and a W801 entry in the pruned trace.
#[test]
fn degenerate_candidate_is_statically_skipped() {
    let dataset = Preset::Tiny.build(1);
    let filter = FilterIndex::build(&dataset);
    let mut ev = StandaloneEvaluator::new(
        "prune-smoke",
        &dataset,
        &filter,
        fast_cfg(),
        SearchBudget::default(),
    );

    let batch = vec![dead_row_sf(), zoo::distmult(4)];
    let mrrs = ev.evaluate_batch(&batch);
    assert_eq!(mrrs[0], Some(0.0), "refuted candidate scores 0.0, not None");
    assert!(mrrs[1].unwrap() > 0.0, "sound candidate still trains");

    assert_eq!(ev.pruned(), 1);
    assert_eq!(
        ev.evaluations(),
        1,
        "the pruned candidate cost zero evaluations"
    );

    let result = ev.finish();
    assert_eq!(result.pruned, 1);
    assert_eq!(result.trace.pruned.len(), 1);
    assert_eq!(result.trace.pruned[0].code, "W801");
    assert!(result.trace.pruned[0].reason.contains("vanishing gradient"));
    assert_eq!(
        result.trace.len(),
        1,
        "pruned candidates never appear in trace.points"
    );
}

/// Filter on vs off over a mixed batch: identical winner, identical
/// MRRs for every trained candidate, and bit-identical `trace.points`.
/// Pruning removes work, never information.
#[test]
fn filter_on_and_off_agree_on_trained_candidates() {
    let dataset = Preset::Tiny.build(1);
    let filter = FilterIndex::build(&dataset);
    let batch = vec![dead_row_sf(), zoo::distmult(4), zoo::complex()];

    let mut on =
        StandaloneEvaluator::new("on", &dataset, &filter, fast_cfg(), SearchBudget::default());
    let on_mrrs = on.evaluate_batch(&batch);
    let on_result = on.finish();

    let mut off = StandaloneEvaluator::new(
        "off",
        &dataset,
        &filter,
        fast_cfg(),
        SearchBudget::default(),
    )
    .numeric_filter(false);
    let off_mrrs = off.evaluate_batch(&batch);
    let off_result = off.finish();

    // The trained candidates score identically either way, and the
    // winner among the *sound* candidates is the same structure with
    // the same MRR. (The filter-off run may crown the degenerate
    // candidate itself on this toy dataset — wasting budget on it is
    // precisely what the filter prevents.)
    assert_eq!(on_mrrs[1], off_mrrs[1]);
    assert_eq!(on_mrrs[2], off_mrrs[2]);
    let off_sound_best = if off_mrrs[1] >= off_mrrs[2] {
        (&batch[1], off_mrrs[1].unwrap())
    } else {
        (&batch[2], off_mrrs[2].unwrap())
    };
    assert_eq!(&on_result.best_sf, off_sound_best.0);
    assert_eq!(on_result.best_mrr, off_sound_best.1);

    // With the filter off, the degenerate candidate trains (wasting
    // budget) and lands in trace.points; with it on, the same points
    // minus that wasted evaluation — and the wasted one scores no
    // better than the statically assigned 0.0 anyway.
    assert_eq!(on_result.pruned, 1);
    assert_eq!(off_result.pruned, 0);
    assert_eq!(on_result.evaluations + 1, off_result.evaluations);

    let on_points: Vec<f64> = on_result
        .trace
        .points
        .iter()
        .map(|p| p.candidate_mrr)
        .collect();
    let off_points: Vec<f64> = off_result
        .trace
        .points
        .iter()
        .map(|p| p.candidate_mrr)
        .collect();
    // Every trained candidate's point is identical; the filter-off run
    // just has the extra degenerate evaluation interleaved.
    for mrr in &on_points {
        assert!(off_points.contains(mrr));
    }
}

/// The pruned memo is keyed by canonical form: re-offering the same
/// degenerate structure (or a permuted variant) never re-certifies or
/// re-records it.
#[test]
fn pruned_memo_deduplicates_reoffers() {
    let dataset = Preset::Tiny.build(1);
    let filter = FilterIndex::build(&dataset);
    let mut ev = StandaloneEvaluator::new(
        "memo",
        &dataset,
        &filter,
        fast_cfg(),
        SearchBudget::default(),
    );
    let sf = dead_row_sf();
    assert_eq!(ev.evaluate(&sf), Some(0.0));
    assert_eq!(ev.evaluate(&sf), Some(0.0));
    assert_eq!(ev.evaluate(&sf), Some(0.0));
    assert_eq!(ev.pruned(), 1, "one unique refuted structure, one record");
    // finish() requires at least one *trained* candidate.
    ev.evaluate(&zoo::distmult(4));
    assert_eq!(ev.finish().trace.pruned.len(), 1);
}
