//! Random search over the block space (Li & Talwalkar 2019) — the
//! stand-alone baseline in Figure 2 of the paper.

use crate::evaluator::{SearchBudget, SearchResult, StandaloneEvaluator};
use eras_data::{Dataset, FilterIndex};
use eras_linalg::Rng;
use eras_sf::BlockSf;
use eras_train::trainer::TrainConfig;

/// Sample a random non-degenerate structure with budget in
/// `[m, max_budget]` that uses every relation block.
pub fn random_candidate(m: usize, max_budget: usize, rng: &mut Rng) -> BlockSf {
    loop {
        let budget = m + rng.next_below(max_budget.saturating_sub(m) + 1);
        let sf = BlockSf::random(m, budget, rng);
        if !sf.is_degenerate() && sf.uses_all_blocks() {
            return sf;
        }
    }
}

/// Run random search until the budget is exhausted.
pub fn search(
    dataset: &Dataset,
    filter: &FilterIndex,
    train_cfg: &TrainConfig,
    m: usize,
    max_budget: usize,
    seed: u64,
    budget: SearchBudget,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(seed);
    let mut evaluator =
        StandaloneEvaluator::new("Random", dataset, filter, train_cfg.clone(), budget);
    while !evaluator.exhausted() {
        // Propose a full batch per round; the evaluator trains the
        // distinct misses concurrently. Proposals are drawn from the
        // RNG in sequence, so a width-1 run proposes the exact
        // candidate stream the pre-batching searcher did.
        let batch: Vec<BlockSf> = (0..evaluator.batch_width())
            .map(|_| random_candidate(m, max_budget, &mut rng))
            .collect();
        if evaluator.evaluate_batch(&batch).iter().any(Option::is_none) {
            break;
        }
    }
    evaluator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;

    #[test]
    fn random_candidates_are_well_formed() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..50 {
            let sf = random_candidate(4, 10, &mut rng);
            assert!(!sf.is_degenerate());
            assert!(sf.uses_all_blocks());
            assert!(sf.num_nonzero() >= 4 && sf.num_nonzero() <= 10);
        }
    }

    #[test]
    fn search_exhausts_budget() {
        let dataset = Preset::Tiny.build(3);
        let filter = FilterIndex::build(&dataset);
        let cfg = TrainConfig {
            dim: 16,
            max_epochs: 2,
            eval_every: 2,
            patience: 1,
            ..TrainConfig::default()
        };
        let result = search(
            &dataset,
            &filter,
            &cfg,
            4,
            8,
            1,
            SearchBudget {
                max_evaluations: 5,
                max_seconds: f64::INFINITY,
            },
        );
        assert_eq!(result.evaluations, 5);
        assert!(result.best_mrr > 0.0);
    }
}
