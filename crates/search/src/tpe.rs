//! TPE-style Bayesian search — the stand-in for the paper's HyperOpt
//! "Bayes" baseline (Bergstra et al. 2013; substitution documented in
//! DESIGN.md §2).
//!
//! The tree-structured Parzen estimator splits observed candidates into a
//! *good* set (top γ quantile by MRR) and a *bad* set, fits a categorical
//! distribution per grid cell to each, and proposes the pooled candidate
//! maximising the likelihood ratio `l(x)/g(x)` — i.e. "looks like the good
//! ones, unlike the bad ones".

use crate::evaluator::{SearchBudget, SearchResult, StandaloneEvaluator};
use crate::random::random_candidate;
use eras_data::{Dataset, FilterIndex};
use eras_linalg::cmp::nan_last_desc_f64;
use eras_linalg::Rng;
use eras_sf::{BlockSf, Op};
use eras_train::trainer::TrainConfig;

/// TPE hyperparameters.
#[derive(Debug, Clone)]
pub struct TpeConfig {
    /// Number of blocks `M`.
    pub m: usize,
    /// Maximum non-zero items of proposed structures.
    pub max_budget: usize,
    /// Quantile of observations forming the "good" set.
    pub gamma: f64,
    /// Random candidates pooled per proposal round.
    pub pool_size: usize,
    /// Pure-exploration rounds before TPE kicks in.
    pub warmup: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpeConfig {
    fn default() -> Self {
        TpeConfig {
            m: 4,
            max_budget: 8,
            gamma: 0.3,
            pool_size: 32,
            warmup: 5,
            seed: 0,
        }
    }
}

/// Per-cell categorical distributions with Laplace smoothing.
struct CellModel {
    /// `probs[cell][op_index]`.
    probs: Vec<Vec<f64>>,
}

impl CellModel {
    fn fit(samples: &[&BlockSf], m: usize) -> CellModel {
        let cells = m * m;
        let alphabet = Op::alphabet_size(m);
        let mut probs = vec![vec![1.0f64; alphabet]; cells]; // Laplace prior
        for sf in samples {
            for (cell, &op) in sf.cells().iter().enumerate() {
                probs[cell][op.to_index(m)] += 1.0;
            }
        }
        for cell in &mut probs {
            let total: f64 = cell.iter().sum();
            for p in cell.iter_mut() {
                *p /= total;
            }
        }
        CellModel { probs }
    }

    fn log_likelihood(&self, sf: &BlockSf, m: usize) -> f64 {
        sf.cells()
            .iter()
            .enumerate()
            .map(|(cell, &op)| self.probs[cell][op.to_index(m)].ln())
            .sum()
    }
}

/// Run TPE search until the budget is exhausted.
pub fn search(
    dataset: &Dataset,
    filter: &FilterIndex,
    train_cfg: &TrainConfig,
    cfg: &TpeConfig,
    budget: SearchBudget,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut evaluator =
        StandaloneEvaluator::new("Bayes", dataset, filter, train_cfg.clone(), budget);
    let mut observed: Vec<(BlockSf, f64)> = Vec::new();

    while !evaluator.exhausted() {
        // Propose one batch per round — during warmup pure random
        // draws, afterwards the best likelihood-ratio candidates of
        // the same fitted good/bad models — and let the evaluator
        // train the batch concurrently. Width 1 reproduces the
        // pre-batching proposal stream exactly.
        let width = evaluator.batch_width();
        let batch: Vec<BlockSf> = if observed.len() < cfg.warmup {
            (0..width)
                .map(|_| random_candidate(cfg.m, cfg.max_budget, &mut rng))
                .collect()
        } else {
            // Split observations into good/bad by the γ quantile.
            let mut sorted: Vec<&(BlockSf, f64)> = observed.iter().collect();
            sorted.sort_by(|a, b| nan_last_desc_f64(a.1, b.1));
            let n_good = ((sorted.len() as f64 * cfg.gamma).ceil() as usize)
                .clamp(1, sorted.len().saturating_sub(1).max(1));
            let good: Vec<&BlockSf> = sorted[..n_good].iter().map(|(sf, _)| sf).collect();
            let bad: Vec<&BlockSf> = sorted[n_good..].iter().map(|(sf, _)| sf).collect();
            let l_good = CellModel::fit(&good, cfg.m);
            let l_bad = CellModel::fit(&bad, cfg.m);
            // Propose the pooled candidates with the best likelihood
            // ratios, best first.
            let mut pool: Vec<(f64, BlockSf)> = (0..cfg.pool_size)
                .map(|_| {
                    let sf = random_candidate(cfg.m, cfg.max_budget, &mut rng);
                    let ratio =
                        l_good.log_likelihood(&sf, cfg.m) - l_bad.log_likelihood(&sf, cfg.m);
                    (ratio, sf)
                })
                .collect();
            pool.sort_by(|a, b| nan_last_desc_f64(a.0, b.0));
            pool.truncate(width);
            pool.into_iter().map(|(_, sf)| sf).collect()
        };
        let results = evaluator.evaluate_batch(&batch);
        let mut stop = false;
        for (sf, mrr) in batch.into_iter().zip(results) {
            match mrr {
                Some(mrr) => observed.push((sf, mrr)),
                None => stop = true,
            }
        }
        if stop {
            break;
        }
    }
    evaluator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;

    #[test]
    fn cell_model_prefers_frequent_ops() {
        let a = eras_sf::zoo::distmult(4);
        let samples = vec![&a, &a, &a];
        let model = CellModel::fit(&samples, 4);
        // Cell (0,0) holds +r1 in all samples: its probability must
        // dominate the alternatives.
        let p_pos = model.probs[0][Op::pos(0).to_index(4)];
        let p_zero = model.probs[0][Op::Zero.to_index(4)];
        assert!(p_pos > 3.0 * p_zero, "{p_pos} vs {p_zero}");
        // Log-likelihood of the observed structure beats a different one.
        let ll_obs = model.log_likelihood(&a, 4);
        let ll_other = model.log_likelihood(&eras_sf::zoo::simple(), 4);
        assert!(ll_obs > ll_other);
    }

    #[test]
    fn search_runs_to_budget() {
        let dataset = Preset::Tiny.build(4);
        let filter = FilterIndex::build(&dataset);
        let train_cfg = TrainConfig {
            dim: 16,
            max_epochs: 2,
            eval_every: 2,
            patience: 1,
            ..TrainConfig::default()
        };
        let result = search(
            &dataset,
            &filter,
            &train_cfg,
            &TpeConfig {
                warmup: 3,
                pool_size: 8,
                ..TpeConfig::default()
            },
            SearchBudget {
                max_evaluations: 6,
                max_seconds: f64::INFINITY,
            },
        );
        assert!(result.evaluations <= 6 && result.evaluations >= 4);
        assert!(result.best_mrr > 0.0);
    }
}
