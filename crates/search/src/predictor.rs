//! The AutoSF performance predictor.
//!
//! Step 4 of Algorithm 1 ranks freshly expanded candidates with a learned
//! predictor before spending training budget on them. AutoSF uses a
//! two-layer perceptron over symmetry-related features; a ridge
//! regression over the same features (`eras_sf::features`) reproduces the
//! ranking behaviour at this problem size and keeps the implementation
//! dependency-free.

use eras_linalg::cmp::nan_lowest_f64;
use eras_sf::features::{extract, SfFeatures};
use eras_sf::BlockSf;

/// Ridge regression `ŷ = wᵀφ(sf) + w₀` over structural features.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Regularisation strength λ.
    pub lambda: f64,
    weights: Vec<f64>,
    /// Training pairs seen so far (features, observed MRR).
    history: Vec<(Vec<f64>, f64)>,
}

/// Solve the dense symmetric system `A x = b` by Gaussian elimination with
/// partial pivoting. `A` is row-major `n × n`.
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let pivot =
            (col..n).max_by(|&i, &j| nan_lowest_f64(a[i * n + col].abs(), a[j * n + col].abs()))?;
        if a[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for r in (col + 1)..n {
            let factor = a[r * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                let sub = factor * a[col * n + k];
                a[r * n + k] -= sub;
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    Some(x)
}

impl Predictor {
    /// Fresh predictor; predicts 0 until the first [`Predictor::fit`].
    pub fn new(lambda: f64) -> Self {
        Predictor {
            lambda,
            weights: vec![0.0; SfFeatures::DIM + 1],
            history: Vec::new(),
        }
    }

    /// Record an observed `(structure, stand-alone MRR)` pair.
    pub fn observe(&mut self, sf: &BlockSf, mrr: f64) {
        let mut phi = extract(sf).values;
        phi.push(1.0); // bias
        self.history.push((phi, mrr));
    }

    /// Refit the ridge weights on everything observed so far.
    /// No-op (keeps the previous weights) with fewer than 3 observations.
    pub fn fit(&mut self) {
        let n = SfFeatures::DIM + 1;
        if self.history.len() < 3 {
            return;
        }
        // Normal equations: (ΦᵀΦ + λI) w = Φᵀ y.
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n];
        for (phi, y) in &self.history {
            for i in 0..n {
                b[i] += phi[i] * y;
                for j in 0..n {
                    a[i * n + j] += phi[i] * phi[j];
                }
            }
        }
        for i in 0..n {
            a[i * n + i] += self.lambda;
        }
        if let Some(w) = solve(a, b, n) {
            self.weights = w;
        }
    }

    /// Predicted MRR for a structure.
    pub fn predict(&self, sf: &BlockSf) -> f64 {
        let phi = extract(sf).values;
        let mut acc = self.weights[SfFeatures::DIM]; // bias
        for (w, x) in self.weights.iter().zip(&phi) {
            acc += w * x;
        }
        acc
    }

    /// Number of observations recorded.
    pub fn num_observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::Rng;
    use eras_sf::zoo;

    #[test]
    fn solve_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![3.0, -2.0];
        assert_eq!(solve(a, b, 2).unwrap(), vec![3.0, -2.0]);
    }

    #[test]
    fn solve_general_system() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(a, b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![1.0, 1.0, 1.0, 1.0];
        let b = vec![1.0, 2.0];
        assert!(solve(a, b, 2).is_none());
    }

    #[test]
    fn predictor_learns_feature_correlated_target() {
        // Target = nonzero fraction (feature 0): a learnable linear map.
        let mut rng = Rng::seed_from_u64(5);
        let mut p = Predictor::new(1e-4);
        let mut eval_set = Vec::new();
        for k in 0..60 {
            let budget = 3 + k % 10;
            let sf = BlockSf::random(4, budget, &mut rng);
            let target = sf.num_nonzero() as f64 / 16.0;
            if k < 50 {
                p.observe(&sf, target);
            } else {
                eval_set.push((sf, target));
            }
        }
        p.fit();
        for (sf, target) in eval_set {
            let pred = p.predict(&sf);
            assert!(
                (pred - target).abs() < 0.05,
                "predicted {pred} for target {target}"
            );
        }
    }

    #[test]
    fn predictor_without_fit_predicts_zero() {
        let p = Predictor::new(0.1);
        assert_eq!(p.predict(&zoo::distmult(4)), 0.0);
    }

    #[test]
    fn fit_with_too_few_points_is_noop() {
        let mut p = Predictor::new(0.1);
        p.observe(&zoo::distmult(4), 0.5);
        p.fit();
        assert_eq!(p.predict(&zoo::complex()), 0.0);
        assert_eq!(p.num_observations(), 1);
    }
}
