//! Search-progress traces (the data behind Figure 2 of the paper).

use eras_data::json::{Json, ToJson};

/// One recorded candidate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Wall-clock seconds since the search started.
    pub elapsed_secs: f64,
    /// Evaluations performed so far (including this one).
    pub evaluations: usize,
    /// Validation MRR of this candidate.
    pub candidate_mrr: f64,
    /// Best validation MRR seen so far.
    pub best_mrr: f64,
}

impl ToJson for TracePoint {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("elapsed_secs", self.elapsed_secs)
            .set("evaluations", self.evaluations)
            .set("candidate_mrr", self.candidate_mrr)
            .set("best_mrr", self.best_mrr)
    }
}

impl TracePoint {
    /// Rebuild from the JSON written by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<TracePoint, String> {
        let num = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("TracePoint: missing number `{key}`"))
        };
        Ok(TracePoint {
            elapsed_secs: num("elapsed_secs")?,
            evaluations: v
                .get("evaluations")
                .and_then(Json::as_usize)
                .ok_or("TracePoint: missing `evaluations`")?,
            candidate_mrr: num("candidate_mrr")?,
            best_mrr: num("best_mrr")?,
        })
    }
}

/// One candidate rejected by the static numeric certifier before any
/// training step was spent on it.
///
/// Pruned candidates live in their own list so [`SearchTrace::points`]
/// — and every plot and comparison built from it — stays bit-identical
/// between runs with the filter on and off: pruning removes work, not
/// trace entries.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedPoint {
    /// Wall-clock seconds since the search started.
    pub elapsed_secs: f64,
    /// Pruned candidates so far (including this one).
    pub ordinal: usize,
    /// Audit diagnostic code of the refutation (`E801`, `E802`, `W801`).
    pub code: String,
    /// Human-readable certifier verdict.
    pub reason: String,
}

impl ToJson for PrunedPoint {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("elapsed_secs", self.elapsed_secs)
            .set("ordinal", self.ordinal)
            .set("code", self.code.as_str())
            .set("reason", self.reason.as_str())
    }
}

impl PrunedPoint {
    /// Rebuild from the JSON written by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<PrunedPoint, String> {
        Ok(PrunedPoint {
            elapsed_secs: v
                .get("elapsed_secs")
                .and_then(Json::as_f64)
                .ok_or("PrunedPoint: missing `elapsed_secs`")?,
            ordinal: v
                .get("ordinal")
                .and_then(Json::as_usize)
                .ok_or("PrunedPoint: missing `ordinal`")?,
            code: v
                .get("code")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or("PrunedPoint: missing `code`")?,
            reason: v
                .get("reason")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or("PrunedPoint: missing `reason`")?,
        })
    }
}

/// Time-ordered evaluation log of one search run.
#[derive(Debug, Clone, Default)]
pub struct SearchTrace {
    /// Searcher name (plot legend).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// The recorded points.
    pub points: Vec<TracePoint>,
    /// Candidates rejected by the static certifier (zero training
    /// cost; kept out of [`SearchTrace::points`] deliberately).
    pub pruned: Vec<PrunedPoint>,
}

impl SearchTrace {
    /// Empty trace for a method/dataset pair.
    pub fn new(method: &str, dataset: &str) -> Self {
        SearchTrace {
            method: method.to_owned(),
            dataset: dataset.to_owned(),
            points: Vec::new(),
            pruned: Vec::new(),
        }
    }

    /// Append a statically pruned candidate.
    pub fn record_pruned(&mut self, elapsed_secs: f64, code: &str, reason: &str) {
        self.pruned.push(PrunedPoint {
            elapsed_secs,
            ordinal: self.pruned.len() + 1,
            code: code.to_owned(),
            reason: reason.to_owned(),
        });
    }

    /// Append an evaluation, maintaining the running best.
    pub fn record(&mut self, elapsed_secs: f64, candidate_mrr: f64) {
        let best = self
            .points
            .last()
            .map(|p| p.best_mrr)
            .unwrap_or(f64::NEG_INFINITY)
            .max(candidate_mrr);
        self.points.push(TracePoint {
            elapsed_secs,
            evaluations: self.points.len() + 1,
            candidate_mrr,
            best_mrr: best,
        });
    }

    /// Best MRR at or before a given time (for aligned plotting).
    pub fn best_at(&self, secs: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_secs <= secs)
            .last()
            .map(|p| p.best_mrr)
    }

    /// Final best MRR.
    pub fn final_best(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_mrr)
    }

    /// Total evaluations recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Rebuild from the JSON written by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<SearchTrace, String> {
        let text = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("SearchTrace: missing string `{key}`"))
        };
        let points = v
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("SearchTrace: missing `points`")?
            .iter()
            .map(TracePoint::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // Tolerant of traces written before static pruning existed:
        // a missing `pruned` array reads back as empty.
        let pruned = match v.get("pruned").and_then(Json::as_arr) {
            Some(arr) => arr
                .iter()
                .map(PrunedPoint::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(SearchTrace {
            method: text("method")?,
            dataset: text("dataset")?,
            points,
            pruned,
        })
    }
}

impl ToJson for SearchTrace {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("method", self.method.as_str())
            .set("dataset", self.dataset.as_str())
            .set("points", self.points.to_json())
            .set("pruned", self.pruned.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_monotone() {
        let mut t = SearchTrace::new("random", "tiny");
        for (secs, mrr) in [(1.0, 0.2), (2.0, 0.5), (3.0, 0.3), (4.0, 0.6)] {
            t.record(secs, mrr);
        }
        let bests: Vec<f64> = t.points.iter().map(|p| p.best_mrr).collect();
        assert_eq!(bests, vec![0.2, 0.5, 0.5, 0.6]);
        for w in bests.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn best_at_time_boundaries() {
        let mut t = SearchTrace::new("m", "d");
        t.record(1.0, 0.1);
        t.record(5.0, 0.4);
        assert_eq!(t.best_at(0.5), None);
        assert_eq!(t.best_at(1.0), Some(0.1));
        assert_eq!(t.best_at(3.0), Some(0.1));
        assert_eq!(t.best_at(10.0), Some(0.4));
        assert_eq!(t.final_best(), Some(0.4));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = SearchTrace::new("autosf", "wn18-synth");
        t.record(0.5, 0.33);
        t.record(1.25, 0.5);
        let json = t.to_json().to_pretty();
        let back = SearchTrace::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.method, "autosf");
        assert_eq!(back.dataset, "wn18-synth");
        assert_eq!(back.points, t.points);
    }

    #[test]
    fn from_json_rejects_malformed() {
        let bad = Json::parse("{\"method\":\"m\",\"dataset\":\"d\"}").unwrap();
        assert!(SearchTrace::from_json(&bad).is_err());
        let bad_point =
            Json::parse("{\"method\":\"m\",\"dataset\":\"d\",\"points\":[{}]}").unwrap();
        assert!(SearchTrace::from_json(&bad_point).is_err());
    }

    #[test]
    fn pruned_entries_roundtrip_and_stay_out_of_points() {
        let mut t = SearchTrace::new("eras", "tiny");
        t.record(1.0, 0.4);
        t.record_pruned(1.5, "W801", "vanishing gradient: h4 dead");
        t.record(2.0, 0.5);
        assert_eq!(t.len(), 2, "pruning must not add evaluation points");
        assert_eq!(t.pruned.len(), 1);
        assert_eq!(t.pruned[0].ordinal, 1);
        let json = t.to_json().to_pretty();
        let back = SearchTrace::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.pruned, t.pruned);
        assert_eq!(back.points, t.points);
    }

    #[test]
    fn traces_without_pruned_field_still_parse() {
        // Pre-pruning trace files carry no `pruned` array.
        let old = Json::parse(
            "{\"method\":\"m\",\"dataset\":\"d\",\"points\":[{\"elapsed_secs\":1.0,\
             \"evaluations\":1,\"candidate_mrr\":0.2,\"best_mrr\":0.2}]}",
        )
        .unwrap();
        let t = SearchTrace::from_json(&old).unwrap();
        assert!(t.pruned.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn evaluation_counter_increments() {
        let mut t = SearchTrace::new("m", "d");
        t.record(1.0, 0.0);
        t.record(2.0, 0.0);
        assert_eq!(t.points[0].evaluations, 1);
        assert_eq!(t.points[1].evaluations, 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
