//! Search-progress traces (the data behind Figure 2 of the paper).

use serde::{Deserialize, Serialize};

/// One recorded candidate evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Wall-clock seconds since the search started.
    pub elapsed_secs: f64,
    /// Evaluations performed so far (including this one).
    pub evaluations: usize,
    /// Validation MRR of this candidate.
    pub candidate_mrr: f64,
    /// Best validation MRR seen so far.
    pub best_mrr: f64,
}

/// Time-ordered evaluation log of one search run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Searcher name (plot legend).
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// The recorded points.
    pub points: Vec<TracePoint>,
}

impl SearchTrace {
    /// Empty trace for a method/dataset pair.
    pub fn new(method: &str, dataset: &str) -> Self {
        SearchTrace {
            method: method.to_owned(),
            dataset: dataset.to_owned(),
            points: Vec::new(),
        }
    }

    /// Append an evaluation, maintaining the running best.
    pub fn record(&mut self, elapsed_secs: f64, candidate_mrr: f64) {
        let best = self
            .points
            .last()
            .map(|p| p.best_mrr)
            .unwrap_or(f64::NEG_INFINITY)
            .max(candidate_mrr);
        self.points.push(TracePoint {
            elapsed_secs,
            evaluations: self.points.len() + 1,
            candidate_mrr,
            best_mrr: best,
        });
    }

    /// Best MRR at or before a given time (for aligned plotting).
    pub fn best_at(&self, secs: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed_secs <= secs)
            .last()
            .map(|p| p.best_mrr)
    }

    /// Final best MRR.
    pub fn final_best(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_mrr)
    }

    /// Total evaluations recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_monotone() {
        let mut t = SearchTrace::new("random", "tiny");
        for (secs, mrr) in [(1.0, 0.2), (2.0, 0.5), (3.0, 0.3), (4.0, 0.6)] {
            t.record(secs, mrr);
        }
        let bests: Vec<f64> = t.points.iter().map(|p| p.best_mrr).collect();
        assert_eq!(bests, vec![0.2, 0.5, 0.5, 0.6]);
        for w in bests.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn best_at_time_boundaries() {
        let mut t = SearchTrace::new("m", "d");
        t.record(1.0, 0.1);
        t.record(5.0, 0.4);
        assert_eq!(t.best_at(0.5), None);
        assert_eq!(t.best_at(1.0), Some(0.1));
        assert_eq!(t.best_at(3.0), Some(0.1));
        assert_eq!(t.best_at(10.0), Some(0.4));
        assert_eq!(t.final_best(), Some(0.4));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut t = SearchTrace::new("autosf", "wn18-synth");
        t.record(0.5, 0.33);
        let json = serde_json::to_string(&t).unwrap();
        let back: SearchTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method, "autosf");
        assert_eq!(back.points, t.points);
    }

    #[test]
    fn evaluation_counter_increments() {
        let mut t = SearchTrace::new("m", "d");
        t.record(1.0, 0.0);
        t.record(2.0, 0.0);
        assert_eq!(t.points[0].evaluations, 1);
        assert_eq!(t.points[1].evaluations, 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
