//! Stand-alone candidate evaluation with caching, budgets and tracing.
//!
//! Every searcher in this crate evaluates candidates "the AutoSF way":
//! train the structure stand-alone to convergence and read off the
//! validation MRR (Definition 1 of the paper). The evaluator
//! canonicalises structures before caching so equivalent candidates
//! (Section `eras_sf::canonical`) are never trained twice — the same
//! deduplication AutoSF applies.

use eras_data::{Dataset, FilterIndex};
use eras_sf::canonical::canonicalize;
use eras_sf::BlockSf;
use eras_train::trainer::{train_standalone, TrainConfig};
use eras_train::BlockModel;
use std::collections::HashMap;
use std::time::Instant;

use crate::trace::SearchTrace;

/// Limits on a search run.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Maximum stand-alone evaluations (cache hits do not count).
    pub max_evaluations: usize,
    /// Wall-clock cap in seconds.
    pub max_seconds: f64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_evaluations: 50,
            max_seconds: f64::INFINITY,
        }
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best structure found.
    pub best_sf: BlockSf,
    /// Its stand-alone validation MRR.
    pub best_mrr: f64,
    /// Distinct structures trained.
    pub evaluations: usize,
    /// The progress trace.
    pub trace: SearchTrace,
}

/// Trains candidates stand-alone and records the run.
pub struct StandaloneEvaluator<'a> {
    dataset: &'a Dataset,
    filter: &'a FilterIndex,
    cfg: TrainConfig,
    budget: SearchBudget,
    cache: HashMap<BlockSf, f64>,
    started: Instant,
    trace: SearchTrace,
    evaluations: usize,
    best: Option<(BlockSf, f64)>,
}

impl<'a> StandaloneEvaluator<'a> {
    /// Create an evaluator for one search run.
    pub fn new(
        method: &str,
        dataset: &'a Dataset,
        filter: &'a FilterIndex,
        cfg: TrainConfig,
        budget: SearchBudget,
    ) -> Self {
        StandaloneEvaluator {
            dataset,
            filter,
            cfg,
            budget,
            cache: HashMap::new(),
            started: Instant::now(),
            trace: SearchTrace::new(method, &dataset.name),
            evaluations: 0,
            best: None,
        }
    }

    /// Has the evaluation or time budget been exhausted?
    pub fn exhausted(&self) -> bool {
        self.evaluations >= self.budget.max_evaluations
            || self.started.elapsed().as_secs_f64() >= self.budget.max_seconds
    }

    /// Evaluate a candidate (stand-alone validation MRR). Returns the
    /// cached value for structures equivalent to one already trained;
    /// returns `None` when the budget is exhausted.
    pub fn evaluate(&mut self, sf: &BlockSf) -> Option<f64> {
        let canonical = canonicalize(sf);
        if let Some(&mrr) = self.cache.get(&canonical) {
            return Some(mrr);
        }
        if self.exhausted() {
            return None;
        }
        let model = BlockModel::universal(sf.clone(), self.dataset.num_relations());
        let outcome = train_standalone(&model, self.dataset, self.filter, &self.cfg);
        let mrr = outcome.best_valid.mrr;
        self.evaluations += 1;
        self.cache.insert(canonical, mrr);
        self.trace.record(self.started.elapsed().as_secs_f64(), mrr);
        if self.best.as_ref().map(|(_, b)| mrr > *b).unwrap_or(true) {
            self.best = Some((sf.clone(), mrr));
        }
        Some(mrr)
    }

    /// Distinct candidates trained so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Finish the run. Panics if no candidate was ever evaluated.
    pub fn finish(self) -> SearchResult {
        let (best_sf, best_mrr) = self.best.expect("no candidate evaluated");
        SearchResult {
            best_sf,
            best_mrr,
            evaluations: self.evaluations,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;
    use eras_sf::canonical::transform;
    use eras_sf::zoo;

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            dim: 16,
            max_epochs: 2,
            eval_every: 1,
            patience: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn caches_equivalent_structures() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        let sf = zoo::complex();
        let mrr1 = ev.evaluate(&sf).unwrap();
        assert_eq!(ev.evaluations(), 1);
        // A permuted/sign-flipped variant hits the cache.
        let perm: Vec<usize> = vec![2, 3, 0, 1];
        let variant = transform(&sf, &perm, 0b0101);
        let mrr2 = ev.evaluate(&variant).unwrap();
        assert_eq!(ev.evaluations(), 1, "equivalent structure retrained");
        assert_eq!(mrr1, mrr2);
    }

    #[test]
    fn budget_stops_evaluations() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget {
                max_evaluations: 1,
                max_seconds: f64::INFINITY,
            },
        );
        assert!(ev.evaluate(&zoo::distmult(4)).is_some());
        assert!(ev.exhausted());
        assert!(ev.evaluate(&zoo::simple()).is_none());
        // But cached results remain accessible.
        assert!(ev.evaluate(&zoo::distmult(4)).is_some());
        let result = ev.finish();
        assert_eq!(result.evaluations, 1);
        assert_eq!(result.trace.len(), 1);
    }

    #[test]
    fn best_tracks_maximum() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        let a = ev.evaluate(&zoo::distmult(4)).unwrap();
        let b = ev.evaluate(&zoo::complex()).unwrap();
        let result = ev.finish();
        assert_eq!(result.best_mrr, a.max(b));
    }
}
