//! Stand-alone candidate evaluation with caching, budgets and tracing.
//!
//! Every searcher in this crate evaluates candidates "the AutoSF way":
//! train the structure stand-alone to convergence and read off the
//! validation MRR (Definition 1 of the paper). The evaluator
//! canonicalises structures before caching so equivalent candidates
//! (Section `eras_sf::canonical`) are never trained twice — the same
//! deduplication AutoSF applies.
//!
//! ## Concurrent candidate evaluation
//!
//! Candidate trainings are embarrassingly parallel — each is a pure
//! function of `(structure, dataset, config)` — so
//! [`StandaloneEvaluator::evaluate_batch`] trains a batch's cache
//! misses concurrently on the shared thread pool, publishing results
//! through a mutex-free [`ShardedCache`]. Inside a batch the training
//! config is pinned to [`Execution::Sequential`] (the classic AutoSF
//! protocol), so a candidate's MRR never depends on how many
//! candidates ride in its batch, and bookkeeping (budget, trace, best)
//! is applied in candidate order after the parallel region — for a
//! given candidate sequence, batched and one-at-a-time evaluation
//! produce the same MRRs, the same trace sequence and the same winner.
//! The *searchers'* proposal streams, however, depend on the configured
//! batch width (TPE refits its good/bad models once per batch), which
//! is why the default width is a fixed constant rather than the pool's
//! parallelism — see [`StandaloneEvaluator::parallel_candidates`].

use crate::sharded::ShardedCache;
use eras_data::{Dataset, FilterIndex};
use eras_linalg::pool::ThreadPool;
use eras_obs::clock::Stopwatch;
use eras_obs::metrics::Counter;
use eras_sf::canonical::canonicalize;
use eras_sf::numeric::{certify, Refutation, Verdict};
use eras_sf::BlockSf;
use eras_train::trainer::{train_standalone_on, Execution, TrainConfig};
use eras_train::BlockModel;
use std::collections::HashSet;

use crate::trace::SearchTrace;

/// Default number of candidates trained concurrently per batch.
///
/// A fixed constant — deliberately *not* the pool's parallelism. The
/// searchers draw one batch of proposals per round (and TPE refits its
/// good/bad models between rounds), so the width shapes the candidate
/// stream a seeded search visits; tying it to the machine's core count
/// would make seeded searches produce different traces and winners on
/// different hosts. With a constant width, reproducibility depends only
/// on the seed and the config, and the pool size changes wall-clock
/// time alone.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Limits on a search run.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Maximum stand-alone evaluations (cache hits do not count).
    pub max_evaluations: usize,
    /// Wall-clock cap in seconds.
    pub max_seconds: f64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_evaluations: 50,
            max_seconds: f64::INFINITY,
        }
    }
}

/// Outcome of a search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best structure found.
    pub best_sf: BlockSf,
    /// Its stand-alone validation MRR.
    pub best_mrr: f64,
    /// Distinct structures trained.
    pub evaluations: usize,
    /// Distinct structures rejected by the static numeric certifier
    /// before any training step was spent on them.
    pub pruned: usize,
    /// The progress trace.
    pub trace: SearchTrace,
}

/// Trains candidates stand-alone and records the run.
pub struct StandaloneEvaluator<'a> {
    dataset: &'a Dataset,
    filter: &'a FilterIndex,
    cfg: TrainConfig,
    budget: SearchBudget,
    cache: ShardedCache<BlockSf, f64>,
    pool: &'a ThreadPool,
    batch_width: usize,
    started: Stopwatch,
    trace: SearchTrace,
    evaluations: usize,
    best: Option<(BlockSf, f64)>,
    numeric_filter: bool,
    pruned_set: HashSet<BlockSf>,
    pruned_count: usize,
    obs_cache_hits: Counter,
    obs_trained: Counter,
    obs_pruned: Counter,
}

impl<'a> StandaloneEvaluator<'a> {
    /// Create an evaluator for one search run, on the process-wide
    /// pool with the fixed default batch width
    /// ([`DEFAULT_BATCH_WIDTH`]).
    pub fn new(
        method: &str,
        dataset: &'a Dataset,
        filter: &'a FilterIndex,
        cfg: TrainConfig,
        budget: SearchBudget,
    ) -> Self {
        let pool = ThreadPool::global();
        StandaloneEvaluator {
            dataset,
            filter,
            cfg,
            budget,
            cache: ShardedCache::new(),
            pool,
            batch_width: DEFAULT_BATCH_WIDTH,
            started: Stopwatch::start(),
            trace: SearchTrace::new(method, &dataset.name),
            evaluations: 0,
            best: None,
            numeric_filter: true,
            pruned_set: HashSet::new(),
            pruned_count: 0,
            obs_cache_hits: eras_obs::metrics::global().counter("search.cache_hits"),
            obs_trained: eras_obs::metrics::global().counter("search.candidates_trained"),
            obs_pruned: eras_obs::metrics::global().counter("search.candidates_pruned"),
        }
    }

    /// Enable or disable the static numeric pre-train filter (on by
    /// default). With the filter on, every cache-missing candidate is
    /// certified by `eras_sf::numeric::certify` under the training
    /// config's declared norm bounds first; candidates that are
    /// refuted (unsound range / NaN reachable) or carry an identically
    /// zero gradient score `0.0` immediately, consume no evaluation
    /// budget, and are logged to the trace's pruned list — the
    /// evaluation trace (`points`), winners and budget accounting for
    /// certified candidates are identical with the filter on or off.
    pub fn numeric_filter(mut self, on: bool) -> Self {
        self.numeric_filter = on;
        self
    }

    /// Evaluate up to `n` candidates concurrently per
    /// [`StandaloneEvaluator::evaluate_batch`] call (default
    /// [`DEFAULT_BATCH_WIDTH`]). The width steers how many proposals
    /// the searchers hand over per round. The evaluator's own
    /// bookkeeping (budget, trace, best) is width-independent, but the
    /// searchers' proposal streams are not: TPE draws `width` proposals
    /// per refit of its good/bad models, and random search draws
    /// `width` candidates per round, so changing the width changes
    /// which candidates a seeded search visits. Treat the width as part
    /// of the seeded configuration; the default is a fixed constant so
    /// results never depend on the machine's core count.
    pub fn parallel_candidates(mut self, n: usize) -> Self {
        self.batch_width = n.max(1);
        self
    }

    /// Dispatch candidate trainings on an explicit pool instead of
    /// [`ThreadPool::global`]. The pool never affects results.
    pub fn with_pool(mut self, pool: &'a ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// How many candidates the searchers should propose per batch.
    pub fn batch_width(&self) -> usize {
        self.batch_width
    }

    /// Has the evaluation or time budget been exhausted?
    pub fn exhausted(&self) -> bool {
        self.evaluations >= self.budget.max_evaluations
            || self.started.elapsed_secs() >= self.budget.max_seconds
    }

    /// Evaluate a candidate (stand-alone validation MRR). Returns the
    /// cached value for structures equivalent to one already trained;
    /// returns `None` when the budget is exhausted.
    pub fn evaluate(&mut self, sf: &BlockSf) -> Option<f64> {
        self.evaluate_batch(std::slice::from_ref(sf)).pop()?
    }

    /// Evaluate a batch of candidates, training the distinct cache
    /// misses concurrently on the pool. `results[i]` is the MRR of
    /// `candidates[i]`, or `None` when the budget ran out before that
    /// candidate could be trained. The budget, trace and best-so-far
    /// bookkeeping advance in candidate order, exactly as if the batch
    /// had been evaluated one candidate at a time.
    pub fn evaluate_batch(&mut self, candidates: &[BlockSf]) -> Vec<Option<f64>> {
        let _span = eras_obs::span!("search.batch", candidates = candidates.len());
        let canon: Vec<BlockSf> = candidates.iter().map(canonicalize).collect();
        let mut results: Vec<Option<f64>> = canon.iter().map(|c| self.cache.get(c)).collect();
        self.obs_cache_hits
            .add(results.iter().filter(|r| r.is_some()).count() as u64);

        // Static numeric filter: certify cache misses before any
        // training is dispatched. Refuted or dead-gradient structures
        // score 0.0 on the spot — zero training steps, zero budget —
        // and the verdict is memoised so duplicates never re-certify
        // or re-trace. Candidates whose block count does not divide
        // the configured dimension are left to the trainer's own
        // layout validation.
        if self.numeric_filter {
            for (i, c) in canon.iter().enumerate() {
                if results[i].is_some() || !self.cfg.dim.is_multiple_of(c.m()) {
                    continue;
                }
                if self.pruned_set.contains(c) {
                    results[i] = Some(0.0);
                    continue;
                }
                let cert = certify(c, self.cfg.bounds, self.cfg.dim);
                if let Some((code, reason)) = prune_reason(&cert.verdict) {
                    self.pruned_set.insert(c.clone());
                    self.pruned_count += 1;
                    self.obs_pruned.add(1);
                    eras_obs::event!("search.pruned", ordinal = self.pruned_count);
                    self.trace
                        .record_pruned(self.started.elapsed_secs(), code, &reason);
                    results[i] = Some(0.0);
                }
            }
        }

        // Distinct misses in first-appearance order, capped by the
        // remaining evaluation budget. The wall-clock budget is checked
        // once per batch: a batch is the unit of dispatch.
        let mut missing: Vec<usize> = Vec::new();
        let mut seen: HashSet<&BlockSf> = HashSet::new();
        for (i, c) in canon.iter().enumerate() {
            if results[i].is_none() && seen.insert(c) {
                missing.push(i);
            }
        }
        if self.exhausted() {
            missing.clear();
        } else {
            let remaining = self.budget.max_evaluations.saturating_sub(self.evaluations);
            missing.truncate(remaining);
        }

        if !missing.is_empty() {
            // Train misses concurrently. The per-candidate protocol is
            // pinned to the sequential minibatch step — the classic
            // AutoSF evaluation — so an MRR never depends on the batch
            // or the pool. Each task publishes straight into the
            // lock-free cache.
            let mut inner_cfg = self.cfg.clone();
            inner_cfg.execution = Execution::Sequential;
            let dataset = self.dataset;
            let filter = self.filter;
            let pool = self.pool;
            let cache = &self.cache;
            let trained: Vec<f64> = pool.map(missing.len(), |k| {
                let i = missing[k];
                let model = BlockModel::universal(candidates[i].clone(), dataset.num_relations());
                let outcome = train_standalone_on(&model, dataset, filter, &inner_cfg, pool);
                let mrr = outcome.best_valid.mrr;
                cache.insert(canon[i].clone(), mrr);
                mrr
            });
            self.obs_trained.add(missing.len() as u64);
            for (&i, &mrr) in missing.iter().zip(&trained) {
                self.evaluations += 1;
                eras_obs::event!("search.candidate", ordinal = self.evaluations, mrr = mrr);
                self.trace.record(self.started.elapsed_secs(), mrr);
                if self.best.as_ref().map(|(_, b)| mrr > *b).unwrap_or(true) {
                    self.best = Some((candidates[i].clone(), mrr));
                }
            }
        }

        // Canonical duplicates of freshly trained candidates resolve
        // from the cache now; anything still missing hit the budget.
        for (i, r) in results.iter_mut().enumerate() {
            if r.is_none() {
                *r = self.cache.get(&canon[i]);
            }
        }
        results
    }

    /// Distinct candidates trained so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Distinct candidates statically pruned so far.
    pub fn pruned(&self) -> usize {
        self.pruned_count
    }

    /// Finish the run. Panics if no candidate was ever evaluated.
    // audit:allow(E701): search loops always evaluate >= 1 candidate
    // before finishing; an empty run is a driver bug, not input-driven
    pub fn finish(self) -> SearchResult {
        let (best_sf, best_mrr) = self.best.expect("no candidate evaluated");
        SearchResult {
            best_sf,
            best_mrr,
            evaluations: self.evaluations,
            pruned: self.pruned_count,
            trace: self.trace,
        }
    }
}

/// Trace code and message for a non-certified verdict; `None` for
/// certified structures.
fn prune_reason(verdict: &Verdict) -> Option<(&'static str, String)> {
    match verdict {
        Verdict::Certified => None,
        Verdict::VanishingGradient(dead) => {
            let names: Vec<String> = dead.iter().map(|v| v.to_string()).collect();
            Some((
                "W801",
                format!(
                    "vanishing gradient: ∂f/∂{{{}}} identically zero under the declared bounds",
                    names.join(", ")
                ),
            ))
        }
        Verdict::Refuted(Refutation::UnsoundRange) => Some((
            "E801",
            "unsound range: score/gradient bounds exceed f32 under the declared bounds".to_string(),
        )),
        Verdict::Refuted(Refutation::NanReachable) => Some((
            "E802",
            "NaN reachable under the declared bounds".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;
    use eras_sf::canonical::transform;
    use eras_sf::zoo;

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            dim: 16,
            max_epochs: 2,
            eval_every: 1,
            patience: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn caches_equivalent_structures() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        let sf = zoo::complex();
        let mrr1 = ev.evaluate(&sf).unwrap();
        assert_eq!(ev.evaluations(), 1);
        // A permuted/sign-flipped variant hits the cache.
        let perm: Vec<usize> = vec![2, 3, 0, 1];
        let variant = transform(&sf, &perm, 0b0101);
        let mrr2 = ev.evaluate(&variant).unwrap();
        assert_eq!(ev.evaluations(), 1, "equivalent structure retrained");
        assert_eq!(mrr1, mrr2);
    }

    #[test]
    fn budget_stops_evaluations() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget {
                max_evaluations: 1,
                max_seconds: f64::INFINITY,
            },
        );
        assert!(ev.evaluate(&zoo::distmult(4)).is_some());
        assert!(ev.exhausted());
        assert!(ev.evaluate(&zoo::simple()).is_none());
        // But cached results remain accessible.
        assert!(ev.evaluate(&zoo::distmult(4)).is_some());
        let result = ev.finish();
        assert_eq!(result.evaluations, 1);
        assert_eq!(result.trace.len(), 1);
    }

    #[test]
    fn batched_evaluation_matches_one_at_a_time() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let candidates = vec![
            zoo::distmult(4),
            zoo::complex(),
            zoo::simple(),
            zoo::distmult(4), // duplicate: must resolve from the cache
            zoo::analogy(),
        ];

        // Reference: strictly sequential evaluation.
        let mut seq = StandaloneEvaluator::new(
            "seq",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        )
        .parallel_candidates(1);
        let seq_mrrs: Vec<Option<f64>> = candidates.iter().map(|sf| seq.evaluate(sf)).collect();
        let seq_result = seq.finish();

        // Concurrent: one batch on a pool of 4.
        let pool = eras_linalg::pool::ThreadPool::new(4);
        let mut par = StandaloneEvaluator::new(
            "par",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        )
        .parallel_candidates(4)
        .with_pool(&pool);
        let par_mrrs = par.evaluate_batch(&candidates);
        let par_result = par.finish();

        assert_eq!(seq_mrrs, par_mrrs);
        assert_eq!(seq_result.evaluations, par_result.evaluations);
        assert_eq!(seq_result.best_mrr, par_result.best_mrr);
        assert_eq!(seq_result.best_sf, par_result.best_sf);
        // The trace records the same MRR sequence (wall times differ).
        let seq_trace: Vec<f64> = seq_result
            .trace
            .points
            .iter()
            .map(|p| p.candidate_mrr)
            .collect();
        let par_trace: Vec<f64> = par_result
            .trace
            .points
            .iter()
            .map(|p| p.candidate_mrr)
            .collect();
        assert_eq!(seq_trace, par_trace);
    }

    #[test]
    fn batch_respects_remaining_budget() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget {
                max_evaluations: 2,
                max_seconds: f64::INFINITY,
            },
        )
        .parallel_candidates(4);
        let batch = vec![zoo::distmult(4), zoo::complex(), zoo::simple()];
        let results = ev.evaluate_batch(&batch);
        // Only the first two fit the budget; the third is cut off.
        assert!(results[0].is_some());
        assert!(results[1].is_some());
        assert!(results[2].is_none());
        assert_eq!(ev.evaluations(), 2);
        assert!(ev.exhausted());
        // Cached entries still resolve after exhaustion.
        assert!(ev.evaluate(&zoo::complex()).is_some());
    }

    #[test]
    fn default_batch_width_is_machine_independent() {
        // Seeded searches must propose the same candidate stream on
        // every host: the default width is a fixed constant, never the
        // pool's core-count-derived parallelism.
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        assert_eq!(ev.batch_width(), DEFAULT_BATCH_WIDTH);
        let pool = eras_linalg::pool::ThreadPool::new(3);
        let ev = ev.with_pool(&pool);
        assert_eq!(
            ev.batch_width(),
            DEFAULT_BATCH_WIDTH,
            "the dispatch pool must not steer the proposal width"
        );
    }

    #[test]
    fn degenerate_candidate_is_pruned_without_training() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        // Empty row/column 3: the certifier sees dead h4/t4 gradients.
        let mut degenerate = zoo::distmult(4);
        degenerate.set(3, 3, eras_sf::Op::Zero);
        assert_eq!(ev.evaluate(&degenerate), Some(0.0));
        assert_eq!(ev.evaluations(), 0, "pruning must cost zero budget");
        assert_eq!(ev.pruned(), 1);
        // Re-offering the same structure resolves from the pruned memo
        // without a second trace entry.
        assert_eq!(ev.evaluate(&degenerate), Some(0.0));
        assert_eq!(ev.pruned(), 1);
        // A sound candidate still trains normally afterwards.
        assert!(ev.evaluate(&zoo::distmult(4)).unwrap() > 0.0);
        let result = ev.finish();
        assert_eq!(result.pruned, 1);
        assert_eq!(result.evaluations, 1);
        assert_eq!(result.trace.pruned.len(), 1);
        assert_eq!(result.trace.pruned[0].code, "W801");
        assert_eq!(result.trace.len(), 1, "pruned entries stay out of points");
    }

    #[test]
    fn filter_off_matches_filter_on_for_certified_candidates() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let candidates = [zoo::distmult(4), zoo::complex(), zoo::simple()];

        let mut on =
            StandaloneEvaluator::new("on", &dataset, &filter, fast_cfg(), SearchBudget::default());
        let on_mrrs: Vec<_> = candidates.iter().map(|sf| on.evaluate(sf)).collect();
        let on_result = on.finish();

        let mut off = StandaloneEvaluator::new(
            "off",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        )
        .numeric_filter(false);
        let off_mrrs: Vec<_> = candidates.iter().map(|sf| off.evaluate(sf)).collect();
        let off_result = off.finish();

        assert_eq!(on_mrrs, off_mrrs);
        assert_eq!(on_result.best_sf, off_result.best_sf);
        assert_eq!(on_result.best_mrr, off_result.best_mrr);
        assert_eq!(on_result.pruned, 0);
        let on_trace: Vec<f64> = on_result
            .trace
            .points
            .iter()
            .map(|p| p.candidate_mrr)
            .collect();
        let off_trace: Vec<f64> = off_result
            .trace
            .points
            .iter()
            .map(|p| p.candidate_mrr)
            .collect();
        assert_eq!(on_trace, off_trace);
    }

    #[test]
    fn best_tracks_maximum() {
        let dataset = Preset::Tiny.build(1);
        let filter = FilterIndex::build(&dataset);
        let mut ev = StandaloneEvaluator::new(
            "test",
            &dataset,
            &filter,
            fast_cfg(),
            SearchBudget::default(),
        );
        let a = ev.evaluate(&zoo::distmult(4)).unwrap();
        let b = ev.evaluate(&zoo::complex()).unwrap();
        let result = ev.finish();
        assert_eq!(result.best_mrr, a.max(b));
    }
}
