//! AutoSF: progressive greedy search of task-aware scoring functions
//! (Algorithm 1 of the paper).
//!
//! Per budget step `b = 4 … B`:
//!
//! 1. keep `N` parent structures with `b − 1` non-zero items;
//! 2. expand each parent by one multiplicative item in every possible way,
//!    pruning degenerate structures and canonical duplicates;
//! 3. rank the children with the [`crate::predictor`];
//! 4. train the top-`K` stand-alone, record their true validation MRR and
//!    refit the predictor.
//!
//! The expensive part — hundreds of stand-alone trainings — is exactly the
//! cost ERAS's one-shot supernet eliminates (Table IX).

use crate::evaluator::{SearchBudget, SearchResult, StandaloneEvaluator};
use crate::predictor::Predictor;
use eras_data::{Dataset, FilterIndex};
use eras_linalg::cmp::nan_last_desc_f64;
use eras_linalg::Rng;
use eras_sf::canonical::canonicalize;
use eras_sf::{BlockSf, Op};
use eras_train::trainer::TrainConfig;
use std::collections::HashSet;

/// AutoSF hyperparameters.
#[derive(Debug, Clone)]
pub struct AutoSfConfig {
    /// Number of blocks `M`.
    pub m: usize,
    /// Final budget `B` of non-zero items.
    pub max_budget: usize,
    /// Parents kept per greedy step (`N` in Algorithm 1).
    pub parents: usize,
    /// Children expanded per step before predictor ranking (`N₁`).
    pub expansions: usize,
    /// Children actually trained per step (top-`K`).
    pub train_top_k: usize,
    /// Search RNG seed.
    pub seed: u64,
}

impl Default for AutoSfConfig {
    fn default() -> Self {
        AutoSfConfig {
            m: 4,
            max_budget: 8,
            parents: 4,
            expansions: 64,
            train_top_k: 4,
            seed: 0,
        }
    }
}

/// Seed structures with `M` non-zero items: generalized diagonals
/// `f = Σ_i ⟨h_i, ±r_{σ(i)}, t_{π(i)}⟩` sampled at random (DistMult's grid
/// is always included).
fn seed_structures(m: usize, count: usize, rng: &mut Rng) -> Vec<BlockSf> {
    let mut seeds = vec![eras_sf::zoo::distmult(m)];
    let mut seen: HashSet<BlockSf> = seeds.iter().map(canonicalize).collect();
    let mut attempts = 0;
    while seeds.len() < count && attempts < count * 50 {
        attempts += 1;
        let mut cols: Vec<usize> = (0..m).collect();
        let mut rels: Vec<usize> = (0..m).collect();
        rng.shuffle(&mut cols);
        rng.shuffle(&mut rels);
        let mut sf = BlockSf::zeros(m);
        for i in 0..m {
            let op = if rng.bernoulli(0.5) {
                Op::pos(rels[i] as u8)
            } else {
                Op::neg(rels[i] as u8)
            };
            sf.set(i, cols[i], op);
        }
        if seen.insert(canonicalize(&sf)) {
            seeds.push(sf);
        }
    }
    seeds
}

/// All single-item expansions of a parent (one zero cell set to one op),
/// filtered for degeneracy.
fn expand(parent: &BlockSf, rng: &mut Rng, limit: usize) -> Vec<BlockSf> {
    let m = parent.m();
    let mut children = Vec::new();
    for i in 0..m {
        for j in 0..m {
            if !parent.get(i, j).is_zero() {
                continue;
            }
            for k in 1..Op::alphabet_size(m) {
                let mut child = parent.clone();
                child.set(i, j, Op::from_index(k, m));
                if !child.is_degenerate() {
                    children.push(child);
                }
            }
        }
    }
    rng.shuffle(&mut children);
    children.truncate(limit);
    children
}

/// Run AutoSF. Returns the best structure found within the budget.
pub fn search(
    dataset: &Dataset,
    filter: &FilterIndex,
    train_cfg: &TrainConfig,
    cfg: &AutoSfConfig,
    budget: SearchBudget,
) -> SearchResult {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut evaluator =
        StandaloneEvaluator::new("AutoSF", dataset, filter, train_cfg.clone(), budget);
    let mut predictor = Predictor::new(1e-3);

    // Budget step b = M: evaluate the seeds as one concurrent batch.
    let seeds = seed_structures(cfg.m, cfg.parents.max(2), &mut rng);
    let mut scored_parents: Vec<(BlockSf, f64)> = Vec::new();
    for (sf, mrr) in seeds.iter().zip(evaluator.evaluate_batch(&seeds)) {
        if let Some(mrr) = mrr {
            predictor.observe(sf, mrr);
            scored_parents.push((sf.clone(), mrr));
        }
    }
    predictor.fit();

    for _b in (cfg.m + 1)..=cfg.max_budget {
        if evaluator.exhausted() || scored_parents.is_empty() {
            break;
        }
        // Keep the N best parents.
        scored_parents.sort_by(|a, b| nan_last_desc_f64(a.1, b.1));
        scored_parents.truncate(cfg.parents);

        // Expand, dedupe canonically, rank by predictor.
        let mut seen: HashSet<BlockSf> = HashSet::new();
        let mut children: Vec<BlockSf> = Vec::new();
        let per_parent = (cfg.expansions / scored_parents.len().max(1)).max(1);
        for (parent, _) in &scored_parents {
            for child in expand(parent, &mut rng, per_parent) {
                if seen.insert(canonicalize(&child)) {
                    children.push(child);
                }
            }
        }
        let mut ranked: Vec<(f64, BlockSf)> = children
            .into_iter()
            .map(|sf| (predictor.predict(&sf), sf))
            .collect();
        ranked.sort_by(|a, b| nan_last_desc_f64(a.0, b.0));

        // Train the top-K for real — batched through the evaluator, at
        // most `batch_width` concurrent trainings per dispatch; they
        // become candidate parents.
        let top: Vec<BlockSf> = ranked
            .into_iter()
            .take(cfg.train_top_k)
            .map(|(_, sf)| sf)
            .collect();
        let mut next_parents = Vec::new();
        'topk: for chunk in top.chunks(evaluator.batch_width()) {
            for (sf, mrr) in chunk.iter().zip(evaluator.evaluate_batch(chunk)) {
                match mrr {
                    Some(mrr) => {
                        predictor.observe(sf, mrr);
                        next_parents.push((sf.clone(), mrr));
                    }
                    // Budget exhausted: stop at the first miss, exactly
                    // like the one-at-a-time protocol — later canonical
                    // duplicates of already-trained structures would
                    // still resolve from the cache, but observing them
                    // would skew the predictor and parent selection
                    // relative to the sequential run.
                    None => break 'topk,
                }
            }
        }
        predictor.fit();
        if next_parents.is_empty() {
            break;
        }
        scored_parents = next_parents;
    }

    evaluator.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;

    fn fast_train_cfg() -> TrainConfig {
        TrainConfig {
            dim: 16,
            max_epochs: 3,
            eval_every: 3,
            patience: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn seeds_are_valid_generalized_diagonals() {
        let mut rng = Rng::seed_from_u64(1);
        let seeds = seed_structures(4, 6, &mut rng);
        assert!(seeds.len() >= 2);
        for sf in &seeds {
            assert_eq!(sf.num_nonzero(), 4);
            assert!(!sf.is_degenerate());
            assert!(sf.uses_all_blocks());
        }
    }

    #[test]
    fn expansions_add_exactly_one_item() {
        let mut rng = Rng::seed_from_u64(2);
        let parent = eras_sf::zoo::distmult(4);
        let children = expand(&parent, &mut rng, 1000);
        assert!(!children.is_empty());
        for child in &children {
            assert_eq!(child.num_nonzero(), 5);
            assert!(!child.is_degenerate());
        }
    }

    #[test]
    fn search_respects_budget_and_returns_best() {
        let dataset = Preset::Tiny.build(2);
        let filter = FilterIndex::build(&dataset);
        let result = search(
            &dataset,
            &filter,
            &fast_train_cfg(),
            &AutoSfConfig {
                expansions: 16,
                train_top_k: 2,
                ..AutoSfConfig::default()
            },
            SearchBudget {
                max_evaluations: 8,
                max_seconds: f64::INFINITY,
            },
        );
        assert!(result.evaluations <= 8);
        assert!(result.best_mrr > 0.0);
        assert!(!result.trace.is_empty());
        // The reported best matches the trace's final best.
        assert_eq!(result.trace.final_best().unwrap(), result.best_mrr);
    }
}
