//! A mutex-free sharded map for concurrent candidate-evaluation caching.
//!
//! [`ShardedCache`] hashes each key to one of a fixed set of shards;
//! every shard is an append-only singly-linked list whose head pointer
//! is advanced with a CAS loop. Readers walk the list after an
//! `Acquire` load of the head, so a published node (and the key/value
//! it carries) is always fully visible — no locks anywhere on either
//! path.
//!
//! The structure is deliberately minimal: the evaluator's access
//! pattern is "look up before training, publish after", entries are
//! never removed or overwritten (a candidate's stand-alone MRR is a
//! pure function of the candidate), and the map lives as long as one
//! search run. Inserting the same key twice is not an error — readers
//! see the most recently published node first — but the evaluator
//! dedupes by canonical form before training, so it never happens
//! there.

use eras_linalg::sync::{AtomicPtr, Ordering};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ptr;

/// Default shard count: enough to make CAS contention unlikely at the
/// batch widths the searchers use, small enough to stay cheap to scan
/// on drop.
const DEFAULT_SHARDS: usize = 16;

struct Node<K, V> {
    key: K,
    value: V,
    next: *mut Node<K, V>,
}

/// Lock-free insert-only hash map from `K` to a `Copy` value.
pub struct ShardedCache<K, V> {
    shards: Vec<AtomicPtr<Node<K, V>>>,
    /// The map owns its nodes (freed in `Drop`); this marker gives it
    /// the auto traits and drop-check behaviour of that ownership.
    _own: PhantomData<Box<Node<K, V>>>,
}

// SAFETY: the map owns its nodes, so sending it sends the K/V it
// holds (hence `Send` bounds); sharing it shares references to them
// across threads and moves inserted pairs from the inserting thread
// into the shared structure (hence `Send + Sync` for `Sync`). The
// pointer plumbing itself is race-free: heads move by CAS and nodes
// are immutable once published.
// audit:allow(W406): owns its nodes; CAS-published heads, immutable nodes
unsafe impl<K: Send, V: Send> Send for ShardedCache<K, V> {}
// audit:allow(W406): shared walks only see fully published (Release) nodes
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for ShardedCache<K, V> {}

impl<K: Hash + Eq, V: Copy> ShardedCache<K, V> {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped to at least 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1))
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            _own: PhantomData,
        }
    }

    // audit:allow(E701): hash % len is always < len, and new() clamps
    // the shard count to at least 1
    fn shard(&self, key: &K) -> &AtomicPtr<Node<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % self.shards.len()]
    }

    /// Look up a key. Concurrent with inserts.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut p = self.shard(key).load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: nodes are only freed in `Drop`, which takes
            // `&mut self`, so every pointer reachable from a shard head
            // stays valid while any `&self` borrow is live.
            let node = unsafe { &*p };
            if node.key == *key {
                return Some(node.value);
            }
            p = node.next;
        }
        None
    }

    /// Publish a key/value pair. Concurrent with gets and other
    /// inserts; lock-free (a failed CAS means another insert won the
    /// head, and the loop retries on the new head).
    pub fn insert(&self, key: K, value: V) {
        let head = self.shard(&key);
        let node = Box::into_raw(Box::new(Node {
            key,
            value,
            next: ptr::null_mut(),
        }));
        let mut cur = head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours alone until the CAS publishes it.
            unsafe { (*node).next = cur };
            match head.compare_exchange_weak(cur, node, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of stored entries (walks every shard; meant for tests
    /// and diagnostics, not hot paths).
    pub fn len(&self) -> usize {
        let mut n = 0;
        for shard in &self.shards {
            let mut p = shard.load(Ordering::Acquire);
            while !p.is_null() {
                n += 1;
                // SAFETY: as in `get`.
                p = unsafe { (*p).next };
            }
        }
        n
    }

    /// True when no entry has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Copy> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for ShardedCache<K, V> {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            let mut p = *shard.get_mut();
            while !p.is_null() {
                // SAFETY: `&mut self` means no reader or writer is
                // live; every node was allocated with `Box::into_raw`.
                let node = unsafe { Box::from_raw(p) };
                p = node.next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::pool::ThreadPool;

    #[test]
    fn get_returns_inserted_values() {
        let cache: ShardedCache<String, f64> = ShardedCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"a".to_owned()), None);
        cache.insert("a".to_owned(), 1.5);
        cache.insert("b".to_owned(), -2.0);
        assert_eq!(cache.get(&"a".to_owned()), Some(1.5));
        assert_eq!(cache.get(&"b".to_owned()), Some(-2.0));
        assert_eq!(cache.get(&"c".to_owned()), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn single_shard_chains_collisions() {
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(1);
        for k in 0..100u64 {
            cache.insert(k, k * 3);
        }
        for k in 0..100u64 {
            assert_eq!(cache.get(&k), Some(k * 3));
        }
        assert_eq!(cache.len(), 100);
    }

    #[test]
    fn concurrent_inserts_from_pool_tasks_all_land() {
        let pool = ThreadPool::new(8);
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(4);
        pool.run(256, |i| {
            cache.insert(i as u64, i as u64 + 1000);
        });
        assert_eq!(cache.len(), 256);
        for i in 0..256u64 {
            assert_eq!(cache.get(&i), Some(i + 1000), "key {i}");
        }
    }

    #[test]
    fn concurrent_reads_during_inserts_see_published_entries() {
        let pool = ThreadPool::new(4);
        let cache: ShardedCache<u64, u64> = ShardedCache::new();
        // Half the tasks write, half read back keys that are already
        // guaranteed published (their own writes from earlier rounds).
        for round in 0..8u64 {
            pool.run(32, |i| {
                let key = round * 32 + i as u64;
                cache.insert(key, key);
                if round > 0 {
                    let prev = (round - 1) * 32 + i as u64;
                    assert_eq!(cache.get(&prev), Some(prev));
                }
            });
        }
        assert_eq!(cache.len(), 256);
    }
}
