//! # eras-search
//!
//! The stand-alone scoring-function searchers ERAS is compared against in
//! Figure 2 and Table IX of the paper:
//!
//! - [`autosf`]: AutoSF's progressive greedy search (Algorithm 1) — expand
//!   parents by one multiplicative item, prune degenerate/duplicate
//!   structures, rank candidates with a learned [`predictor`], train the
//!   top-K stand-alone, repeat;
//! - [`random`]: random search (Li & Talwalkar), the hard-to-beat NAS
//!   baseline;
//! - [`tpe`]: a tree-structured-Parzen-estimator-style sampler standing in
//!   for the paper's HyperOpt "Bayes" baseline (DESIGN.md §2);
//! - [`evaluator`]: the shared stand-alone evaluation mechanism — train a
//!   candidate to convergence, return its validation MRR — with
//!   canonicalisation-aware caching and wall-clock [`trace`] recording, so
//!   every searcher reports the same "best-so-far vs time" curves the
//!   paper plots. Batches of candidates train concurrently on the shared
//!   thread pool, with a lock-free [`sharded`] cache underneath;
//!   results are identical to one-at-a-time evaluation.

pub mod autosf;
pub mod evaluator;
pub mod predictor;
pub mod random;
pub mod sharded;
pub mod tpe;
pub mod trace;

pub use evaluator::{SearchBudget, SearchResult, StandaloneEvaluator};
pub use sharded::ShardedCache;
pub use trace::{SearchTrace, TracePoint};
