//! Scoring-throughput micro-benchmarks.
//!
//! Backs Table I's inference-cost column: per-candidate scoring of every
//! block bilinear function is `O(d)` regardless of the structure's
//! non-zero count (the query vector is built once per query), so
//! DistMult-shaped and ComplEx-shaped structures should be within a small
//! factor of each other, and doubling `d` should roughly double the cost.

use eras_bench::harness::bench;
use eras_data::Triple;
use eras_linalg::Rng;
use eras_sf::{zoo, BlockSf};
use eras_train::eval::ScoreModel;
use eras_train::{BlockModel, Embeddings};
use std::hint::black_box;

fn bench_score_all_tails() {
    let num_entities = 2000;
    for dim in [32usize, 64] {
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(num_entities, 8, dim, &mut rng);
        let mut out = vec![0.0f32; num_entities];
        for (name, sf) in [
            ("distmult", zoo::distmult(4)),
            ("complex", zoo::complex()),
            ("dense-random", BlockSf::random(4, 14, &mut rng)),
        ] {
            let model = BlockModel::universal(sf, 8);
            bench(&format!("score_all_tails/{name}/d{dim}"), || {
                model.score_all_tails(&emb, black_box(3), black_box(1), &mut out);
                black_box(out[0])
            });
        }
    }
}

fn bench_score_single_triple() {
    let mut rng = Rng::seed_from_u64(2);
    let emb = Embeddings::init(1000, 4, 64, &mut rng);
    let model = BlockModel::universal(zoo::complex(), 4);
    let t = Triple::new(5, 1, 9);
    bench("score_triple_complex_d64", || {
        black_box(model.score_triple(&emb, black_box(t)))
    });
}

fn main() {
    bench_score_all_tails();
    bench_score_single_triple();
}
