//! Million-entity scale benchmark: negative-sampling training plus
//! sampled filtered ranking on the synthetic `scale1m-synth` preset.
//!
//! The point being measured is the complexity switch behind
//! `LossMode::NegSampling`: a full-softmax epoch touches every entity
//! row per triple (O(entities · dim)), while the negative-sampling
//! epoch touches only the positive rows plus `negatives` sampled rows
//! (O(negatives · dim)) — the difference between "impossible" and
//! "seconds" at one million entities. Likewise `RankingMode::Sampled`
//! scores a fixed candidate set instead of the full entity table.
//!
//! Sections:
//!
//! 1. Dataset build — the cluster-permutation generator at 1M
//!    entities / 3M triples (`gen_s`).
//! 2. Epoch timing — neg-sampling epochs at pool sizes 1 and 4,
//!    interleaved round-robin per repetition like
//!    `benches/training.rs`; the timed repetitions *are* the training
//!    run, so the states carry across reps and the final embeddings
//!    feed section 3. Keys `dp{1,4}_epoch_ms_{min,med}`.
//! 3. Sampled filtered ranking over the test split
//!    (`sampled_eval_ms`, `dp{1,4}_sampled_mrr`); the two MRRs must
//!    agree bit-for-bit because data-parallel training is pool-size
//!    invariant.
//! 4. Bytes-touched accounting — the analytic per-epoch embedding
//!    traffic of the sparse path vs the dense full-softmax path
//!    (`sparse_epoch_bytes`, `dense_epoch_bytes`, `touch_ratio`),
//!    plus the process peak-RSS proxy from `/proc/self/status`
//!    (`peak_rss_bytes`, 0 where unavailable).
//!
//! Set `ERAS_BENCH_QUICK=1` for CI smoke runs: the `scale-smoke-synth`
//! preset (20k entities) replaces the 1M one and the JSON is written
//! with `"quick": true`.

use eras_bench::harness::bench;
use eras_bench::report::save_json;
use eras_data::{FilterIndex, Json, ScalePreset};
use eras_linalg::optim::Adagrad;
use eras_linalg::pool::ThreadPool;
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::eval::link_prediction_sampled_pool;
use eras_train::parallel::{train_minibatch_parallel, GradShards};
use eras_train::{BlockModel, Corruption, Embeddings, LossMode, NegCtx};
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 32;
const BATCH_SIZE: usize = 4096;
const NEGATIVES: usize = 16;
const GAMMA: f32 = 6.0;
const ADV_TEMP: f32 = 1.0;
const EVAL_CANDIDATES: usize = 200;
const EVAL_SEED: u64 = 42;
const POOL_SIZES: [usize; 2] = [1, 4];

struct TrainState {
    rng: Rng,
    emb: Embeddings,
    opt_e: Adagrad,
    opt_r: Adagrad,
}

impl TrainState {
    fn fresh(num_entities: usize, num_relations: usize) -> TrainState {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(num_entities, num_relations, DIM, &mut rng);
        let opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        TrainState {
            rng,
            emb,
            opt_e,
            opt_r,
        }
    }
}

fn min_med(times: &mut [f64]) -> (f64, f64) {
    times.sort_by(f64::total_cmp);
    (times[0], times[times.len() / 2])
}

/// Peak resident set in bytes from `/proc/self/status` (`VmHWM`);
/// 0 on platforms without procfs.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

fn main() {
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let reps = if quick { 2 } else { 4 };
    let preset = if quick {
        ScalePreset::ScaleSmoke
    } else {
        ScalePreset::Scale1M
    };

    let t0 = Instant::now();
    let ds = preset.build(7);
    let gen_s = t0.elapsed().as_secs_f64();
    let filter = FilterIndex::build(&ds);
    let model = BlockModel::universal(zoo::complex(), ds.num_relations());
    let neg = NegCtx::uniform(&filter);
    let mode = LossMode::NegSampling {
        negatives: NEGATIVES,
        gamma: GAMMA,
        adversarial_temp: ADV_TEMP,
        corruption: Corruption::Uniform,
    };
    println!(
        "{:<40} {} entities, {} relations, {} train triples ({gen_s:.1}s to generate)",
        format!("scale/{}", preset.name()),
        ds.num_entities(),
        ds.num_relations(),
        ds.train.len()
    );

    bench(
        &format!("scale_sampled_neg_block/{}/d{DIM}", preset.name()),
        || {
            let mut rng = Rng::seed_from_u64(9);
            let mut out = [0u32; NEGATIVES];
            eras_train::negative::sample_neg_block(
                11,
                0,
                17,
                true,
                ds.num_entities(),
                Some(&filter),
                &mut rng,
                &mut out,
            );
            black_box(out)
        },
    );

    let mut dp: Vec<(ThreadPool, TrainState, GradShards, Vec<f64>)> = POOL_SIZES
        .iter()
        .map(|&t| {
            (
                ThreadPool::new(t),
                TrainState::fresh(ds.num_entities(), ds.num_relations()),
                GradShards::new(),
                Vec::with_capacity(reps),
            )
        })
        .collect();

    // Round-robin like `benches/training.rs`, except the reps are the
    // run itself: rep r is epoch r of every configuration, so both
    // states end the loop bit-identically trained for `reps` epochs.
    for _ in 0..reps {
        for (pool, state, shards, times) in dp.iter_mut() {
            let t0 = Instant::now();
            for chunk in ds.train.chunks(BATCH_SIZE) {
                black_box(train_minibatch_parallel(
                    &model,
                    &mut state.emb,
                    &mut state.opt_e,
                    &mut state.opt_r,
                    chunk,
                    mode,
                    Some(&neg),
                    0.0,
                    &mut state.rng,
                    pool,
                    shards,
                ));
            }
            times.push(t0.elapsed().as_secs_f64());
        }
    }

    let mut results = Json::obj()
        .set("preset", preset.name())
        .set("entities", ds.num_entities())
        .set("relations", ds.num_relations())
        .set("train_triples", ds.train.len())
        .set("test_triples", ds.test.len())
        .set("dim", DIM)
        .set("batch", BATCH_SIZE)
        .set("loss", "neg")
        .set("negatives", NEGATIVES)
        .set("gamma", GAMMA as f64)
        .set("adv_temp", ADV_TEMP as f64)
        .set("eval_candidates", EVAL_CANDIDATES)
        .set("eval_seed", EVAL_SEED)
        .set("epochs", reps)
        .set("quick", quick)
        .set("generate_s", gen_s);

    for ((_, _, _, times), &t) in dp.iter_mut().zip(&POOL_SIZES) {
        let (dp_min, dp_med) = min_med(times);
        println!(
            "{:<40} min {:>9.1} ms  med {:>9.1} ms",
            format!(
                "scale_epoch/{}/neg{NEGATIVES}_d{DIM}/dp_{t}t",
                preset.name()
            ),
            dp_min * 1e3,
            dp_med * 1e3
        );
        results = results
            .set(&format!("dp{t}_epoch_ms_min"), dp_min * 1e3)
            .set(&format!("dp{t}_epoch_ms_med"), dp_med * 1e3);
    }

    // Sampled filtered ranking on each trained state. Data-parallel
    // training is bit-identical across pool sizes and the candidate
    // set is a function of (n, candidates, seed) alone, so the two
    // MRRs must agree exactly; a mismatch here is a determinism bug.
    let mut mrrs = Vec::new();
    for ((pool, state, _, _), &t) in dp.iter().zip(&POOL_SIZES) {
        let t0 = Instant::now();
        let m = link_prediction_sampled_pool(
            &model,
            &state.emb,
            &ds.test,
            &filter,
            EVAL_CANDIDATES,
            EVAL_SEED,
            pool,
        );
        let eval_s = t0.elapsed().as_secs_f64();
        println!(
            "{:<40} mrr {:.4}  hits@10 {:.4}  ({:.1} ms)",
            format!("scale_eval/{}/cand{EVAL_CANDIDATES}/dp_{t}t", preset.name()),
            m.mrr,
            m.hits10,
            eval_s * 1e3
        );
        results = results
            .set(&format!("dp{t}_sampled_mrr"), m.mrr)
            .set(&format!("dp{t}_sampled_hits10"), m.hits10)
            .set(&format!("dp{t}_sampled_eval_ms"), eval_s * 1e3);
        mrrs.push(m.mrr);
    }
    let bits_equal = mrrs.windows(2).all(|w| w[0].to_bits() == w[1].to_bits());
    assert!(
        bits_equal,
        "sampled MRR must be pool-size invariant: {mrrs:?}"
    );

    // Analytic embedding traffic per epoch. The sparse path reads and
    // writes, per triple and side, the anchor row plus the positive
    // target and `NEGATIVES` candidate rows; the dense full-softmax
    // path scans the whole entity table per side instead.
    let row = DIM * std::mem::size_of::<f32>();
    let sparse = ds.train.len() as u64 * 2 * (2 + NEGATIVES as u64) * row as u64;
    let dense = ds.train.len() as u64 * 2 * ds.num_entities() as u64 * row as u64;
    let rss = peak_rss_bytes();
    println!(
        "{:<40} sparse {:.2} GB  dense {:.2} GB  ratio {:.0}x  peak rss {:.2} GB",
        "scale_bytes_touched/per_epoch",
        sparse as f64 / 1e9,
        dense as f64 / 1e9,
        dense as f64 / sparse as f64,
        rss as f64 / 1e9
    );
    results = results
        .set("sparse_epoch_bytes", sparse)
        .set("dense_epoch_bytes", dense)
        .set("touch_ratio", dense as f64 / sparse as f64)
        .set("peak_rss_bytes", rss)
        .set("dp_mrr_bits_equal", bits_equal);

    match save_json("BENCH_scale", &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}
