//! Serving-engine benchmark: single-query latency and batched top-k
//! throughput on a synthetic 50k-entity graph.
//!
//! Measures the `QueryEngine` kernel itself (cache disabled, anchors
//! rotated so no result is reused): one pass over the entity table per
//! query, and one *shared* pass for a 64-query batch — the difference is
//! the batching win. Emits `results/BENCH_serving.json`.

use eras_bench::harness::bench;
use eras_bench::report::save_json;
use eras_data::vocab::Vocab;
use eras_data::{Json, Triple};
use eras_linalg::Rng;
use eras_serve::{Direction, Query, QueryEngine};
use eras_sf::zoo;
use eras_train::io::Snapshot;
use eras_train::{BlockModel, Embeddings};
use std::hint::black_box;
use std::time::Instant;

const NUM_ENTITIES: usize = 50_000;
const NUM_RELATIONS: usize = 16;
const DIM: usize = 32;
const KNOWN_TRIPLES: usize = 150_000;
const BATCH: usize = 64;

fn synthetic_engine() -> QueryEngine {
    let mut rng = Rng::seed_from_u64(7);
    let mut entities = Vocab::new();
    for i in 0..NUM_ENTITIES {
        entities.intern(&format!("ent_{i}"));
    }
    let mut relations = Vocab::new();
    for r in 0..NUM_RELATIONS {
        relations.intern(&format!("rel_{r}"));
    }
    let model = BlockModel::universal(zoo::complex(), NUM_RELATIONS);
    let embeddings = Embeddings::init(NUM_ENTITIES, NUM_RELATIONS, DIM, &mut rng);
    let known: Vec<Triple> = (0..KNOWN_TRIPLES)
        .map(|_| {
            Triple::new(
                rng.next_below(NUM_ENTITIES) as u32,
                rng.next_below(NUM_RELATIONS) as u32,
                rng.next_below(NUM_ENTITIES) as u32,
            )
        })
        .collect();
    let snap = Snapshot::new(
        "bench-serving",
        entities,
        relations,
        &model,
        embeddings,
        known,
    );
    // Cache disabled: this benchmark measures the scoring kernel.
    QueryEngine::new(snap, 0).expect("valid synthetic snapshot")
}

fn query(anchor: u32, k: usize) -> Query {
    Query {
        dir: Direction::Tail,
        anchor: anchor % NUM_ENTITIES as u32,
        rel: anchor % NUM_RELATIONS as u32,
        k,
        filtered: true,
    }
}

fn main() {
    let engine = synthetic_engine();
    let mut results = Json::obj()
        .set("entities", NUM_ENTITIES)
        .set("relations", NUM_RELATIONS)
        .set("dim", DIM)
        .set("known_triples", KNOWN_TRIPLES)
        .set("batch", BATCH);

    for k in [1usize, 10, 100] {
        // Single-query latency, rotating anchors to defeat any reuse.
        let mut anchor = 0u32;
        let ns = bench(&format!("serve/single_query/k{k}"), || {
            anchor = anchor.wrapping_add(1);
            black_box(engine.answer(black_box(query(anchor, k))).expect("query"))
        });
        results = results
            .set(&format!("single_query_k{k}_ns"), ns)
            .set(&format!("single_query_k{k}_qps"), 1e9 / ns);

        // Batched throughput: BATCH queries, one shared table pass.
        let mut base = 0u32;
        let ns = bench(&format!("serve/batch{BATCH}/k{k}"), || {
            base = base.wrapping_add(BATCH as u32);
            let queries: Vec<Query> = (0..BATCH as u32).map(|i| query(base + i, k)).collect();
            black_box(engine.answer_batch(black_box(&queries)).expect("batch"))
        });
        let qps = BATCH as f64 * 1e9 / ns;
        results = results
            .set(&format!("batch{BATCH}_k{k}_ns"), ns)
            .set(&format!("batch{BATCH}_k{k}_qps"), qps);
        println!(
            "{:<40} {qps:>14.0} queries/sec",
            format!("serve/batch{BATCH}/k{k} throughput")
        );
    }

    // Observability overhead on the query path: the identical k=10
    // kernel with a JSONL tracer draining into `io::sink()` versus no
    // tracer installed. The engine's spans and events are compiled in
    // either way (this crate builds with `obs-hook`); the delta is the
    // serialization cost once a sink is live. Arms run back-to-back
    // inside each round and the median of the paired per-round ratios
    // is reported, which cancels machine drift the independent
    // estimates above cannot.
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let rounds = if quick { 4 } else { 16 };
    let iters = 24u32;
    let mut anchor = 0u32;
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    let mut paired_ratio = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            anchor = anchor.wrapping_add(1);
            black_box(engine.answer(black_box(query(anchor, 10))).expect("query"));
        }
        let off = t0.elapsed().as_nanos() as f64 / f64::from(iters);

        let guard = eras_obs::trace::install_writer(Box::new(std::io::sink()));
        let t0 = Instant::now();
        for _ in 0..iters {
            anchor = anchor.wrapping_add(1);
            black_box(engine.answer(black_box(query(anchor, 10))).expect("query"));
        }
        let on = t0.elapsed().as_nanos() as f64 / f64::from(iters);
        drop(guard);

        off_best = off_best.min(off);
        on_best = on_best.min(on);
        paired_ratio.push(on / off);
    }
    paired_ratio.sort_by(f64::total_cmp);
    // The paired median still jitters between rounds; on a quiet kernel
    // it can land slightly *below* 1.0, which earlier runs reported as
    // a nonsensical negative overhead. Estimate the round-to-round
    // noise floor from the interquartile range of the paired ratios and
    // clamp the reported overhead: a median within the floor (either
    // side of 1.0) is indistinguishable from zero. The raw median is
    // kept alongside so the clamping is auditable.
    let n = paired_ratio.len();
    let overhead_raw_pct = 100.0 * (paired_ratio[n / 2] - 1.0);
    let noise_floor_pct = 100.0 * (paired_ratio[(3 * n) / 4] - paired_ratio[n / 4]);
    let overhead_pct = if overhead_raw_pct.abs() <= noise_floor_pct {
        0.0
    } else {
        overhead_raw_pct.max(0.0)
    };
    if overhead_raw_pct.abs() <= noise_floor_pct {
        println!(
            "{:<40} {:>14} (raw {overhead_raw_pct:+.1}%, floor {noise_floor_pct:.1}%)",
            "serve/obs_on/single_query/k10 overhead", "\u{2264} noise"
        );
    } else {
        println!(
            "{:<40} {overhead_pct:>+13.1}% vs untraced (paired med, floor {noise_floor_pct:.1}%)",
            "serve/obs_on/single_query/k10 overhead"
        );
    }
    results = results
        .set("obs_off_single_query_k10_ns", off_best)
        .set("obs_on_single_query_k10_ns", on_best)
        .set("obs_overhead_pct", overhead_pct)
        .set("obs_overhead_pct_raw", overhead_raw_pct)
        .set("noise_floor", noise_floor_pct);

    match save_json("BENCH_serving", &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serving.json: {e}"),
    }
}
