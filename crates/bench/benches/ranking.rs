//! Filtered-ranking evaluation micro-benchmark: the cost of one full
//! link-prediction pass, the dominant cost of every `M_val` evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eras_data::{FilterIndex, Preset};
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::eval::link_prediction;
use eras_train::{BlockModel, Embeddings};
use std::hint::black_box;

fn bench_link_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_prediction");
    let dataset = Preset::Tiny.build(4);
    let filter = FilterIndex::build(&dataset);
    let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
    for n_triples in [32usize, 120] {
        let mut rng = Rng::seed_from_u64(7);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            32,
            &mut rng,
        );
        let triples: Vec<_> = dataset.test.iter().copied().take(n_triples).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_triples),
            &n_triples,
            |b, _| {
                b.iter(|| black_box(link_prediction(&model, &emb, black_box(&triples), &filter)))
            },
        );
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = fast_criterion(); targets = bench_link_prediction);
criterion_main!(benches);
