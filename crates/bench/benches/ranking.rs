//! Filtered-ranking evaluation micro-benchmark: the cost of one full
//! link-prediction pass, the dominant cost of every `M_val` evaluation.

use eras_bench::harness::bench;
use eras_data::{FilterIndex, Preset};
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::eval::link_prediction;
use eras_train::{BlockModel, Embeddings};
use std::hint::black_box;

fn bench_link_prediction() {
    let dataset = Preset::Tiny.build(4);
    let filter = FilterIndex::build(&dataset);
    let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
    for n_triples in [32usize, 120] {
        let mut rng = Rng::seed_from_u64(7);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            32,
            &mut rng,
        );
        let triples: Vec<_> = dataset.test.iter().copied().take(n_triples).collect();
        bench(&format!("link_prediction/{n_triples}"), || {
            black_box(link_prediction(&model, &emb, black_box(&triples), &filter))
        });
    }
}

fn main() {
    bench_link_prediction();
}
