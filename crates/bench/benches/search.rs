//! Search-time static pruning: what a refuted candidate costs with the
//! numeric filter on versus off.
//!
//! A seeded candidate pool (random M=4 structures, the mix the
//! searchers actually draw from) streams through
//! `StandaloneEvaluator::evaluate_batch` twice — filter on and filter
//! off — and the run records the pruned-candidate rate, total and
//! per-candidate wall-clock both ways, and the raw cost of one
//! `certify` call (the static overhead a sound candidate pays). Backs
//! the search-efficiency notes in `docs/performance.md`. Emits
//! `results/BENCH_search.json`. Set `ERAS_BENCH_QUICK` for a smoke run
//! (smaller pool, fewer epochs) — the JSON is still written, with a
//! `quick` marker.

use eras_bench::harness::bench;
use eras_bench::report::save_json;
use eras_data::{FilterIndex, Json, Preset};
use eras_linalg::Rng;
use eras_search::evaluator::{SearchBudget, StandaloneEvaluator};
use eras_sf::numeric::certify;
use eras_sf::{BlockSf, NormBounds};
use eras_train::trainer::TrainConfig;
use std::hint::black_box;
use std::time::Instant;

fn cfg(quick: bool) -> TrainConfig {
    TrainConfig {
        dim: 16,
        max_epochs: if quick { 2 } else { 5 },
        eval_every: 1,
        patience: 2,
        ..TrainConfig::default()
    }
}

/// The candidate mix a random searcher proposes: seeded M=4 structures
/// with 6 occupied cells. A good fraction carry dead blocks — that is
/// exactly the population the filter exists for.
fn candidate_pool(n: usize, seed: u64) -> Vec<BlockSf> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| BlockSf::random(4, 6, &mut rng)).collect()
}

struct RunStats {
    secs: f64,
    trained: usize,
    pruned: usize,
}

fn run_pool(
    dataset: &eras_data::Dataset,
    filter: &FilterIndex,
    cfg: TrainConfig,
    pool: &[BlockSf],
    numeric_filter: bool,
) -> RunStats {
    let mut ev = StandaloneEvaluator::new(
        if numeric_filter {
            "filter-on"
        } else {
            "filter-off"
        },
        dataset,
        filter,
        cfg,
        SearchBudget::default(),
    )
    .numeric_filter(numeric_filter);
    let start = Instant::now();
    for chunk in pool.chunks(8) {
        black_box(ev.evaluate_batch(chunk));
    }
    let secs = start.elapsed().as_secs_f64();
    RunStats {
        secs,
        trained: ev.evaluations(),
        pruned: ev.pruned(),
    }
}

fn main() {
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let pool_size = if quick { 24 } else { 64 };

    let dataset = Preset::Tiny.build(1);
    let filter = FilterIndex::build(&dataset);
    let pool = candidate_pool(pool_size, 11);

    // The static overhead itself: one full certificate (expression
    // graph, symbolic gradients, interval evaluation) for a sound and
    // for a refuted candidate.
    let bounds = NormBounds::default();
    let sound = eras_sf::zoo::distmult(4);
    let ns_certify_sound = bench("certify/sound_distmult_d16", || {
        black_box(certify(black_box(&sound), bounds, 16))
    });
    let dead = {
        let mut sf = eras_sf::zoo::distmult(4);
        sf.set(3, 3, eras_sf::Op::Zero);
        sf
    };
    let ns_certify_dead = bench("certify/refuted_dead_row_d16", || {
        black_box(certify(black_box(&dead), bounds, 16))
    });

    let on = run_pool(&dataset, &filter, cfg(quick), &pool, true);
    let off = run_pool(&dataset, &filter, cfg(quick), &pool, false);
    println!(
        "pool {}: filter on  {:>7.3}s ({} trained, {} pruned)",
        pool.len(),
        on.secs,
        on.trained,
        on.pruned
    );
    println!(
        "pool {}: filter off {:>7.3}s ({} trained)",
        pool.len(),
        off.secs,
        off.trained
    );

    let results = Json::obj()
        .set("quick", quick)
        .set("pool_size", pool.len())
        .set("certify_sound_ns", ns_certify_sound)
        .set("certify_refuted_ns", ns_certify_dead)
        .set("pruned_candidates", on.pruned)
        .set("pruned_rate", on.pruned as f64 / pool.len().max(1) as f64)
        .set("filter_on_secs", on.secs)
        .set("filter_off_secs", off.secs)
        .set(
            "filter_on_per_candidate_ms",
            1e3 * on.secs / pool.len().max(1) as f64,
        )
        .set(
            "filter_off_per_candidate_ms",
            1e3 * off.secs / pool.len().max(1) as f64,
        )
        .set("trained_with_filter", on.trained)
        .set("trained_without_filter", off.trained);

    match save_json("BENCH_search", &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_search.json: {e}"),
    }
}
