//! Search-machinery micro-benchmarks: controller sampling, REINFORCE
//! updates, supernet reward evaluation, EM clustering — the per-epoch
//! costs of Algorithm 2.

use eras_bench::harness::bench;
use eras_core::Supernet;
use eras_ctrl::{kmeans, LstmPolicy, ReinforceTrainer};
use eras_data::{FilterIndex, Preset};
use eras_linalg::Rng;
use eras_train::Embeddings;
use std::hint::black_box;

fn bench_controller() {
    let mut rng = Rng::seed_from_u64(4);
    let supernet = Supernet::new(4, 3);
    let policy = LstmPolicy::new(supernet.vocab(), 32, 16, &mut rng);
    bench("lstm_sample_48_tokens", || {
        black_box(policy.sample(supernet.num_slots(), 1.0, &mut rng))
    });

    let mut policy2 = LstmPolicy::new(supernet.vocab(), 32, 16, &mut rng);
    let mut trainer = ReinforceTrainer::new(&policy2, 0.01, 0.9);
    let episodes: Vec<(Vec<usize>, f64)> = (0..4)
        .map(|i| {
            let ep = policy2.sample(supernet.num_slots(), 1.0, &mut rng);
            (ep.tokens, 0.1 * i as f64)
        })
        .collect();
    bench("reinforce_update_u4", || {
        black_box(trainer.update(&mut policy2, black_box(&episodes)))
    });
}

fn bench_one_shot_reward() {
    let dataset = Preset::Tiny.build(4);
    let filter = FilterIndex::build(&dataset);
    let mut rng = Rng::seed_from_u64(5);
    let emb = Embeddings::init(
        dataset.num_entities(),
        dataset.num_relations(),
        32,
        &mut rng,
    );
    let supernet = Supernet::new(4, 2);
    let assignment = vec![0u8; dataset.num_relations()];
    let sfs = supernet.random_architecture(8, &mut rng);
    let batch: Vec<_> = dataset.valid.iter().copied().take(64).collect();
    bench("one_shot_reward_64_triples", || {
        black_box(supernet.one_shot_reward(
            sfs.clone(),
            &assignment,
            &emb,
            black_box(&batch),
            &filter,
        ))
    });
}

fn bench_em_clustering() {
    let mut rng = Rng::seed_from_u64(6);
    let points = eras_linalg::Matrix::uniform_init(256, 32, 1.0, &mut rng);
    bench("kmeans_256_relations_k4", || {
        black_box(kmeans(black_box(&points), 4, 20, &mut rng))
    });
}

fn main() {
    bench_controller();
    bench_one_shot_reward();
    bench_em_clustering();
}
