//! Kernel micro-benchmarks: the hand-vectorized vecops against their
//! scalar reference forms, the fast-exp sweep, and the fused
//! entity-table scan against the unfused score-then-reduce pipeline.
//!
//! Backs the before/after tables in `docs/performance.md` § Vectorized
//! kernels. Emits `results/BENCH_kernels.json`. Set `ERAS_BENCH_QUICK`
//! for a smoke run (dimension 32 only, small scan table) — the JSON is
//! still written, with a `quick` marker.

use eras_bench::harness::bench;
use eras_bench::report::save_json;
use eras_data::Json;
use eras_linalg::scan::{scan_rows, StreamTopK};
use eras_linalg::softmax::{exp_approx, exp_approx_shifted};
use eras_linalg::vecops::{self, reference};
use eras_linalg::{Matrix, Rng};
use std::hint::black_box;

/// Queries per fused-scan group (the serving engine's shard width).
const SCAN_QUERIES: usize = 8;
const TOPK: usize = 10;

fn vec_of(n: usize, rng: &mut Rng) -> Vec<f32> {
    (0..n).map(|_| rng.normal()).collect()
}

fn bench_dot_family(dim: usize, rng: &mut Rng, results: Json) -> Json {
    let x = vec_of(dim, rng);
    let ys: Vec<Vec<f32>> = (0..4).map(|_| vec_of(dim, rng)).collect();

    let ns_ref = bench(&format!("dot/scalar_ref/d{dim}"), || {
        black_box(reference::dot(black_box(&x), black_box(&ys[0])))
    });
    let ns_vec = bench(&format!("dot/laned/d{dim}"), || {
        black_box(vecops::dot(black_box(&x), black_box(&ys[0])))
    });
    // dot4 amortises the left operand over four rows; report per-dot.
    let ns_dot4 = bench(&format!("dot4/laned/d{dim}"), || {
        black_box(vecops::dot4(black_box(&x), &ys[0], &ys[1], &ys[2], &ys[3]))
    }) / 4.0;

    results
        .set(&format!("dot_ref_d{dim}_ns"), ns_ref)
        .set(&format!("dot_d{dim}_ns"), ns_vec)
        .set(&format!("dot4_per_dot_d{dim}_ns"), ns_dot4)
}

fn bench_axpy(dim: usize, rng: &mut Rng, results: Json) -> Json {
    let x = vec_of(dim, rng);
    let mut y = vec_of(dim, rng);
    let ns_ref = bench(&format!("axpy/scalar_ref/d{dim}"), || {
        reference::axpy(black_box(0.5), black_box(&x), black_box(&mut y));
        black_box(y[0])
    });
    let ns_vec = bench(&format!("axpy/laned/d{dim}"), || {
        vecops::axpy(black_box(0.5), black_box(&x), black_box(&mut y));
        black_box(y[0])
    });
    results
        .set(&format!("axpy_ref_d{dim}_ns"), ns_ref)
        .set(&format!("axpy_d{dim}_ns"), ns_vec)
}

fn bench_exp(results: Json) -> Json {
    // The training hot path sweeps exp over a whole entity-table score
    // vector per side; benchmark that shape, per element.
    let n = 10_000usize;
    let mut rng = Rng::seed_from_u64(3);
    let base: Vec<f32> = (0..n).map(|_| rng.uniform(-12.0, 4.0)).collect();
    let mut buf = base.clone();

    let ns_std = bench("exp/std_exp/10k", || {
        buf.copy_from_slice(&base);
        for v in &mut buf {
            *v = (*v - 1.0).exp();
        }
        black_box(buf[0])
    }) / n as f64;
    let ns_scalar = bench("exp/approx_scalar/10k", || {
        buf.copy_from_slice(&base);
        for v in &mut buf {
            *v = exp_approx(*v - 1.0);
        }
        black_box(buf[0])
    }) / n as f64;
    let ns_laned = bench("exp/approx_shifted/10k", || {
        buf.copy_from_slice(&base);
        exp_approx_shifted(black_box(&mut buf), black_box(1.0));
        black_box(buf[0])
    }) / n as f64;
    results
        .set("exp_std_per_elem_ns", ns_std)
        .set("exp_approx_per_elem_ns", ns_scalar)
        .set("exp_approx_shifted_per_elem_ns", ns_laned)
}

fn bench_fused_scan(dim: usize, rows: usize, rng: &mut Rng, results: Json) -> Json {
    let table = Matrix::uniform_init(rows, dim, 1.0, rng);
    let qvecs = vec_of(SCAN_QUERIES * dim, rng);
    let no_filter: &[u32] = &[];

    // Fused: one cache-blocked pass, scores streamed into the heaps.
    let ns_fused = bench(&format!("scan/fused_topk/{rows}r_d{dim}"), || {
        let mut sinks: Vec<StreamTopK> = (0..SCAN_QUERIES)
            .map(|_| StreamTopK::new(TOPK, no_filter))
            .collect();
        scan_rows(black_box(&table), black_box(&qvecs), &mut sinks);
        black_box(sinks.pop().unwrap().into_sorted().len())
    });

    // Unfused reference: materialize each query's score vector with a
    // matvec, then feed the heap from the dense buffer.
    let mut scores = vec![0.0f32; rows];
    let ns_unfused = bench(&format!("scan/unfused_topk/{rows}r_d{dim}"), || {
        let mut last = 0usize;
        for qi in 0..SCAN_QUERIES {
            table.matvec(black_box(&qvecs[qi * dim..(qi + 1) * dim]), &mut scores);
            let mut sink = StreamTopK::new(TOPK, no_filter);
            sink.consume_dense(&scores);
            last = sink.into_sorted().len();
        }
        black_box(last)
    });
    results
        .set(&format!("scan_fused_{rows}r_d{dim}_ns"), ns_fused)
        .set(&format!("scan_unfused_{rows}r_d{dim}_ns"), ns_unfused)
        .set(
            &format!("scan_speedup_{rows}r_d{dim}"),
            ns_unfused / ns_fused,
        )
}

/// Feed a dense score vector through the consumer interface.
trait ConsumeDense {
    fn consume_dense(&mut self, scores: &[f32]);
}

impl ConsumeDense for StreamTopK<'_> {
    fn consume_dense(&mut self, scores: &[f32]) {
        use eras_linalg::scan::BlockConsumer;
        self.consume(0, scores);
    }
}

fn main() {
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let dims: &[usize] = if quick { &[32] } else { &[32, 64, 128] };
    let scan_rows_n = if quick { 5_000 } else { 50_000 };

    let mut rng = Rng::seed_from_u64(42);
    let mut results = Json::obj()
        .set("quick", quick)
        .set("lanes", vecops::LANES)
        .set("scan_queries", SCAN_QUERIES)
        .set("scan_rows", scan_rows_n)
        .set("topk", TOPK);

    for &dim in dims {
        results = bench_dot_family(dim, &mut rng, results);
        results = bench_axpy(dim, &mut rng, results);
    }
    results = bench_exp(results);
    for &dim in dims {
        results = bench_fused_scan(dim, scan_rows_n, &mut rng, results);
    }

    match save_json("BENCH_kernels", &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_kernels.json: {e}"),
    }
}
