//! Embedding-training micro-benchmarks: the full-softmax vs sampled
//! 1-vs-all gradient step (the cost trade-off behind `LossMode`).

use eras_bench::harness::bench;
use eras_data::Triple;
use eras_linalg::optim::Adagrad;
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::block::{train_minibatch, BlockScratch};
use eras_train::{BlockModel, Embeddings, LossMode};
use std::hint::black_box;

fn bench_train_minibatch() {
    let num_entities = 2000;
    let dim = 32;
    let batch: Vec<Triple> = (0..64u32)
        .map(|i| Triple::new(i % 500, i % 8, (i * 7 + 3) % 2000))
        .collect();
    for (name, mode) in [
        ("sampled32", LossMode::Sampled { negatives: 32 }),
        ("sampled128", LossMode::Sampled { negatives: 128 }),
        ("full", LossMode::Full),
    ] {
        let mut rng = Rng::seed_from_u64(3);
        let mut emb = Embeddings::init(num_entities, 8, dim, &mut rng);
        let model = BlockModel::universal(zoo::complex(), 8);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        let mut scratch = BlockScratch::new();
        bench(&format!("train_minibatch_64_triples/{name}/d{dim}"), || {
            black_box(train_minibatch(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                black_box(&batch),
                mode,
                &mut rng,
                &mut scratch,
            ))
        });
    }
}

fn main() {
    bench_train_minibatch();
}
