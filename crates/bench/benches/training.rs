//! Embedding-training benchmarks.
//!
//! Three sections:
//!
//! 1. The original minibatch micro-benchmark — full-softmax vs sampled
//!    1-vs-all gradient step (the cost trade-off behind `LossMode`).
//! 2. Thread-scaling epoch benchmark — one sequential training epoch
//!    vs the data-parallel path at pool sizes 1/2/4/8 on the Tiny
//!    preset at dim 64. Configurations are interleaved round-robin
//!    within each repetition so machine noise hits all of them alike,
//!    and the minimum over repetitions is reported (the standard
//!    noise-robust estimator for a deterministic workload). Emits
//!    `results/BENCH_training.json`.
//!
//! 3. Observability overhead — the full trainer (spans, events,
//!    metrics all live) with a JSONL tracer draining to a sink vs no
//!    tracer installed, interleaved the same way. This is the number
//!    behind the "<5% epoch overhead" claim in
//!    `docs/observability.md`; keys `obs_{off,on}_epoch_ms_*` and
//!    `obs_overhead_pct`.
//!
//! Set `ERAS_BENCH_QUICK=1` to cut the repetition count for CI smoke
//! runs; the JSON is still written, with `"quick": true`.

use eras_bench::harness::bench;
use eras_bench::report::save_json;
use eras_data::presets::Preset;
use eras_data::{FilterIndex, Json, Triple};
use eras_linalg::optim::Adagrad;
use eras_linalg::pool::ThreadPool;
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::block::{train_minibatch, BlockScratch};
use eras_train::parallel::{train_minibatch_parallel, GradShards};
use eras_train::trainer::{train_standalone_on, Execution, TrainConfig};
use eras_train::{BlockModel, Embeddings, LossMode};
use std::hint::black_box;
use std::time::Instant;

fn bench_train_minibatch() {
    let num_entities = 2000;
    let dim = 32;
    let batch: Vec<Triple> = (0..64u32)
        .map(|i| Triple::new(i % 500, i % 8, (i * 7 + 3) % 2000))
        .collect();
    for (name, mode) in [
        ("sampled32", LossMode::Sampled { negatives: 32 }),
        ("sampled128", LossMode::Sampled { negatives: 128 }),
        ("full", LossMode::Full),
    ] {
        let mut rng = Rng::seed_from_u64(3);
        let mut emb = Embeddings::init(num_entities, 8, dim, &mut rng);
        let model = BlockModel::universal(zoo::complex(), 8);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        let mut scratch = BlockScratch::new();
        bench(&format!("train_minibatch_64_triples/{name}/d{dim}"), || {
            black_box(train_minibatch(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                black_box(&batch),
                mode,
                None,
                &mut rng,
                &mut scratch,
            ))
        });
    }
}

/// Pool sizes exercised by the scaling section.
const POOL_SIZES: [usize; 4] = [1, 2, 4, 8];
const DIM: usize = 64;
const BATCH_SIZE: usize = 512;

/// Mutable per-configuration training state; every configuration gets
/// an identical seed-3 start so the epochs do identical numeric work.
struct TrainState {
    rng: Rng,
    emb: Embeddings,
    opt_e: Adagrad,
    opt_r: Adagrad,
}

impl TrainState {
    fn fresh(num_entities: usize, num_relations: usize) -> TrainState {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(num_entities, num_relations, DIM, &mut rng);
        let opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        TrainState {
            rng,
            emb,
            opt_e,
            opt_r,
        }
    }
}

fn min_med(times: &mut [f64]) -> (f64, f64) {
    times.sort_by(f64::total_cmp);
    (times[0], times[times.len() / 2])
}

fn bench_epoch_scaling() -> Json {
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let reps = if quick { 8 } else { 60 };
    let ds = Preset::Tiny.build(7);
    let model = BlockModel::universal(zoo::complex(), ds.num_relations());

    let mut seq = TrainState::fresh(ds.num_entities(), ds.num_relations());
    let mut seq_scratch = BlockScratch::new();
    let mut seq_times = Vec::with_capacity(reps);

    let mut dp: Vec<(ThreadPool, TrainState, GradShards, Vec<f64>)> = POOL_SIZES
        .iter()
        .map(|&t| {
            (
                ThreadPool::new(t),
                TrainState::fresh(ds.num_entities(), ds.num_relations()),
                GradShards::new(),
                Vec::with_capacity(reps),
            )
        })
        .collect();

    // Round-robin: every repetition runs one epoch of every
    // configuration back-to-back, so a slow phase of the machine taxes
    // all of them equally instead of biasing whichever config it hits.
    for _ in 0..reps {
        let t0 = Instant::now();
        for chunk in ds.train.chunks(BATCH_SIZE) {
            black_box(train_minibatch(
                &model,
                &mut seq.emb,
                &mut seq.opt_e,
                &mut seq.opt_r,
                chunk,
                LossMode::Full,
                None,
                &mut seq.rng,
                &mut seq_scratch,
            ));
        }
        seq_times.push(t0.elapsed().as_secs_f64());

        for (pool, state, shards, times) in dp.iter_mut() {
            let t0 = Instant::now();
            for chunk in ds.train.chunks(BATCH_SIZE) {
                black_box(train_minibatch_parallel(
                    &model,
                    &mut state.emb,
                    &mut state.opt_e,
                    &mut state.opt_r,
                    chunk,
                    LossMode::Full,
                    None,
                    0.0,
                    &mut state.rng,
                    pool,
                    shards,
                ));
            }
            times.push(t0.elapsed().as_secs_f64());
        }
    }

    let (seq_min, seq_med) = min_med(&mut seq_times);
    println!(
        "{:<40} min {:>8.3} ms  med {:>8.3} ms",
        "train_epoch/tiny_d64_full/sequential",
        seq_min * 1e3,
        seq_med * 1e3
    );
    let mut results = Json::obj()
        .set("entities", ds.num_entities())
        .set("relations", ds.num_relations())
        .set("train_triples", ds.train.len())
        .set("dim", DIM)
        .set("batch", BATCH_SIZE)
        .set("loss", "full")
        .set("reps", reps)
        .set("quick", quick)
        .set("seq_epoch_ms_min", seq_min * 1e3)
        .set("seq_epoch_ms_med", seq_med * 1e3);

    let mut speedup_at_4 = 0.0;
    for ((_, _, _, times), &t) in dp.iter_mut().zip(&POOL_SIZES) {
        let (dp_min, dp_med) = min_med(times);
        let speedup = seq_min / dp_min;
        if t == 4 {
            speedup_at_4 = speedup;
        }
        println!(
            "{:<40} min {:>8.3} ms  med {:>8.3} ms  speedup(min) {speedup:.2}x",
            format!("train_epoch/tiny_d64_full/dp_{t}t"),
            dp_min * 1e3,
            dp_med * 1e3
        );
        results = results
            .set(&format!("dp{t}_epoch_ms_min"), dp_min * 1e3)
            .set(&format!("dp{t}_epoch_ms_med"), dp_med * 1e3)
            .set(&format!("dp{t}_speedup_min"), speedup);
    }
    results.set("speedup_at_4_threads", speedup_at_4)
}

/// Observability overhead: full trainer runs (instrumented epoch,
/// batch, and eval paths) with the JSONL tracer draining into
/// `io::sink()` versus no tracer installed. The two arms interleave
/// within each repetition like the scaling section, and both run the
/// identical deterministic workload, so the delta is exactly the cost
/// of serializing spans and events.
fn bench_obs_overhead(results: Json) -> Json {
    let quick = std::env::var("ERAS_BENCH_QUICK").is_ok();
    let reps = if quick { 4 } else { 24 };
    let ds = Preset::Tiny.build(7);
    let filter = FilterIndex::build(&ds);
    let model = BlockModel::universal(zoo::complex(), ds.num_relations());
    // Sequential execution: the data-parallel path on an oversubscribed
    // container adds scheduler noise an order of magnitude larger than
    // the effect being measured. The sequential trainer walks the same
    // instrumented epoch/batch/eval code.
    let cfg = TrainConfig {
        dim: 32,
        max_epochs: 4,
        eval_every: 4,
        patience: 4,
        batch_size: BATCH_SIZE,
        loss: LossMode::Full,
        execution: Execution::Sequential,
        ..TrainConfig::default()
    };
    let pool = ThreadPool::new(1);

    let mut off_times = Vec::with_capacity(reps);
    let mut on_times = Vec::with_capacity(reps);
    let mut paired_ratio = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let outcome = train_standalone_on(&model, &ds, &filter, &cfg, &pool);
        let off = t0.elapsed().as_secs_f64() / outcome.epochs_run.max(1) as f64;

        let guard = eras_obs::trace::install_writer(Box::new(std::io::sink()));
        let t0 = Instant::now();
        let outcome = train_standalone_on(&model, &ds, &filter, &cfg, &pool);
        let on = t0.elapsed().as_secs_f64() / outcome.epochs_run.max(1) as f64;
        drop(guard);

        off_times.push(off);
        on_times.push(on);
        paired_ratio.push(on / off);
    }

    let (off_min, off_med) = min_med(&mut off_times);
    let (on_min, on_med) = min_med(&mut on_times);
    // Back-to-back arms within one repetition see the same machine
    // phase, so the median of the paired per-rep ratios isolates the
    // tracing cost from drift that min-of-arms cannot cancel.
    let (_, ratio_med) = min_med(&mut paired_ratio);
    let overhead_pct = 100.0 * (ratio_med - 1.0);
    println!(
        "{:<40} min {:>8.3} ms  med {:>8.3} ms",
        "train_epoch/obs_off/tiny_d32_seq",
        off_min * 1e3,
        off_med * 1e3
    );
    println!(
        "{:<40} min {:>8.3} ms  med {:>8.3} ms  overhead(paired med) {overhead_pct:+.1}%",
        "train_epoch/obs_on/tiny_d32_seq",
        on_min * 1e3,
        on_med * 1e3
    );
    results
        .set("obs_off_epoch_ms_min", off_min * 1e3)
        .set("obs_off_epoch_ms_med", off_med * 1e3)
        .set("obs_on_epoch_ms_min", on_min * 1e3)
        .set("obs_on_epoch_ms_med", on_med * 1e3)
        .set("obs_overhead_pct", overhead_pct)
}

fn main() {
    bench_train_minibatch();
    let results = bench_obs_overhead(bench_epoch_scaling());
    match save_json("BENCH_training", &results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_training.json: {e}"),
    }
}
