//! ASCII table rendering and JSON result persistence.

use eras_data::json::ToJson;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    // audit:allow(E701): row shape is fixed by the caller's code, not
    // by request or file data; a mismatch is a programming error
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with per-column width fitting.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal (the paper's Hit@k
/// format).
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Format an MRR with three decimals (the paper's format).
pub fn mrr(x: f64) -> String {
    format!("{x:.3}")
}

/// Write a serialisable result to `results/<name>.json` (directory created
/// on demand). Returns the path written.
pub fn save_json<T: ToJson>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().to_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["model", "MRR"]);
        t.row(vec!["DistMult".into(), "0.821".into()]);
        t.row(vec!["X".into(), "0.9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[0].starts_with("model"));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.9485), "94.8"); // 0.9485 × 100 = 94.84999… in f64
        assert_eq!(mrr(0.95349), "0.953");
    }

    #[test]
    fn save_json_roundtrip() {
        let rows = vec![("a", 1.0f64), ("b", 2.0)];
        let path = save_json("unit_test_report", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"a\""));
        std::fs::remove_file(path).ok();
    }
}
