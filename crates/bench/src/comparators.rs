//! Registry of the comparison models implemented in this reproduction.
//!
//! Each [`Comparator`] trains on a dataset under a [`Profile`] and returns
//! a trained [`ScoreModel`] (boxed) plus its embeddings, so every
//! downstream evaluation — global metrics, pattern slicing (Table III),
//! classification (Table X) — runs through the same code path.

use crate::profiles::Profile;
use eras_data::json::{Json, ToJson};
use eras_data::{Dataset, FilterIndex};
use eras_linalg::Rng;
use eras_train::baselines::{MarginConfig, RotatE, TransE, TransH, TuckEr};
use eras_train::eval::{link_prediction, LinkPredictionMetrics, ScoreModel};
use eras_train::trainer::train_standalone;
use eras_train::{BlockModel, Embeddings};
use std::time::Instant;

/// The implemented comparison models (Table VI rows built here; remaining
/// rows are quoted from the literature — see `literature.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparator {
    /// TransE (TDM, margin loss).
    TransE,
    /// TransH (TDM, margin loss).
    TransH,
    /// RotatE (TDM, margin loss).
    RotatE,
    /// TuckER (tensor model, multiclass loss).
    TuckEr,
    /// QuatE (quaternion rotations, sampled softmax).
    QuatE,
    /// HolE (circular correlation — the HolEX family's base model).
    HolE,
    /// MlpE (learned-projection NNM standing in for ConvE/HypER).
    MlpE,
    /// DistMult (bilinear).
    DistMult,
    /// ComplEx (bilinear).
    ComplEx,
    /// SimplE (bilinear).
    SimplE,
    /// Analogy (bilinear).
    Analogy,
    /// AnyBURL-style bottom-up rule learner (non-embedding comparator).
    AnyBurl,
}

impl Comparator {
    /// Every implemented comparator, in Table VI order (TDMs, NNM, TBMs).
    pub fn all() -> [Comparator; 12] {
        [
            Comparator::TransE,
            Comparator::TransH,
            Comparator::RotatE,
            Comparator::MlpE,
            Comparator::TuckEr,
            Comparator::QuatE,
            Comparator::HolE,
            Comparator::DistMult,
            Comparator::ComplEx,
            Comparator::SimplE,
            Comparator::Analogy,
            Comparator::AnyBurl,
        ]
    }

    /// The bilinear subset (the BLM rows of Tables III and X).
    pub fn bilinear() -> [Comparator; 4] {
        [
            Comparator::DistMult,
            Comparator::ComplEx,
            Comparator::SimplE,
            Comparator::Analogy,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Comparator::TransE => "TransE",
            Comparator::TransH => "TransH",
            Comparator::RotatE => "RotatE",
            Comparator::TuckEr => "TuckER",
            Comparator::QuatE => "QuatE",
            Comparator::HolE => "HolE",
            Comparator::MlpE => "MlpE (ConvE-like)",
            Comparator::AnyBurl => "AnyBURL-like",
            Comparator::DistMult => "DistMult",
            Comparator::ComplEx => "ComplEx",
            Comparator::SimplE => "SimplE",
            Comparator::Analogy => "Analogy",
        }
    }
}

/// One row of an evaluation table.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Filtered MRR on test.
    pub mrr: f64,
    /// Hit@1 on test.
    pub hits1: f64,
    /// Hit@10 on test.
    pub hits10: f64,
    /// Wall-clock training seconds.
    pub train_secs: f64,
}

impl EvalRow {
    /// Build from metrics.
    pub fn new(model: &str, dataset: &str, m: LinkPredictionMetrics, secs: f64) -> Self {
        EvalRow {
            model: model.to_owned(),
            dataset: dataset.to_owned(),
            mrr: m.mrr,
            hits1: m.hits1,
            hits10: m.hits10,
            train_secs: secs,
        }
    }
}

impl ToJson for EvalRow {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("model", self.model.as_str())
            .set("dataset", self.dataset.as_str())
            .set("mrr", self.mrr)
            .set("hits1", self.hits1)
            .set("hits10", self.hits10)
            .set("train_secs", self.train_secs)
    }
}

/// A trained comparator ready for further evaluation.
pub struct TrainedModel {
    /// Scoring interface.
    pub model: Box<dyn ScoreModel>,
    /// Trained embeddings.
    pub embeddings: Embeddings,
    /// Test metrics already computed.
    pub row: EvalRow,
}

/// Train a comparator on a dataset and evaluate it on the test split.
pub fn run_comparator(
    comparator: Comparator,
    dataset: &Dataset,
    filter: &FilterIndex,
    profile: &Profile,
) -> TrainedModel {
    let started = Instant::now();
    match comparator {
        Comparator::DistMult | Comparator::ComplEx | Comparator::SimplE | Comparator::Analogy => {
            let sf = match comparator {
                Comparator::DistMult => eras_sf::zoo::distmult(4),
                Comparator::ComplEx => eras_sf::zoo::complex(),
                Comparator::SimplE => eras_sf::zoo::simple(),
                _ => eras_sf::zoo::analogy(),
            };
            let model = BlockModel::universal(sf, dataset.num_relations());
            let outcome = train_standalone(&model, dataset, filter, &profile.train);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                outcome.test,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(model),
                embeddings: outcome.embeddings,
                row,
            }
        }
        Comparator::TransE | Comparator::TransH | Comparator::RotatE => {
            let mut rng = Rng::seed_from_u64(profile.seed);
            let mut emb = Embeddings::init(
                dataset.num_entities(),
                dataset.num_relations(),
                profile.train.dim,
                &mut rng,
            );
            let cfg = MarginConfig::default();
            let model: Box<dyn ScoreModel> = match comparator {
                Comparator::TransE => {
                    let mut m = TransE::new(&emb, cfg);
                    for _ in 0..profile.margin_epochs {
                        m.train_epoch(&mut emb, &dataset.train, filter, &mut rng);
                    }
                    Box::new(m)
                }
                Comparator::TransH => {
                    let mut m = TransH::new(&emb, cfg, &mut rng);
                    for _ in 0..profile.margin_epochs {
                        m.train_epoch(&mut emb, &dataset.train, filter, &mut rng);
                    }
                    Box::new(m)
                }
                _ => {
                    let mut m = RotatE::new(&emb, cfg);
                    for _ in 0..profile.margin_epochs {
                        m.train_epoch(&mut emb, &dataset.train, filter, &mut rng);
                    }
                    Box::new(m)
                }
            };
            let metrics = link_prediction(model.as_ref(), &emb, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model,
                embeddings: emb,
                row,
            }
        }
        Comparator::AnyBurl => {
            let model = eras_rules::RuleModel::learn(dataset, &eras_rules::LearnConfig::default());
            let embeddings = model.dummy_embeddings();
            let metrics = link_prediction(&model, &embeddings, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(model),
                embeddings,
                row,
            }
        }
        Comparator::HolE => {
            let mut rng = Rng::seed_from_u64(profile.seed);
            let mut emb = Embeddings::init(
                dataset.num_entities(),
                dataset.num_relations(),
                profile.train.dim,
                &mut rng,
            );
            let mut m = eras_train::hole::HolE::new(&emb, 0.1, 64);
            for _ in 0..profile.margin_epochs {
                m.train_epoch(&mut emb, &dataset.train, &mut rng);
            }
            let metrics = link_prediction(&m, &emb, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(m),
                embeddings: emb,
                row,
            }
        }
        Comparator::QuatE => {
            let mut rng = Rng::seed_from_u64(profile.seed);
            let mut emb = Embeddings::init(
                dataset.num_entities(),
                dataset.num_relations(),
                profile.train.dim,
                &mut rng,
            );
            let mut m = eras_train::quate::QuatE::new(&emb, 0.1, 64);
            for _ in 0..profile.margin_epochs {
                m.train_epoch(&mut emb, &dataset.train, &mut rng);
            }
            let metrics = link_prediction(&m, &emb, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(m),
                embeddings: emb,
                row,
            }
        }
        Comparator::MlpE => {
            let mut rng = Rng::seed_from_u64(profile.seed);
            let mut emb = Embeddings::init(
                dataset.num_entities(),
                dataset.num_relations(),
                profile.train.dim,
                &mut rng,
            );
            let mut m = eras_train::mlpe::MlpE::new(&emb, 2 * profile.train.dim, 0.1, 64, &mut rng);
            for _ in 0..profile.margin_epochs {
                m.train_epoch(&mut emb, &dataset.train, &mut rng);
            }
            let metrics = link_prediction(&m, &emb, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(m),
                embeddings: emb,
                row,
            }
        }
        Comparator::TuckEr => {
            let mut rng = Rng::seed_from_u64(profile.seed);
            // TuckER's core is d³; cap the dimension to keep its cost in
            // the same ballpark as the other rows (the paper notes its
            // O(d³) inference cost in Table I).
            let dim = profile.train.dim.min(24);
            let mut emb = Embeddings::init(
                dataset.num_entities(),
                dataset.num_relations(),
                dim,
                &mut rng,
            );
            let mut m = TuckEr::new(&emb, 0.05, &mut rng);
            for _ in 0..profile.tucker_epochs {
                m.train_epoch(&mut emb, &dataset.train);
            }
            let metrics = link_prediction(&m, &emb, &dataset.test, filter);
            let row = EvalRow::new(
                comparator.name(),
                &dataset.name,
                metrics,
                started.elapsed().as_secs_f64(),
            );
            TrainedModel {
                model: Box::new(m),
                embeddings: emb,
                row,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;

    #[test]
    fn every_comparator_trains_and_evaluates_on_tiny() {
        let dataset = Preset::Tiny.build(8);
        let filter = FilterIndex::build(&dataset);
        let profile = Profile::quick(Preset::Tiny, 8);
        for c in Comparator::all() {
            let trained = run_comparator(c, &dataset, &filter, &profile);
            assert!(
                trained.row.mrr > 0.0 && trained.row.mrr <= 1.0,
                "{}: mrr {}",
                c.name(),
                trained.row.mrr
            );
            assert!(trained.row.train_secs >= 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Comparator::all().iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
