//! Per-dataset run budgets for the reproduction binaries.
//!
//! `full()` budgets are sized so an entire table regenerates on a single
//! CPU core in tens of minutes; `quick()` cuts every budget for smoke
//! runs (`--quick`). Two training budgets exist on purpose: `train` is
//! the stand-alone "to convergence" protocol used for final numbers,
//! while `search_train` is the reduced budget the stand-alone searchers
//! (AutoSF / random / TPE) evaluate candidates with — mirroring AutoSF's
//! own use of a cheaper proxy training during search.

use eras_core::ErasConfig;
use eras_data::Preset;
use eras_search::autosf::AutoSfConfig;
use eras_search::evaluator::SearchBudget;
use eras_search::tpe::TpeConfig;
use eras_train::trainer::{Execution, TrainConfig};
use eras_train::LossMode;

/// All budgets needed to run one dataset through every experiment.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The dataset stand-in.
    pub preset: Preset,
    /// Dataset + training seed.
    pub seed: u64,
    /// Stand-alone training budget (final numbers).
    pub train: TrainConfig,
    /// Reduced training budget used to evaluate search candidates.
    pub search_train: TrainConfig,
    /// ERAS search budget.
    pub eras: ErasConfig,
    /// AutoSF greedy-search shape.
    pub autosf: AutoSfConfig,
    /// Evaluation budget shared by the stand-alone searchers.
    pub search_budget: SearchBudget,
    /// TPE shape.
    pub tpe: TpeConfig,
    /// Epochs for the margin-loss baselines (TransE/TransH/RotatE).
    pub margin_epochs: usize,
    /// Epochs for TuckER (its core-tensor updates are the costliest).
    pub tucker_epochs: usize,
}

impl Profile {
    /// Full-budget profile for a preset.
    pub fn full(preset: Preset, seed: u64) -> Profile {
        let train = TrainConfig {
            dim: 32,
            lr: 0.1,
            l2: 1e-4,
            n3: 0.0,
            decay_rate: 1.0,
            batch_size: 256,
            max_epochs: 45,
            eval_every: 10,
            patience: 3,
            loss: LossMode::Sampled { negatives: 64 },
            seed,
            execution: Execution::Sequential,
            ranking: eras_train::RankingMode::Full,
            bounds: eras_sf::NormBounds::default(),
        };
        let search_train = TrainConfig {
            max_epochs: 15,
            eval_every: 10,
            patience: 1,
            loss: LossMode::Sampled { negatives: 64 },
            ..train.clone()
        };
        let eras = ErasConfig {
            m: 4,
            n_groups: 3,
            dim: 32,
            epochs: 18,
            ctrl_updates_per_epoch: 8,
            u_samples: 4,
            val_batch: 128,
            derive_k: 12,
            derive_screen: 4,
            retrain: train.clone(),
            seed,
            ..ErasConfig::default()
        };
        Profile {
            preset,
            seed,
            train,
            search_train,
            eras,
            autosf: AutoSfConfig {
                max_budget: 10,
                parents: 4,
                expansions: 64,
                train_top_k: 4,
                seed,
                ..AutoSfConfig::default()
            },
            search_budget: SearchBudget {
                max_evaluations: 14,
                max_seconds: 1200.0,
            },
            tpe: TpeConfig {
                seed,
                ..TpeConfig::default()
            },
            margin_epochs: 12,
            tucker_epochs: 5,
        }
    }

    /// Reduced-budget profile for `--quick` smoke runs.
    pub fn quick(preset: Preset, seed: u64) -> Profile {
        let mut p = Profile::full(preset, seed);
        p.train.max_epochs = 8;
        p.train.eval_every = 4;
        p.train.patience = 1;
        p.train.loss = LossMode::sampled_default();
        p.search_train = p.train.clone();
        p.search_train.max_epochs = 4;
        p.eras.epochs = 4;
        p.eras.ctrl_updates_per_epoch = 3;
        p.eras.derive_k = 4;
        p.eras.derive_screen = 2;
        p.eras.retrain = p.train.clone();
        p.search_budget.max_evaluations = 4;
        p.margin_epochs = 5;
        p.tucker_epochs = 2;
        p
    }

    /// Pick full or quick based on a CLI flag.
    pub fn from_args(preset: Preset, seed: u64, quick: bool) -> Profile {
        if quick {
            Profile::quick(preset, seed)
        } else {
            Profile::full(preset, seed)
        }
    }
}

/// Was `--quick` passed on the command line?
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_strictly_cheaper() {
        let full = Profile::full(Preset::Tiny, 0);
        let quick = Profile::quick(Preset::Tiny, 0);
        assert!(quick.train.max_epochs < full.train.max_epochs);
        assert!(quick.eras.epochs < full.eras.epochs);
        assert!(quick.search_budget.max_evaluations < full.search_budget.max_evaluations);
        assert!(quick.margin_epochs < full.margin_epochs);
    }

    #[test]
    fn search_train_is_cheaper_than_final_train() {
        let p = Profile::full(Preset::Wn18rr, 0);
        assert!(p.search_train.max_epochs < p.train.max_epochs);
    }

    #[test]
    fn configs_validate() {
        for preset in Preset::paper_benchmarks() {
            let p = Profile::full(preset, 1);
            assert!(p.eras.validate().is_ok(), "{preset:?}");
            assert_eq!(p.train.dim % p.eras.m, 0);
        }
    }
}
