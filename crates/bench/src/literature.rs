//! Numbers reported in the paper, quoted for side-by-side shape
//! comparison in the reproduction tables.
//!
//! Our substrate is a CPU simulator over synthetic stand-in datasets
//! (DESIGN.md §2), so absolute values are not expected to match; what the
//! reproduction checks is the *shape* — who wins, by roughly what factor,
//! where the crossovers fall. These constants are the paper's side of
//! that comparison.

/// One literature row of Table VI: `(model, [per-dataset (MRR, Hit@1, Hit@10)])`
/// over WN18, WN18RR, FB15k, FB15k-237, YAGO3-10. `None` = not reported.
pub type Table6Row = (&'static str, [Option<(f64, f64, f64)>; 5]);

/// The paper's Table VI (selected rows; Hit@k as fractions).
pub const TABLE6: &[Table6Row] = &[
    (
        "TransE",
        [
            Some((0.500, f64::NAN, 0.941)),
            Some((0.178, f64::NAN, 0.451)),
            Some((0.495, f64::NAN, 0.774)),
            Some((0.256, f64::NAN, 0.419)),
            None,
        ],
    ),
    (
        "RotatE",
        [
            Some((0.949, 0.944, 0.959)),
            Some((0.476, 0.428, 0.571)),
            Some((0.797, 0.746, 0.884)),
            Some((0.338, 0.241, 0.533)),
            None,
        ],
    ),
    (
        "TuckER",
        [
            Some((0.953, 0.949, 0.958)),
            Some((0.470, 0.443, 0.526)),
            Some((0.795, 0.741, 0.892)),
            Some((0.358, 0.266, 0.544)),
            None,
        ],
    ),
    (
        "DistMult",
        [
            Some((0.821, 0.717, 0.952)),
            Some((0.443, 0.404, 0.507)),
            Some((0.817, 0.777, 0.895)),
            Some((0.349, 0.257, 0.537)),
            Some((0.552, 0.476, 0.694)),
        ],
    ),
    (
        "ComplEx",
        [
            Some((0.951, 0.945, 0.957)),
            Some((0.471, 0.430, 0.551)),
            Some((0.831, 0.796, 0.905)),
            Some((0.347, 0.254, 0.541)),
            Some((0.566, 0.491, 0.709)),
        ],
    ),
    (
        "SimplE",
        [
            Some((0.950, 0.945, 0.959)),
            Some((0.468, 0.429, 0.552)),
            Some((0.830, 0.798, 0.903)),
            Some((0.350, 0.260, 0.544)),
            Some((0.565, 0.491, 0.710)),
        ],
    ),
    (
        "AutoSF",
        [
            Some((0.952, 0.947, 0.961)),
            Some((0.490, 0.451, 0.567)),
            Some((0.853, 0.821, 0.910)),
            Some((0.360, 0.267, 0.552)),
            Some((0.571, 0.501, 0.715)),
        ],
    ),
    (
        "ERAS(N=1)",
        [
            Some((0.951, 0.947, 0.960)),
            Some((0.490, 0.450, 0.568)),
            Some((0.853, 0.820, 0.912)),
            Some((0.361, 0.266, 0.552)),
            Some((0.570, 0.502, 0.715)),
        ],
    ),
    (
        "ERAS",
        [
            Some((0.953, 0.950, 0.962)),
            Some((0.492, 0.452, 0.568)),
            Some((0.855, 0.823, 0.914)),
            Some((0.365, 0.268, 0.555)),
            Some((0.577, 0.503, 0.717)),
        ],
    ),
];

/// Dataset column order of [`TABLE6`].
pub const TABLE6_DATASETS: [&str; 5] = ["WN18", "WN18RR", "FB15k", "FB15k237", "YAGO3-10"];

/// The paper's Table X (triplet classification accuracy, %):
/// `(model, FB15k, WN18RR, FB15k237)`.
pub const TABLE10: &[(&str, f64, f64, f64)] = &[
    ("DistMult", 80.8, 84.6, 79.8),
    ("Analogy", 82.1, 86.1, 79.7),
    ("ComplEx", 81.8, 86.6, 79.6),
    ("SimplE", 81.5, 85.7, 79.6),
    ("AutoSF", 82.7, 87.7, 81.2),
    ("ERAS", 82.9, 88.0, 81.4),
];

/// The paper's Table XI (ablation MRR):
/// `(variant, WN18, WN18RR, FB15k, FB15k237, YAGO3-10)`.
pub const TABLE11: &[(&str, [f64; 5])] = &[
    ("ERAS^los", [0.944, 0.485, 0.840, 0.344, 0.560]),
    ("ERAS^dif", [0.949, 0.485, 0.848, 0.355, 0.565]),
    ("ERAS^sig", [0.945, 0.480, 0.844, 0.338, 0.559]),
    ("ERAS^pde", [0.950, 0.489, 0.850, 0.349, 0.570]),
    ("ERAS^smt", [0.948, 0.485, 0.845, 0.347, 0.565]),
    ("ERAS", [0.953, 0.492, 0.855, 0.365, 0.577]),
];

/// The paper's Table VIII (pattern-level Hit@1, %):
/// rows `(method, sym WN18RR, sym FB15k, sym FB15k237, anti WN18RR, anti FB15k, anti FB15k237)`.
pub const TABLE8: &[(&str, [f64; 6])] = &[
    ("Best in Table III", [94.0, 88.0, 7.0, 12.0, 81.0, 27.0]),
    ("ERAS(N=1)", [93.2, 86.5, 5.3, 11.6, 80.4, 26.9]),
    ("ERAS", [94.3, 90.0, 8.8, 13.2, 82.1, 27.9]),
];

/// The paper's Table IX (hours on a single GPU):
/// `(method/phase, WN18, FB15k, WN18RR, FB15k237, YAGO)`.
pub const TABLE9: &[(&str, [f64; 5])] = &[
    ("AutoSF greedy search", [65.7, 127.1, 38.6, 61.1, 219.9]),
    ("AutoSF evaluation", [5.5, 20.5, 3.72, 8.5, 18.9]),
    ("ERAS(N=1) supernet", [3.29, 4.55, 2.97, 3.22, 17.5]),
    ("ERAS(N=1) evaluation", [2.1, 19.0, 0.50, 4.7, 29.5]),
    ("ERAS supernet", [3.54, 4.86, 3.19, 3.54, 19.8]),
    ("ERAS evaluation", [2.2, 19.49, 0.52, 4.8, 30.3]),
    ("DistMult (hand-designed)", [1.9, 8.36, 0.42, 2.6, 26.4]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_shape_claims_hold_in_the_literature_numbers() {
        // The headline claims the reproduction must mirror:
        // ERAS ≥ AutoSF ≥ every fixed scoring function, per dataset (MRR).
        let get = |name: &str| TABLE6.iter().find(|(n, _)| *n == name).expect("row exists");
        let eras = get("ERAS");
        let autosf = get("AutoSF");
        for (d, name) in TABLE6_DATASETS.iter().enumerate() {
            if let (Some(e), Some(a)) = (eras.1[d], autosf.1[d]) {
                assert!(e.0 >= a.0, "ERAS < AutoSF on {name}");
            }
        }
        // TransE is the weakest on WN18 by a wide margin.
        let transe = get("TransE").1[0].unwrap();
        assert!(transe.0 < 0.6);
    }

    #[test]
    fn table11_full_eras_wins_every_dataset() {
        let eras = TABLE11.iter().find(|(n, _)| *n == "ERAS").unwrap();
        for (name, vals) in TABLE11.iter() {
            if *name == "ERAS" {
                continue;
            }
            for (d, &v) in vals.iter().enumerate() {
                assert!(eras.1[d] >= v, "ERAS < {name} on column {d}");
            }
        }
    }

    #[test]
    fn table9_one_shot_is_an_order_faster_than_greedy_search() {
        let greedy = &TABLE9[0].1;
        let supernet = &TABLE9[4].1;
        for d in 0..5 {
            assert!(
                greedy[d] / supernet[d] > 10.0,
                "search speedup below 10x on column {d}"
            );
        }
    }
}
