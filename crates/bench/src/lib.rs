//! # eras-bench
//!
//! The benchmark harness: one binary per table and figure of the paper's
//! evaluation section (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results).
//!
//! | binary      | reproduces |
//! |-------------|------------|
//! | `table3`    | Hit@1 of fixed scoring functions by relation pattern |
//! | `table6`    | main link-prediction comparison |
//! | `table7`    | dataset statistics |
//! | `table8`    | pattern-level ERAS vs ERAS^{N=1} |
//! | `table9`    | running-time analysis |
//! | `table10`   | triplet classification |
//! | `table11`   | ablation variants |
//! | `fig2`      | search-efficiency curves |
//! | `fig3_4`    | searched-function case study |
//! | `fig5`      | one-shot vs stand-alone correlation |
//! | `fig6`      | group-count sweep N ∈ 1..5 |
//! | `fig7`      | block-count sweep M ∈ {3,4,5} |
//!
//! Every binary takes `--quick` for a reduced-budget smoke run and writes
//! machine-readable results to `results/<name>.json` next to the ASCII
//! table on stdout.

pub mod comparators;
pub mod harness;
pub mod literature;
pub mod profiles;
pub mod report;

pub use comparators::{run_comparator, Comparator, EvalRow};
pub use profiles::Profile;
