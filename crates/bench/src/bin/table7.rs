//! Table VII: summary of the KG benchmark stand-ins.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table7
//! ```

use eras_bench::report::{save_json, Table};
use eras_data::json::{Json, ToJson};
use eras_data::stats::dataset_stats;
use eras_data::Preset;

struct Row {
    dataset: String,
    relations: usize,
    entities: usize,
    train: usize,
    valid: usize,
    test: usize,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("dataset", self.dataset.as_str())
            .set("relations", self.relations)
            .set("entities", self.entities)
            .set("train", self.train)
            .set("valid", self.valid)
            .set("test", self.test)
    }
}

fn main() {
    println!("Table VII: summary of KG benchmark stand-ins (synthetic, see DESIGN.md §3)\n");
    let mut table = Table::new(&[
        "Data set",
        "#relation",
        "#entity",
        "#training",
        "#validation",
        "#testing",
    ]);
    let mut rows = Vec::new();
    for preset in Preset::paper_benchmarks() {
        let dataset = preset.build(7);
        let s = dataset_stats(&dataset);
        table.row(vec![
            s.name.clone(),
            s.num_relations.to_string(),
            s.num_entities.to_string(),
            s.num_train.to_string(),
            s.num_valid.to_string(),
            s.num_test.to_string(),
        ]);
        rows.push(Row {
            dataset: s.name,
            relations: s.num_relations,
            entities: s.num_entities,
            train: s.num_train,
            valid: s.num_valid,
            test: s.num_test,
        });
    }
    print!("{}", table.render());
    match save_json("table7", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    println!(
        "\npaper (real datasets): WN18 18r/41k e, WN18RR 11r/41k e, FB15k 1345r/15k e,\n\
         FB15k237 237r/14.5k e, YAGO3-10 37r/123k e — stand-ins preserve the relation-count\n\
         ordering and split structure at reduced scale."
    );
}
