//! Table XI: ablation variants of ERAS.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table11 [-- --quick]
//! ```
//!
//! Runs `ERAS^los`, `ERAS^dif`, `ERAS^sig`, `ERAS^pde`, `ERAS^smt` and the
//! full ERAS on every benchmark stand-in. The paper's shape: the full
//! algorithm wins everywhere; `sig` (single-level) and `los` (loss
//! reward) are the weakest variants.

use eras_bench::literature;
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{mrr, save_json, Table};
use eras_core::{run_eras, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};

struct Cell {
    variant: String,
    dataset: String,
    mrr: f64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("variant", self.variant.as_str())
            .set("dataset", self.dataset.as_str())
            .set("mrr", self.mrr)
    }
}

fn main() {
    let quick = quick_flag();
    let mut variants: Vec<Variant> = Variant::ablations().to_vec();
    variants.push(Variant::Full);
    let mut cells: Vec<Cell> = Vec::new();

    for preset in Preset::paper_benchmarks() {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);
        for &variant in &variants {
            let outcome = run_eras(&dataset, &filter, &profile.eras, variant);
            eprintln!("  {:<10} MRR {:.3}", variant.trace_name(), outcome.test.mrr);
            cells.push(Cell {
                variant: variant.trace_name().into(),
                dataset: dataset.name.clone(),
                mrr: outcome.test.mrr,
            });
        }
    }

    println!("\nTable XI — ablation variants (test MRR):\n");
    let names: Vec<String> = Preset::paper_benchmarks()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut headers = vec!["variant"];
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(&headers);
    for &variant in &variants {
        let mut row = vec![variant.trace_name().to_string()];
        for preset in Preset::paper_benchmarks() {
            let c = cells
                .iter()
                .find(|c| c.variant == variant.trace_name() && c.dataset == preset.name());
            row.push(c.map(|c| mrr(c.mrr)).unwrap_or_else(|| "-".into()));
        }
        table.row(row);
    }
    print!("{}", table.render());

    println!("\npaper's Table XI (real datasets, MRR):\n");
    let mut lit = Table::new(&["variant", "WN18", "WN18RR", "FB15k", "FB15k237", "YAGO3-10"]);
    for (name, vals) in literature::TABLE11 {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.3}")));
        lit.row(row);
    }
    print!("{}", lit.render());
    println!("\nshape to check: full ERAS at or above every variant per dataset.");

    match save_json("table11", &cells) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
