//! Figures 3 & 4: case study of the searched relation-aware scoring
//! functions on the WN18 and WN18RR stand-ins.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin fig3_4 [-- --quick]
//! ```
//!
//! Prints each searched group's block grid, its formula, its
//! expressiveness flags, and the relations assigned to it (with their
//! ground-truth patterns). The paper's shape: the groups specialise —
//! different grids with distinct symmetry character, and relations of
//! like pattern grouped together.

use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::save_json;
use eras_core::{run_eras, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};
use eras_linalg::pca;
use eras_linalg::Rng;
use eras_sf::{expressive, render};

struct GroupReport {
    dataset: String,
    group: usize,
    formula: String,
    expressiveness: String,
    relations: Vec<String>,
}

impl ToJson for GroupReport {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("dataset", self.dataset.as_str())
            .set("group", self.group)
            .set("formula", self.formula.as_str())
            .set("expressiveness", self.expressiveness.as_str())
            .set("relations", self.relations.to_json())
    }
}

/// Tiny ASCII scatter: 21 × 48 grid of group digits.
fn print_scatter(proj: &eras_linalg::Matrix, groups: &[u8]) {
    let (rows, cols) = (21usize, 48usize);
    let n = proj.rows();
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..n {
        min_x = min_x.min(proj.get(i, 0));
        max_x = max_x.max(proj.get(i, 0));
        min_y = min_y.min(proj.get(i, 1));
        max_y = max_y.max(proj.get(i, 1));
    }
    let span = |lo: f32, hi: f32| if hi - lo < 1e-9 { 1.0 } else { hi - lo };
    let mut grid = vec![vec![' '; cols]; rows];
    for (i, &group) in groups.iter().enumerate().take(n) {
        let x = ((proj.get(i, 0) - min_x) / span(min_x, max_x) * (cols - 1) as f32) as usize;
        let y = ((proj.get(i, 1) - min_y) / span(min_y, max_y) * (rows - 1) as f32) as usize;
        grid[rows - 1 - y][x] = char::from_digit(u32::from(group) % 10, 10).unwrap_or('?');
    }
    for row in grid {
        println!("  |{}|", row.into_iter().collect::<String>());
    }
}

fn main() {
    let quick = quick_flag();
    let mut reports: Vec<GroupReport> = Vec::new();

    for preset in [Preset::Wn18, Preset::Wn18rr] {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        println!(
            "########  searched scoring functions on {}  ########\n",
            dataset.name
        );
        let outcome = run_eras(&dataset, &filter, &profile.eras, Variant::Full);

        for (group, sf) in outcome.sfs.iter().enumerate() {
            let members: Vec<String> = outcome
                .assignment
                .iter()
                .enumerate()
                .filter(|(_, &g)| g as usize == group)
                .map(|(r, _)| dataset.relations.name(r as u32).to_string())
                .collect();
            let member_refs: Vec<&str> = members.iter().map(|s| s.as_str()).collect();
            print!("{}", render::render_group(group, sf, &member_refs));
            let e = expressive::analyze(sf);
            let flags = format!(
                "sym={} anti={} inv={} general={}",
                e.symmetric, e.anti_symmetric, e.inversion, e.general_asymmetry
            );
            println!("expressiveness: {flags}\n");
            reports.push(GroupReport {
                dataset: dataset.name.clone(),
                group,
                formula: render::render_formula(sf),
                expressiveness: flags,
                relations: members,
            });
        }
        println!(
            "retrained test MRR {:.3} (Hit@1 {:.1}%)\n",
            outcome.test.mrr,
            100.0 * outcome.test.hits1
        );

        // 2-D PCA scatter of the relation embeddings, labelled by group —
        // the EM clustering the paper's case study rests on.
        let mut rng = Rng::seed_from_u64(1);
        let fitted = pca::fit(&outcome.embeddings.relation, 2, &mut rng);
        let proj = fitted.project_all(&outcome.embeddings.relation);
        println!("relation embeddings, PCA projection (digit = group):");
        print_scatter(&proj, &outcome.assignment);
        println!();
    }

    println!(
        "shape to check (paper Figs. 3/4): groups carry structurally distinct grids,\n\
         and relations sharing a semantic pattern tend to share a group."
    );
    match save_json("fig3_4", &reports) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
