//! Table X: triplet classification accuracy.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table10 [-- --quick]
//! ```

use eras_bench::comparators::{run_comparator, Comparator};
use eras_bench::literature;
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{save_json, Table};
use eras_core::{run_eras, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};
use eras_train::classify::classify_dataset;

struct Cell {
    model: String,
    dataset: String,
    accuracy: f64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("model", self.model.as_str())
            .set("dataset", self.dataset.as_str())
            .set("accuracy", self.accuracy)
    }
}

fn main() {
    let quick = quick_flag();
    let presets = [Preset::Fb15k, Preset::Wn18rr, Preset::Fb15k237];
    let mut cells: Vec<Cell> = Vec::new();

    for preset in presets {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);
        for c in Comparator::bilinear() {
            let trained = run_comparator(c, &dataset, &filter, &profile);
            let acc = classify_dataset(&trained.model, &trained.embeddings, &dataset, &filter, 99);
            eprintln!("  {:<10} acc {:.3}", c.name(), acc);
            cells.push(Cell {
                model: c.name().into(),
                dataset: dataset.name.clone(),
                accuracy: acc,
            });
        }
        let outcome = run_eras(&dataset, &filter, &profile.eras, Variant::Full);
        let acc = classify_dataset(&outcome.model, &outcome.embeddings, &dataset, &filter, 99);
        eprintln!("  {:<10} acc {:.3}", "ERAS", acc);
        cells.push(Cell {
            model: "ERAS".into(),
            dataset: dataset.name.clone(),
            accuracy: acc,
        });
    }

    println!("\nTable X — triplet classification accuracy (%):\n");
    let mut headers = vec!["model"];
    let names: Vec<String> = presets.iter().map(|p| p.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(&headers);
    for model in ["DistMult", "ComplEx", "SimplE", "Analogy", "ERAS"] {
        let mut row = vec![model.to_string()];
        for preset in presets {
            let c = cells
                .iter()
                .find(|c| c.model == model && c.dataset == preset.name());
            row.push(
                c.map(|c| format!("{:.1}", 100.0 * c.accuracy))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        table.row(row);
    }
    print!("{}", table.render());

    println!("\npaper's Table X (real datasets, accuracy %):\n");
    let mut lit = Table::new(&["model", "FB15k", "WN18RR", "FB15k237"]);
    for (name, a, b, c) in literature::TABLE10 {
        lit.row(vec![
            name.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{c:.1}"),
        ]);
    }
    print!("{}", lit.render());
    println!("\nshape to check: ERAS at or above every fixed bilinear model per dataset.");

    match save_json("table10", &cells) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
