//! Table III: Hit@1 of existing scoring functions at the relation-pattern
//! level (the paper's motivation for relation-aware search).
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table3 [-- --quick]
//! ```
//!
//! Trains each implemented scoring function on four benchmark stand-ins
//! and slices test Hit@1 by ground-truth relation pattern. The paper's
//! shape to reproduce: DistMult strong on symmetric / weak on
//! anti-symmetric; TransE the reverse; universal functions (ComplEx,
//! SimplE, Analogy, TuckER) competitive on both but not uniformly best.

use eras_bench::comparators::{run_comparator, Comparator};
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{pct, save_json, Table};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset, RelationPattern};
use eras_train::eval::link_prediction;

struct Cell {
    model: String,
    dataset: String,
    pattern: String,
    hits1: f64,
    queries: usize,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("model", self.model.as_str())
            .set("dataset", self.dataset.as_str())
            .set("pattern", self.pattern.as_str())
            .set("hits1", self.hits1)
            .set("queries", self.queries)
    }
}

fn main() {
    let quick = quick_flag();
    let presets = [
        Preset::Wn18,
        Preset::Wn18rr,
        Preset::Fb15k,
        Preset::Fb15k237,
    ];
    let models = [
        Comparator::TransE,
        Comparator::DistMult,
        Comparator::TuckEr,
        Comparator::ComplEx,
        Comparator::SimplE,
        Comparator::Analogy,
    ];
    let patterns = [RelationPattern::Symmetric, RelationPattern::AntiSymmetric];

    let mut cells: Vec<Cell> = Vec::new();
    for preset in presets {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("training on {} ...", dataset.name);
        for model in models {
            let trained = run_comparator(model, &dataset, &filter, &profile);
            for pattern in patterns {
                let triples = dataset.test_triples_with_pattern(pattern);
                if triples.is_empty() {
                    continue;
                }
                let m = link_prediction(&trained.model, &trained.embeddings, &triples, &filter);
                cells.push(Cell {
                    model: model.name().into(),
                    dataset: dataset.name.clone(),
                    pattern: pattern.label().into(),
                    hits1: m.hits1,
                    queries: m.count,
                });
            }
        }
    }

    for pattern in patterns {
        println!(
            "\nTable III ({} relations) — Hit@1 (%) on test:\n",
            pattern.label()
        );
        let mut headers = vec!["Method"];
        let names: Vec<String> = presets.iter().map(|p| p.name().to_string()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        let mut table = Table::new(&headers);
        for model in models {
            let mut row = vec![model.name().to_string()];
            for preset in presets {
                let cell = cells.iter().find(|c| {
                    c.model == model.name()
                        && c.dataset == preset.name()
                        && c.pattern == pattern.label()
                });
                row.push(cell.map(|c| pct(c.hits1)).unwrap_or_else(|| "-".into()));
            }
            table.row(row);
        }
        print!("{}", table.render());
    }

    println!(
        "\npaper's shape: DistMult ≈ best on symmetric, poor on anti-symmetric;\n\
         TransE ~0 on symmetric; universal SFs good-but-not-dominant on both."
    );
    match save_json("table3", &cells) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
