//! Table I: effectiveness/efficiency summary of scoring functions.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table1
//! ```
//!
//! Two machine-checkable claims from the paper's Table I are reproduced:
//!
//! 1. **Expressiveness** — which relation patterns each scoring function
//!    can model, computed exactly by the nullspace analysis in
//!    `eras_sf::expressive` (DistMult: symmetric only; ComplEx / SimplE /
//!    Analogy: universal).
//! 2. **Inference cost** — per-candidate scoring of every block bilinear
//!    function is `O(d)`: measured by timing `score_all_tails` at two
//!    dimensions and reporting the scaling exponent (≈ 1.0 ⇒ linear).

use eras_bench::report::Table;
use eras_linalg::Rng;
use eras_sf::{expressive, zoo};
use eras_train::eval::ScoreModel;
use eras_train::{BlockModel, Embeddings};
use std::time::Instant;

fn time_scoring(model: &BlockModel, dim: usize) -> f64 {
    let mut rng = Rng::seed_from_u64(1);
    let emb = Embeddings::init(2000, 4, dim, &mut rng);
    let mut out = vec![0.0f32; 2000];
    // Warm up, then measure.
    for _ in 0..10 {
        model.score_all_tails(&emb, 3, 1, &mut out);
    }
    let started = Instant::now();
    let reps = 200;
    for i in 0..reps {
        model.score_all_tails(&emb, (i % 100) as u32, 1, &mut out);
    }
    started.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    println!("Table I — expressiveness of the implemented scoring functions:\n");
    let mut table = Table::new(&[
        "scoring function",
        "symmetric",
        "anti-symmetric",
        "inversion",
        "general asym.",
        "universal",
    ]);
    for (name, sf) in zoo::all_m4() {
        let e = expressive::analyze(&sf);
        let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
        table.row(vec![
            name.to_string(),
            mark(e.symmetric),
            mark(e.anti_symmetric),
            mark(e.inversion),
            mark(e.general_asymmetry),
            mark(e.is_universal()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper's claim: DistMult covers symmetry only; the other bilinear models\n\
         are universal — matching the rows above.\n"
    );

    println!("inference cost (O(d) claim) — mean `score_all_tails` time over 2000 entities:\n");
    let mut timing = Table::new(&[
        "scoring function",
        "d=32 (µs)",
        "d=64 (µs)",
        "scaling d32→d64",
    ]);
    for (name, sf) in zoo::all_m4() {
        let model = BlockModel::universal(sf, 4);
        let t32 = time_scoring(&model, 32);
        let t64 = time_scoring(&model, 64);
        timing.row(vec![
            name.to_string(),
            format!("{:.1}", 1e6 * t32),
            format!("{:.1}", 1e6 * t64),
            format!("{:.2}x", t64 / t32),
        ]);
    }
    print!("{}", timing.render());
    println!(
        "\nshape to check: scaling ≈ 2x when d doubles (linear, O(d) per candidate),\n\
         and near-identical cost across structures (the query-vector trick makes\n\
         cost independent of the non-zero count)."
    );
}
