//! Table IX: running-time analysis of the automated approaches.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table9 [-- --quick]
//! ```
//!
//! Measures, per dataset stand-in: AutoSF's greedy-search and evaluation
//! time, ERAS^{N=1} / ERAS supernet-training and evaluation time, and the
//! training time of a hand-designed model (DistMult). The absolute unit
//! is CPU-seconds here vs GPU-hours in the paper; the *shape* to check is
//! AutoSF's search phase dwarfing ERAS's supernet phase (the one-shot
//! speed-up), with the stand-alone evaluation/retraining phases being of
//! the same order for all methods.

use eras_bench::literature;
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};
use eras_search::autosf;
use eras_train::trainer::train_standalone;
use eras_train::BlockModel;
use std::time::Instant;

struct Row {
    method: String,
    dataset: String,
    search_secs: f64,
    evaluation_secs: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("method", self.method.as_str())
            .set("dataset", self.dataset.as_str())
            .set("search_secs", self.search_secs)
            .set("evaluation_secs", self.evaluation_secs)
    }
}

fn main() {
    let quick = quick_flag();
    let mut rows: Vec<Row> = Vec::new();

    for preset in Preset::paper_benchmarks() {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);

        // AutoSF: the "search" phase is the greedy loop's stand-alone
        // trainings; the "evaluation" phase is retraining the winner.
        let started = Instant::now();
        let result = autosf::search(
            &dataset,
            &filter,
            &profile.search_train,
            &profile.autosf,
            profile.search_budget,
        );
        let search_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let model = BlockModel::universal(result.best_sf, dataset.num_relations());
        let _ = train_standalone(&model, &dataset, &filter, &profile.train);
        rows.push(Row {
            method: "AutoSF".into(),
            dataset: dataset.name.clone(),
            search_secs,
            evaluation_secs: started.elapsed().as_secs_f64(),
        });

        for (name, n_groups) in [("ERAS(N=1)", 1usize), ("ERAS", profile.eras.n_groups)] {
            let cfg = ErasConfig {
                n_groups,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            rows.push(Row {
                method: name.into(),
                dataset: dataset.name.clone(),
                search_secs: outcome.search_secs,
                evaluation_secs: outcome.evaluation_secs,
            });
        }

        // Hand-designed reference: one stand-alone DistMult training.
        let started = Instant::now();
        let model = BlockModel::universal(eras_sf::zoo::distmult(4), dataset.num_relations());
        let _ = train_standalone(&model, &dataset, &filter, &profile.train);
        rows.push(Row {
            method: "DistMult (hand-designed)".into(),
            dataset: dataset.name.clone(),
            search_secs: 0.0,
            evaluation_secs: started.elapsed().as_secs_f64(),
        });
    }

    println!("\nTable IX — running time (seconds, single CPU):\n");
    let names: Vec<String> = Preset::paper_benchmarks()
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    let mut headers = vec!["method / phase"];
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(&headers);
    for method in ["AutoSF", "ERAS(N=1)", "ERAS", "DistMult (hand-designed)"] {
        for (phase, pick) in [("search", true), ("evaluation", false)] {
            if method.starts_with("DistMult") && phase == "search" {
                continue;
            }
            let mut row = vec![format!("{method} {phase}")];
            for preset in Preset::paper_benchmarks() {
                let r = rows
                    .iter()
                    .find(|r| r.method == method && r.dataset == preset.name());
                row.push(
                    r.map(|r| {
                        format!(
                            "{:.1}",
                            if pick {
                                r.search_secs
                            } else {
                                r.evaluation_secs
                            }
                        )
                    })
                    .unwrap_or_else(|| "-".into()),
                );
            }
            table.row(row);
        }
    }
    print!("{}", table.render());

    println!("\npaper's Table IX (GPU hours, real datasets):\n");
    let mut lit = Table::new(&[
        "method / phase",
        "WN18",
        "FB15k",
        "WN18RR",
        "FB15k237",
        "YAGO",
    ]);
    for (name, vals) in literature::TABLE9 {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.1}")));
        lit.row(row);
    }
    print!("{}", lit.render());
    println!(
        "\nshape to check: AutoSF search ≫ ERAS supernet training (the one-shot\n\
         speed-up, >10x in the paper); evaluation phases comparable across methods."
    );

    match save_json("table9", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
