//! Figure 6: effect of the number of relation groups `N`.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin fig6 [-- --quick]
//! ```
//!
//! Sweeps `N ∈ 1..=5` on the WN18RR and FB15k-237 stand-ins, reporting
//! total running time and test MRR. The paper's shape: time grows with
//! `N`; quality peaks at `N = 3` or `4` and `N = 1` (the universal
//! variant) trails the relation-aware settings.

use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{mrr, save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};

struct Point {
    dataset: String,
    n_groups: usize,
    total_secs: f64,
    test_mrr: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("dataset", self.dataset.as_str())
            .set("n_groups", self.n_groups)
            .set("total_secs", self.total_secs)
            .set("test_mrr", self.test_mrr)
    }
}

fn main() {
    let quick = quick_flag();
    let sweep: Vec<usize> = if quick {
        vec![1, 3]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let mut points: Vec<Point> = Vec::new();

    for preset in [Preset::Wn18rr, Preset::Fb15k237] {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);
        for &n in &sweep {
            let cfg = ErasConfig {
                n_groups: n,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            let total = outcome.search_secs + outcome.evaluation_secs;
            eprintln!("  N={n}: MRR {:.3} ({:.1}s)", outcome.test.mrr, total);
            points.push(Point {
                dataset: dataset.name.clone(),
                n_groups: n,
                total_secs: total,
                test_mrr: outcome.test.mrr,
            });
        }
    }

    println!("\nFigure 6 — time (s) vs test MRR for N groups:\n");
    let mut table = Table::new(&["dataset", "N", "time (s)", "test MRR"]);
    for p in &points {
        table.row(vec![
            p.dataset.clone(),
            p.n_groups.to_string(),
            format!("{:.1}", p.total_secs),
            mrr(p.test_mrr),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nshape to check (paper Fig. 6): time grows with N; MRR peaks near N=3-4\n\
         and N=1 trails the relation-aware settings."
    );
    match save_json("fig6", &points) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
