//! Figure 2: search-efficiency comparison of ERAS with the stand-alone
//! AutoML searchers.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin fig2 [-- --quick]
//! ```
//!
//! Runs ERAS, ERAS^{N=1}, AutoSF, random search and TPE ("Bayes") on
//! three stand-ins, records each method's best-so-far validation MRR over
//! wall-clock time, and prints the aligned curves. The paper's shape:
//! both ERAS variants finish their search an order of magnitude sooner;
//! the stand-alone methods reach somewhat higher *search-time* MRR
//! because each of their candidates is trained to convergence.

use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::save_json;
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::{FilterIndex, Preset};
use eras_search::{autosf, random, tpe, SearchTrace};

fn print_curve(trace: &SearchTrace) {
    let total = trace.points.last().map(|p| p.elapsed_secs).unwrap_or(0.0);
    println!(
        "  {:<10} {:>3} evaluations, {:>7.1}s total, best-so-far:",
        trace.method,
        trace.len(),
        total
    );
    // Eight aligned time samples.
    let mut curve = String::from("    ");
    for step in 1..=8 {
        let t = total * step as f64 / 8.0;
        match trace.best_at(t) {
            Some(b) => curve.push_str(&format!("{b:.3} ")),
            None => curve.push_str("  -   "),
        }
    }
    println!("{curve}");
}

fn main() {
    let quick = quick_flag();
    let presets = [Preset::Wn18, Preset::Wn18rr, Preset::Fb15k237];
    let mut traces: Vec<SearchTrace> = Vec::new();

    for preset in presets {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        println!("=== {} ===", dataset.name);

        let result = autosf::search(
            &dataset,
            &filter,
            &profile.search_train,
            &profile.autosf,
            profile.search_budget,
        );
        print_curve(&result.trace);
        traces.push(result.trace);

        let result = random::search(
            &dataset,
            &filter,
            &profile.search_train,
            4,
            10,
            profile.seed,
            profile.search_budget,
        );
        print_curve(&result.trace);
        traces.push(result.trace);

        let result = tpe::search(
            &dataset,
            &filter,
            &profile.search_train,
            &profile.tpe,
            profile.search_budget,
        );
        print_curve(&result.trace);
        traces.push(result.trace);

        for (name, n_groups) in [("ERAS(N=1)", 1usize), ("ERAS", profile.eras.n_groups)] {
            let cfg = ErasConfig {
                n_groups,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            let mut trace = outcome.search_trace;
            trace.method = name.into();
            print_curve(&trace);
            traces.push(trace);
        }
        println!();
    }

    println!(
        "shape to check: ERAS curves end an order of magnitude earlier in wall-clock\n\
         time; stand-alone searchers' best-so-far can sit higher during search since\n\
         every point is a converged model (paper, Section V-C)."
    );
    match save_json("fig2", &traces) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
