//! Figure 7: effect of the number of blocks `M`.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin fig7 [-- --quick]
//! ```
//!
//! Sweeps `M ∈ {3, 4, 5}` on the WN18RR and FB15k-237 stand-ins. AutoSF
//! hard-codes `M = 4`; ERAS's efficiency is what makes this sweep
//! affordable at all (Section V-E5). The paper's shape: `M = 4` is the
//! sweet spot, with `M = 3` under-parameterised and `M = 5` slower
//! without a quality win. The embedding dimension is fixed at 60 — the
//! least common multiple of the sweep — so every `M` divides it.

use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{mrr, save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};

struct Point {
    dataset: String,
    m: usize,
    total_secs: f64,
    test_mrr: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("dataset", self.dataset.as_str())
            .set("m", self.m)
            .set("total_secs", self.total_secs)
            .set("test_mrr", self.test_mrr)
    }
}

fn main() {
    let quick = quick_flag();
    let sweep: Vec<usize> = if quick { vec![3, 4] } else { vec![3, 4, 5] };
    let mut points: Vec<Point> = Vec::new();

    for preset in [Preset::Wn18rr, Preset::Fb15k237] {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);
        for &m in &sweep {
            let mut retrain = profile.train.clone();
            retrain.dim = 60;
            let cfg = ErasConfig {
                m,
                dim: 60,
                retrain,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            let total = outcome.search_secs + outcome.evaluation_secs;
            eprintln!("  M={m}: MRR {:.3} ({:.1}s)", outcome.test.mrr, total);
            points.push(Point {
                dataset: dataset.name.clone(),
                m,
                total_secs: total,
                test_mrr: outcome.test.mrr,
            });
        }
    }

    println!("\nFigure 7 — time (s) vs test MRR for M blocks (dim 60):\n");
    let mut table = Table::new(&["dataset", "M", "time (s)", "test MRR"]);
    for p in &points {
        table.row(vec![
            p.dataset.clone(),
            p.m.to_string(),
            format!("{:.1}", p.total_secs),
            mrr(p.test_mrr),
        ]);
    }
    print!("{}", table.render());
    println!("\nshape to check (paper Fig. 7): M=4 best; larger M costs time without gain.");
    match save_json("fig7", &points) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
