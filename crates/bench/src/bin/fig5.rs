//! Figure 5: correlation between one-shot and stand-alone validation MRR.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin fig5 [-- --quick]
//! ```
//!
//! Reproduces the bias check of Section V-E1 on the WN18RR stand-in: the
//! one-shot *MRR* under shared embeddings (Fig. 5a) must correlate
//! clearly with stand-alone MRR, while the one-shot *loss* (Fig. 5b)
//! correlates much more weakly — the evidence that the shallow bipartite
//! supernet avoids the biased-evaluation problem and that MRR is the
//! right reward.

use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::save_json;
use eras_core::correlation::{one_shot_vs_standalone, OneShotMeasure};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};

struct Study {
    measure: String,
    pairs: Vec<(f64, f64)>,
    pearson: f64,
    spearman: f64,
}

impl ToJson for Study {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("measure", self.measure.as_str())
            .set("pairs", self.pairs.to_json())
            .set("pearson", self.pearson)
            .set("spearman", self.spearman)
    }
}

fn main() {
    let quick = quick_flag();
    let preset = Preset::Wn18rr;
    let profile = Profile::from_args(preset, 7, quick);
    let dataset = preset.build(7);
    let filter = FilterIndex::build(&dataset);
    let k = if quick { 6 } else { 20 };

    let mut studies = Vec::new();
    for (label, measure) in [
        ("one-shot valid MRR (Fig 5a)", OneShotMeasure::Mrr),
        ("one-shot valid -loss (Fig 5b)", OneShotMeasure::NegLoss),
    ] {
        let study = one_shot_vs_standalone(&dataset, &filter, &profile.eras, measure, k);
        println!("{label}:");
        println!("  one-shot      stand-alone");
        for (a, b) in &study.pairs {
            println!("  {a:>9.4}  ->  {b:.4}");
        }
        println!(
            "  Pearson r = {:.3}, Spearman rho = {:.3}\n",
            study.pearson, study.spearman
        );
        studies.push(Study {
            measure: label.into(),
            pairs: study.pairs,
            pearson: study.pearson,
            spearman: study.spearman,
        });
    }

    if studies.len() == 2 {
        let (mrr_r, loss_r) = (studies[0].pearson, studies[1].pearson);
        println!(
            "shape to check (paper Fig. 5): corr(one-shot MRR) = {mrr_r:.3} should clearly\n\
             exceed corr(one-shot loss) = {loss_r:.3}; the former near-positive-linear."
        );
    }
    match save_json("fig5", &studies) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
