//! Implementation-choice ablations (this reproduction's own design
//! decisions, not the paper's Table XI).
//!
//! ```sh
//! cargo run --release -p eras-bench --bin ablation_impl [-- --quick]
//! ```
//!
//! DESIGN.md documents three choices this implementation makes on top of
//! Algorithm 2, each motivated by the small-compute regime:
//!
//! - **elite archive**: best one-shot architectures seen during search
//!   join the derivation candidates;
//! - **derivation screening**: the top one-shot candidates get a short
//!   stand-alone run before the final pick (counteracts the winner's
//!   curse of a noisy one-shot ranking);
//! - **zero-op bias**: the controller starts biased toward sparse grids
//!   (the density regime of good scoring functions).
//!
//! This bench measures each choice's effect on the final test MRR over a
//! few seeds.

use eras_bench::profiles::quick_flag;
use eras_bench::report::{mrr, save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset};

struct Row {
    setting: String,
    seed: u64,
    test_mrr: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("setting", self.setting.as_str())
            .set("seed", self.seed)
            .set("test_mrr", self.test_mrr)
    }
}

fn main() {
    let quick = quick_flag();
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1, 2] };
    let dataset = Preset::Tiny.build(11);
    let filter = FilterIndex::build(&dataset);

    let base = move |seed: u64| ErasConfig {
        n_groups: 2,
        epochs: if quick { 6 } else { 25 },
        seed,
        ..ErasConfig::fast()
    };

    type ConfigFor = Box<dyn Fn(u64) -> ErasConfig>;
    let settings: Vec<(&str, ConfigFor)> = vec![
        ("full (all choices on)", Box::new(base)),
        (
            "no elite archive",
            Box::new(move |seed| ErasConfig {
                use_archive: false,
                ..base(seed)
            }),
        ),
        (
            "no derivation screening",
            Box::new(move |seed| ErasConfig {
                derive_screen: 1,
                ..base(seed)
            }),
        ),
        (
            "no zero-op bias",
            Box::new(move |seed| ErasConfig {
                zero_op_bias: 0.0,
                ..base(seed)
            }),
        ),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, make) in &settings {
        for &seed in &seeds {
            let outcome = run_eras(&dataset, &filter, &make(seed), Variant::Full);
            eprintln!("{name} seed {seed}: {:.3}", outcome.test.mrr);
            rows.push(Row {
                setting: name.to_string(),
                seed,
                test_mrr: outcome.test.mrr,
            });
        }
    }

    println!(
        "\nImplementation ablations on {} (test MRR, mean over seeds):\n",
        dataset.name
    );
    let mut table = Table::new(&["setting", "mean MRR", "min", "max"]);
    for (name, _) in &settings {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.setting == *name)
            .map(|r| r.test_mrr)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        table.row(vec![name.to_string(), mrr(mean), mrr(min), mrr(max)]);
    }
    print!("{}", table.render());
    match save_json("ablation_impl", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
