//! Table VI: the main link-prediction comparison.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table6 [-- --quick]
//! ```
//!
//! Trains every implemented comparator plus AutoSF, ERAS^{N=1} and ERAS on
//! the five benchmark stand-ins, and prints the measured MRR / Hit@1 /
//! Hit@10 next to the paper's reported values for shape comparison.

use eras_bench::comparators::{run_comparator, Comparator, EvalRow};
use eras_bench::literature;
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{mrr, pct, save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::{FilterIndex, Preset};
use eras_search::autosf;
use eras_train::trainer::train_standalone;
use eras_train::BlockModel;
use std::time::Instant;

fn main() {
    let quick = quick_flag();
    let mut rows: Vec<EvalRow> = Vec::new();

    for preset in Preset::paper_benchmarks() {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);

        for c in Comparator::all() {
            let trained = run_comparator(c, &dataset, &filter, &profile);
            eprintln!("  {:<10} MRR {:.3}", c.name(), trained.row.mrr);
            rows.push(trained.row);
        }

        // AutoSF: greedy search, then retrain the best structure with the
        // full stand-alone budget.
        let started = Instant::now();
        let result = autosf::search(
            &dataset,
            &filter,
            &profile.search_train,
            &profile.autosf,
            profile.search_budget,
        );
        let model = BlockModel::universal(result.best_sf.clone(), dataset.num_relations());
        let outcome = train_standalone(&model, &dataset, &filter, &profile.train);
        eprintln!("  {:<10} MRR {:.3}", "AutoSF", outcome.test.mrr);
        rows.push(EvalRow::new(
            "AutoSF",
            &dataset.name,
            outcome.test,
            started.elapsed().as_secs_f64(),
        ));

        // ERAS^{N=1} (task-aware only) and ERAS (relation-aware).
        for (name, n_groups) in [("ERAS(N=1)", 1usize), ("ERAS", profile.eras.n_groups)] {
            let started = Instant::now();
            let cfg = ErasConfig {
                n_groups,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            eprintln!("  {:<10} MRR {:.3}", name, outcome.test.mrr);
            rows.push(EvalRow::new(
                name,
                &dataset.name,
                outcome.test,
                started.elapsed().as_secs_f64(),
            ));
        }
    }

    // Render: one block per dataset, measured next to the literature.
    for preset in Preset::paper_benchmarks() {
        println!(
            "\nTable VI — {} (measured on the synthetic stand-in):\n",
            preset.name()
        );
        let mut table = Table::new(&["model", "MRR", "Hit@1 %", "Hit@10 %", "train s"]);
        for row in rows.iter().filter(|r| r.dataset == preset.name()) {
            table.row(vec![
                row.model.clone(),
                mrr(row.mrr),
                pct(row.hits1),
                pct(row.hits10),
                format!("{:.1}", row.train_secs),
            ]);
        }
        print!("{}", table.render());
    }

    println!("\npaper's reported MRR for reference (real datasets):\n");
    let mut lit = Table::new(&["model", "WN18", "WN18RR", "FB15k", "FB15k237", "YAGO3-10"]);
    for (name, vals) in literature::TABLE6 {
        let mut row = vec![name.to_string()];
        for v in vals {
            row.push(
                v.map(|(m, _, _)| format!("{m:.3}"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        lit.row(row);
    }
    print!("{}", lit.render());
    println!(
        "\nshape to check: AutoSF/ERAS ≥ fixed scoring functions per dataset;\n\
         ERAS ≥ ERAS(N=1); TransE weakest on symmetric-heavy data."
    );

    match save_json("table6", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
