//! Table VIII: pattern-level Hit@1 for ERAS vs ERAS^{N=1}.
//!
//! ```sh
//! cargo run --release -p eras-bench --bin table8 [-- --quick]
//! ```
//!
//! The paper's shape: the relation-aware ERAS beats its own universal
//! variant ERAS^{N=1} on *both* symmetric and anti-symmetric slices of
//! each dataset — relation-awareness helps exactly at the pattern level.

use eras_bench::literature;
use eras_bench::profiles::{quick_flag, Profile};
use eras_bench::report::{pct, save_json, Table};
use eras_core::{run_eras, ErasConfig, Variant};
use eras_data::json::{Json, ToJson};
use eras_data::{FilterIndex, Preset, RelationPattern};
use eras_train::eval::link_prediction;

struct Cell {
    method: String,
    dataset: String,
    pattern: String,
    hits1: f64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("method", self.method.as_str())
            .set("dataset", self.dataset.as_str())
            .set("pattern", self.pattern.as_str())
            .set("hits1", self.hits1)
    }
}

fn main() {
    let quick = quick_flag();
    let presets = [Preset::Wn18rr, Preset::Fb15k, Preset::Fb15k237];
    let patterns = [RelationPattern::Symmetric, RelationPattern::AntiSymmetric];
    let mut cells: Vec<Cell> = Vec::new();

    for preset in presets {
        let profile = Profile::from_args(preset, 7, quick);
        let dataset = preset.build(7);
        let filter = FilterIndex::build(&dataset);
        eprintln!("=== {} ===", dataset.name);
        for (name, n_groups) in [("ERAS(N=1)", 1usize), ("ERAS", profile.eras.n_groups)] {
            let cfg = ErasConfig {
                n_groups,
                ..profile.eras.clone()
            };
            let outcome = run_eras(&dataset, &filter, &cfg, Variant::Full);
            for pattern in patterns {
                let triples = dataset.test_triples_with_pattern(pattern);
                if triples.is_empty() {
                    continue;
                }
                let m = link_prediction(&outcome.model, &outcome.embeddings, &triples, &filter);
                eprintln!("  {name} {} Hit@1 {:.3}", pattern.label(), m.hits1);
                cells.push(Cell {
                    method: name.into(),
                    dataset: dataset.name.clone(),
                    pattern: pattern.label().into(),
                    hits1: m.hits1,
                });
            }
        }
    }

    println!("\nTable VIII — Hit@1 (%) at the relation-pattern level:\n");
    let mut headers: Vec<String> = vec!["Method".into()];
    for pattern in patterns {
        for preset in presets {
            headers.push(format!("{} {}", pattern.label(), preset.name()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for method in ["ERAS(N=1)", "ERAS"] {
        let mut row = vec![method.to_string()];
        for pattern in patterns {
            for preset in presets {
                let cell = cells.iter().find(|c| {
                    c.method == method && c.dataset == preset.name() && c.pattern == pattern.label()
                });
                row.push(cell.map(|c| pct(c.hits1)).unwrap_or_else(|| "-".into()));
            }
        }
        table.row(row);
    }
    print!("{}", table.render());

    println!("\npaper's Table VIII (real datasets, Hit@1 %):\n");
    let mut lit = Table::new(&[
        "Method",
        "sym WN18RR",
        "sym FB15k",
        "sym FB15k237",
        "anti WN18RR",
        "anti FB15k",
        "anti FB15k237",
    ]);
    for (name, vals) in literature::TABLE8 {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.1}")));
        lit.row(row);
    }
    print!("{}", lit.render());
    println!("\nshape to check: ERAS ≥ ERAS(N=1) on every pattern column.");

    match save_json("table8", &cells) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
