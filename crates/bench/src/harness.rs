//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds with zero registry access, so the Criterion-style
//! benches under `benches/` run on this small timing loop instead:
//! warm-up, iteration-count calibration to a fixed measurement window,
//! several samples, median-of-samples reporting.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark.
const SAMPLES: usize = 7;
/// Target wall-clock per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(120);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(150);

/// Time one closure and print `name ... median ns/iter`.
///
/// Returns the median nanoseconds per iteration so callers can assert
/// coarse regressions if they want to.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm up and measure a first estimate of the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < WARMUP || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let spread = (samples[samples.len() - 1] - samples[0]) / median.max(1.0);
    println!(
        "{name:<40} {:>14} ns/iter  (x{iters}, spread {:.0}%)",
        group_digits(median.round() as u64),
        100.0 * spread
    );
    median
}

/// `1234567 → "1,234,567"` for readable ns counts.
fn group_digits(mut n: u64) -> String {
    let mut parts = Vec::new();
    loop {
        if n < 1000 {
            parts.push(format!("{n}"));
            break;
        }
        parts.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let ns = bench("harness_self_test", || {
            (0..100u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }
}
