//! Property tests for the JSON layer the serve front end rides on:
//! the encoder and parser must round-trip arbitrary values, and the
//! parser must answer *any* byte soup with `Ok` or `Err` — never a
//! panic — because it reads request bodies straight off the network.

use eras_data::Json;
use eras_linalg::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// An arbitrary JSON value, depth-bounded so generation terminates.
fn arbitrary(rng: &mut Rng, depth: usize) -> Json {
    let choice = if depth == 0 {
        rng.next_below(4)
    } else {
        rng.next_below(6)
    };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() & 1 == 0),
        2 => {
            // Mix of integers, fractions and negatives; keep them
            // finite (non-finite prints as `null` by design, which
            // legitimately does not round-trip).
            let whole = (rng.next_u64() % 2_000_000) as f64 - 1_000_000.0;
            if rng.next_u64() & 1 == 0 {
                Json::Num(whole)
            } else {
                Json::Num(whole + f64::from(rng.next_f32()))
            }
        }
        3 => Json::Str(arbitrary_string(rng)),
        4 => {
            let n = rng.next_below(4);
            Json::Arr((0..n).map(|_| arbitrary(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.next_below(4);
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", arbitrary_string(rng)),
                            arbitrary(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// Strings with the characters that stress an encoder: quotes,
/// backslashes, control bytes, non-ASCII, and the escape letters.
fn arbitrary_string(rng: &mut Rng) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', 'é', '→',
        '𝄞', '{', '}', '[', ']', ':', ',',
    ];
    let len = rng.next_below(12);
    (0..len)
        .map(|_| ALPHABET[rng.next_below(ALPHABET.len())])
        .collect()
}

/// Values that survive one encode→parse trip must keep surviving:
/// parse(compact(v)) == v and parse(pretty(v)) == v, for both writers.
#[test]
fn encode_parse_roundtrips_arbitrary_values() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for case in 0..500 {
        let value = arbitrary(&mut rng, 3);
        let compact = value.to_compact();
        let parsed = Json::parse(&compact)
            .unwrap_or_else(|e| panic!("case {case}: emitted invalid JSON {compact:?}: {e}"));
        assert_eq!(
            parsed, value,
            "case {case}: compact round-trip changed the value"
        );
        let pretty = value.to_pretty();
        let parsed = Json::parse(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: emitted invalid pretty JSON: {e}"));
        assert_eq!(
            parsed, value,
            "case {case}: pretty round-trip changed the value"
        );
    }
}

/// Fuzz-lite: seeded byte mutations of valid documents must parse to
/// `Ok` or `Err`, never panic — and a re-encode of any `Ok` result
/// must itself parse (no corrupt value can be constructed).
#[test]
fn mutated_documents_never_panic_the_parser() {
    let mut rng = Rng::seed_from_u64(0xBEEF);
    for case in 0..400 {
        let mut bytes = arbitrary(&mut rng, 3).to_compact().into_bytes();
        for _ in 0..=rng.next_below(4) {
            if bytes.is_empty() {
                break;
            }
            let at = rng.next_below(bytes.len());
            match rng.next_below(3) {
                0 => bytes[at] = (rng.next_u64() & 0xFF) as u8,
                1 => {
                    bytes.truncate(at);
                }
                _ => bytes.insert(at, (rng.next_u64() & 0x7F) as u8),
            }
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = catch_unwind(AssertUnwindSafe(|| Json::parse(&text)));
        let result = match outcome {
            Ok(result) => result,
            Err(_) => panic!("case {case}: parser panicked on {text:?}"),
        };
        if let Ok(value) = result {
            let reencoded = value.to_compact();
            Json::parse(&reencoded).unwrap_or_else(|e| {
                panic!("case {case}: accepted {text:?} but re-encoding broke: {e}")
            });
        }
    }
}

/// Pure garbage (not derived from valid documents) is also safe.
#[test]
fn random_bytes_never_panic_the_parser() {
    let mut rng = Rng::seed_from_u64(0xD00D);
    for case in 0..400 {
        let len = rng.next_below(64);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if catch_unwind(AssertUnwindSafe(|| Json::parse(&text))).is_err() {
            panic!("case {case}: parser panicked on {bytes:?}");
        }
    }
}
