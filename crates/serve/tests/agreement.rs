//! The serving acceptance tests: a trained model served through
//! `QueryEngine` (and through the HTTP front end) must rank candidates in
//! **exact** agreement with the offline filtered evaluator in
//! `eras_train::eval` — same scores bit-for-bit, same order, same
//! filtering semantics.

use eras_data::{FilterIndex, Json, Preset};
use eras_linalg::cmp;
use eras_serve::{http, Direction, Query, QueryEngine};
use eras_train::eval::{filtered_rank, ScoreModel};
use eras_train::io::Snapshot;
use eras_train::trainer::{train_standalone, TrainConfig};
use eras_train::{BlockModel, LossMode};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// Train a small model on the tiny preset and wrap it in a snapshot whose
/// known set is train + valid (test stays out, exactly like the offline
/// filtered evaluator's index built from the full dataset minus nothing —
/// see below).
fn trained_fixture() -> (eras_data::Dataset, Snapshot) {
    let dataset = Preset::Tiny.build(7);
    let filter = FilterIndex::build(&dataset);
    let cfg = TrainConfig {
        dim: 16,
        max_epochs: 5,
        eval_every: 10,
        loss: LossMode::Sampled { negatives: 16 },
        seed: 7,
        ..TrainConfig::default()
    };
    let model = BlockModel::universal(eras_sf::zoo::complex(), dataset.num_relations());
    let outcome = train_standalone(&model, &dataset, &filter, &cfg);
    let mut known = dataset.train.clone();
    known.extend_from_slice(&dataset.valid);
    let snap = Snapshot::new(
        "tiny-agreement",
        dataset.entities.clone(),
        dataset.relations.clone(),
        &model,
        outcome.embeddings,
        known,
    );
    (dataset, snap)
}

/// Offline reference: score every candidate with the evaluator's scoring
/// path, drop the filtered ids, order by (score desc, id asc) using the
/// same NaN-total-order comparator family the engine uses.
fn offline_topk(snap: &Snapshot, filter: &FilterIndex, q: Query) -> Vec<(u32, f32)> {
    let model = snap.block_model();
    let mut scores = vec![0.0f32; snap.entities.len()];
    match q.dir {
        Direction::Tail => model.score_all_tails(&snap.embeddings, q.anchor, q.rel, &mut scores),
        Direction::Head => model.score_all_heads(&snap.embeddings, q.anchor, q.rel, &mut scores),
    }
    let filt: &[u32] = if q.filtered {
        match q.dir {
            Direction::Tail => filter.tails(q.anchor, q.rel),
            Direction::Head => filter.heads(q.anchor, q.rel),
        }
    } else {
        &[]
    };
    let mut ranked: Vec<(u32, f32)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u32, s))
        .filter(|(i, _)| filt.binary_search(i).is_err())
        .collect();
    ranked.sort_by(|a, b| cmp::nan_last_desc_f32(a.1, b.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(q.k);
    ranked
}

#[test]
fn engine_topk_matches_offline_evaluator_exactly() {
    let (dataset, snap) = trained_fixture();
    let serve_filter = FilterIndex::from_triples(snap.known.iter().copied());
    let engine = QueryEngine::new(snap.clone(), 0).expect("valid snapshot");

    let mut checked = 0usize;
    for t in dataset.test.iter().take(20) {
        for (dir, anchor) in [(Direction::Tail, t.head), (Direction::Head, t.tail)] {
            for filtered in [true, false] {
                let q = Query {
                    dir,
                    anchor,
                    rel: t.rel,
                    k: 10,
                    filtered,
                };
                let want = offline_topk(&snap, &serve_filter, q);
                let got = engine.answer(q).expect("query ok");
                assert_eq!(got.ranked.len(), want.len(), "{q:?}");
                for (g, (wid, wscore)) in got.ranked.iter().zip(&want) {
                    assert_eq!(g.id, *wid, "{q:?}");
                    assert_eq!(g.score.to_bits(), wscore.to_bits(), "{q:?}");
                }
                checked += 1;
            }
        }
    }
    assert!(checked >= 8, "fixture produced too few queries");
}

/// The engine's served position of the true answer is consistent with the
/// evaluator's `filtered_rank`: with the deterministic smaller-id-first
/// tie-break, position = 1 + #better + #{ties with smaller id}, while the
/// evaluator reports the average-tie rank 1 + #better + #ties/2.
#[test]
fn served_position_is_consistent_with_filtered_rank() {
    let (dataset, snap) = trained_fixture();
    let serve_filter = FilterIndex::from_triples(snap.known.iter().copied());
    let model = snap.block_model();
    let ne = snap.entities.len();

    for t in dataset.test.iter().take(10) {
        let engine = QueryEngine::new(snap.clone(), 0).expect("valid snapshot");
        let mut scores = vec![0.0f32; ne];
        model.score_all_tails(&snap.embeddings, t.head, t.rel, &mut scores);
        let filt = serve_filter.tails(t.head, t.rel);
        let fr = filtered_rank(&scores, t.tail, filt);

        let q = Query {
            dir: Direction::Tail,
            anchor: t.head,
            rel: t.rel,
            k: ne,
            filtered: true,
        };
        let a = engine.answer(q).expect("query ok");
        let pos = a
            .ranked
            .iter()
            .position(|r| r.id == t.tail)
            .expect("target must be served (test triples are not filtered)")
            + 1;

        let target_score = scores[t.tail as usize];
        let mut better = 0usize;
        let mut ties_before = 0usize;
        let mut ties = 0usize;
        for (i, &s) in scores.iter().enumerate() {
            let i = i as u32;
            if i == t.tail || filt.binary_search(&i).is_ok() {
                continue;
            }
            if s > target_score {
                better += 1;
            } else if s == target_score {
                ties += 1;
                if i < t.tail {
                    ties_before += 1;
                }
            }
        }
        assert_eq!(pos, 1 + better + ties_before, "triple {t:?}");
        assert_eq!(fr, 1.0 + better as f64 + ties as f64 / 2.0, "triple {t:?}");
    }
}

fn http_roundtrip(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .expect("read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let payload = response.split("\r\n\r\n").nth(1).expect("body");
    (status, Json::parse(payload).expect("json body"))
}

/// The ISSUE acceptance criterion: a filtered top-10 `(h, r, ?)` query
/// over HTTP returns exactly the offline evaluator's ranking.
#[test]
fn http_topk_matches_offline_evaluator() {
    let (dataset, snap) = trained_fixture();
    let serve_filter = FilterIndex::from_triples(snap.known.iter().copied());
    let engine = Arc::new(QueryEngine::new(snap.clone(), 64).expect("valid snapshot"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = Arc::clone(&engine);
    std::thread::spawn(move || http::serve(listener, server, 2));

    let t = dataset
        .test
        .first()
        .copied()
        .expect("tiny has test triples");
    let head = dataset.entities.name(t.head);
    let rel = dataset.relations.name(t.rel);
    let payload = format!(r#"{{"head":"{head}","relation":"{rel}","k":10}}"#);

    let (status, body) = http_roundtrip(addr, "POST", "/query", &payload);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false));

    let want = offline_topk(
        &snap,
        &serve_filter,
        Query {
            dir: Direction::Tail,
            anchor: t.head,
            rel: t.rel,
            k: 10,
            filtered: true,
        },
    );
    let results = body.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), want.len());
    for (i, (r, (wid, wscore))) in results.iter().zip(&want).enumerate() {
        assert_eq!(r.get("rank").and_then(Json::as_usize), Some(i + 1));
        assert_eq!(r.get("id").and_then(Json::as_usize), Some(*wid as usize));
        assert_eq!(
            r.get("entity").and_then(Json::as_str),
            Some(dataset.entities.name(*wid)),
        );
        let served = r.get("score").and_then(Json::as_f64).expect("score");
        assert_eq!(served as f32, *wscore, "rank {}", i + 1);
    }

    // Repeating the identical request must hit the result cache.
    let (status, body) = http_roundtrip(addr, "POST", "/query", &payload);
    assert_eq!(status, 200);
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true));

    // And /stats reflects both queries and the hit.
    let (status, stats) = http_roundtrip(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(stats.get("queries").and_then(Json::as_usize), Some(2));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_usize), Some(1));
}

/// HTTP error codes: unknown entity → 404, malformed query → 400,
/// unknown endpoint → 404, wrong method → 405.
#[test]
fn http_error_codes() {
    let (_dataset, snap) = trained_fixture();
    let engine = Arc::new(QueryEngine::new(snap, 0).expect("valid snapshot"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    std::thread::spawn(move || http::serve(listener, engine, 1));

    let (s, body) = http_roundtrip(
        addr,
        "POST",
        "/query",
        r#"{"head":"not-an-entity","relation":"0"}"#,
    );
    assert_eq!(s, 404, "{body:?}");
    assert!(body.get("error").is_some());
    let (s, _) = http_roundtrip(addr, "POST", "/query", r#"{"relation":"0"}"#);
    assert_eq!(s, 400);
    let (s, _) = http_roundtrip(addr, "GET", "/missing", "");
    assert_eq!(s, 404);
    let (s, _) = http_roundtrip(addr, "PUT", "/query", "");
    assert_eq!(s, 405);
}

/// A snapshot written by `io::save_snapshot` and served from disk behaves
/// identically to the in-memory engine (the full train → save → load →
/// serve path).
#[test]
fn snapshot_file_serves_identically_to_memory() {
    let (_dataset, snap) = trained_fixture();
    let path = std::env::temp_dir().join(format!("eras_agree_{}.eras", std::process::id()));
    eras_train::io::save_snapshot(&path, &snap).expect("save");
    let from_disk = QueryEngine::load(&path, 0).expect("load");
    let in_memory = QueryEngine::new(snap, 0).expect("valid snapshot");
    std::fs::remove_file(&path).ok();

    for anchor in [0u32, 5, 17] {
        let q = Query {
            dir: Direction::Tail,
            anchor,
            rel: 0,
            k: 10,
            filtered: true,
        };
        let a = from_disk.answer(q).expect("disk ok");
        let b = in_memory.answer(q).expect("memory ok");
        assert_eq!(a.ranked.len(), b.ranked.len());
        for (x, y) in a.ranked.iter().zip(b.ranked.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}

/// Reading a BufRead line helper is exercised through the public parser
/// against a socket-less reader, keeping coverage of the limits without
/// sockets (the socket paths are covered above).
#[test]
fn request_parser_enforces_limits_without_sockets() {
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(10_000));
    match http::read_request(&mut std::io::Cursor::new(long_line.as_bytes())) {
        Err(e) => {
            let msg = format!("{e:?}");
            assert!(msg.contains("TooLarge"), "{msg}");
        }
        Ok(_) => panic!("oversized request line must be rejected"),
    }
}
