//! A small LRU cache for query results.
//!
//! Recency is tracked with a monotonically increasing stamp per entry:
//! lookups and inserts are `O(1)` hash operations, eviction scans for the
//! oldest stamp (`O(capacity)`), which is the right trade-off for the
//! result cache's modest capacities (hundreds to a few thousand entries)
//! and keeps the implementation dependency- and unsafe-free.

use std::collections::HashMap;
use std::hash::Hash;

/// Least-recently-used map with a fixed capacity.
///
/// A capacity of zero disables the cache: every `get` misses and `put`
/// is a no-op.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Insert or replace `key`, evicting the least-recently-used entry
    /// when full.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the entry with the oldest stamp.
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone());
            if let Some(k) = oldest {
                self.map.remove(&k);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.put(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        // Touch 1 so 2 is the LRU entry.
        assert_eq!(c.get(&1), Some("a"));
        c.put(3, "c");
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&3), Some("c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        c.put(1, "a2");
        assert_eq!(c.get(&1), Some("a2"));
        assert_eq!(c.get(&2), Some("b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(1, "a");
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }
}
