//! # eras-serve — link-prediction serving for searched ERAS models
//!
//! Turns a trained model into an online service in three layers:
//!
//! 1. **Snapshots** — `eras_train::io`'s format v2 bundles vocabularies,
//!    the searched `BlockSf` structures, the relation assignment, the
//!    embedding tables and the known-triple set into one self-describing
//!    file, so a server needs no access to the original dataset.
//! 2. **[`QueryEngine`]** — loads a snapshot, rebuilds the scoring model
//!    and the filter index, and answers `(h, r, ?)` / `(?, r, t)` top-k
//!    queries with one batched pass over the entity table, an LRU result
//!    cache and lock-free metrics.
//! 3. **[`http`]** — a std-only multi-threaded HTTP/1.1 + JSON front end
//!    (`eras serve` in the CLI), plus a one-shot `eras query` path that
//!    uses the engine directly.
//!
//! Everything is `std`-only, matching the workspace's zero-dependency
//! policy.

pub mod cache;
pub mod engine;
pub mod http;
pub mod metrics;

pub use cache::LruCache;
pub use engine::{Answer, Direction, Query, QueryEngine, Ranked, ServeError};
pub use http::{
    read_request, render_answer, request_shutdown, route, serve, serve_with_options,
    write_response, Request, ServeOptions,
};
pub use metrics::ServeMetrics;
