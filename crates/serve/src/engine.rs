//! The in-process query engine: loads a [`Snapshot`], rebuilds the scoring
//! model and the known-triple filter index, and answers `(h, r, ?)` /
//! `(?, r, t)` top-k queries.
//!
//! ## Batched scoring
//!
//! Each query reduces to one query vector `q` (see
//! `eras_train::BlockModel::tail_query`), after which candidate scores are
//! dot products against entity rows. The engine hands a whole query
//! group to the fused, cache-blocked scan kernel
//! (`eras_linalg::scan::scan_rows`): the entity table is tiled into
//! L1/L2-sized row blocks, queries are register-tiled four at a time
//! over each block, and every query's scores stream into its own
//! bounded top-k heap (`eras_linalg::scan::StreamTopK`) — one table
//! pass per group (`O(N_e · B · d)` flops but `O(N_e · d)` memory
//! traffic), no per-entity score vector ever materialized. Each heap
//! keeps a cursor into its sorted filter list, so filtered candidates
//! are skipped in `O(1)` amortised, and a cached worst-score threshold
//! rejects non-improving candidates with one float compare.
//!
//! ## Ranking order
//!
//! Scores are ranked descending with the total order of
//! `eras_linalg::cmp::nan_lowest_f32` (NaN sorts below every number) and
//! ties broken toward the **smaller entity id**. The offline evaluator's
//! sort in `crates/serve/tests` pins this exact order, so served rankings
//! are reproducible and comparable across runs.

use crate::cache::LruCache;
use crate::metrics::ServeMetrics;
use eras_data::{FilterIndex, Json};
use eras_linalg::pool::ThreadPool;
use eras_linalg::scan::{scan_rows, StreamTopK};
use eras_obs::clock::Stopwatch;
use eras_train::io::{self, Snapshot};
use eras_train::BlockModel;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// Which side of the triple is being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `(h, r, ?)` — rank candidate tails.
    Tail,
    /// `(?, r, t)` — rank candidate heads.
    Head,
}

impl Direction {
    /// Wire name (`"tail"` / `"head"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Tail => "tail",
            Direction::Head => "head",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "tail" => Some(Direction::Tail),
            "head" => Some(Direction::Head),
            _ => None,
        }
    }
}

/// One resolved top-k query. Doubles as the result-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// Predicted side.
    pub dir: Direction,
    /// The known entity (head for tail queries, tail for head queries).
    pub anchor: u32,
    /// Relation id.
    pub rel: u32,
    /// Number of ranked results requested.
    pub k: usize,
    /// Exclude known-true answers (filtered ranking) when set.
    pub filtered: bool,
}

/// One ranked candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// Entity id of the candidate.
    pub id: u32,
    /// Model score (higher is better).
    pub score: f32,
}

/// A served answer: the ranked candidates plus serving metadata.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The query this answers.
    pub query: Query,
    /// Best-first candidates, at most `query.k` of them.
    pub ranked: Arc<Vec<Ranked>>,
    /// True when the result came from the LRU cache.
    pub cached: bool,
    /// End-to-end engine latency in microseconds.
    pub latency_us: u64,
}

/// Errors a query (or snapshot load) can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Entity name/id not present in the snapshot vocabulary.
    UnknownEntity(String),
    /// Relation name/id not present in the snapshot vocabulary.
    UnknownRelation(String),
    /// Structurally invalid query (bad k, out-of-range id, bad JSON…).
    BadQuery(String),
    /// The snapshot could not be loaded or is internally inconsistent.
    Snapshot(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEntity(e) => write!(f, "unknown entity: {e}"),
            ServeError::UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            ServeError::BadQuery(m) => write!(f, "bad query: {m}"),
            ServeError::Snapshot(m) => write!(f, "snapshot error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Queries per batch-scoring shard. A group shares one pass over the
/// entity table; the group size is fixed (never a function of the pool
/// size) so batches shard the same way on every machine.
const BATCH_SHARD_QUERIES: usize = 8;

fn lock_cache<'a>(
    m: &'a Mutex<LruCache<Query, Arc<Vec<Ranked>>>>,
) -> MutexGuard<'a, LruCache<Query, Arc<Vec<Ranked>>>> {
    // A poisoned cache only means another thread panicked mid-insert;
    // the map itself is still structurally sound.
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The serving engine. Immutable after construction (the interior
/// mutability is the result cache and the metrics counters), so it is
/// shared across worker threads behind an `Arc`.
pub struct QueryEngine {
    snapshot: Snapshot,
    model: BlockModel,
    filter: FilterIndex,
    cache: Mutex<LruCache<Query, Arc<Vec<Ranked>>>>,
    metrics: ServeMetrics,
}

impl QueryEngine {
    /// Build an engine from an in-memory snapshot. `cache_capacity` of
    /// zero disables the result cache.
    pub fn new(snapshot: Snapshot, cache_capacity: usize) -> Result<QueryEngine, ServeError> {
        snapshot.validate().map_err(ServeError::Snapshot)?;
        let model = snapshot.block_model();
        let filter = FilterIndex::from_triples(snapshot.known.iter().copied());
        Ok(QueryEngine {
            snapshot,
            model,
            filter,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            metrics: ServeMetrics::new(),
        })
    }

    /// Load a snapshot file (format v2) and build an engine on it.
    ///
    /// Transient I/O failures (a file momentarily unreadable during a
    /// deploy, an injected fault) are retried with exponential backoff;
    /// a corrupt file is a permanent [`ServeError::Snapshot`] at once.
    pub fn load(path: &Path, cache_capacity: usize) -> Result<QueryEngine, ServeError> {
        let snap = io::load_snapshot_retry(path, 3, std::time::Duration::from_millis(25))
            .map_err(|e| ServeError::Snapshot(format!("{}: {e}", path.display())))?;
        QueryEngine::new(snap, cache_capacity)
    }

    /// The loaded snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The reconstructed scoring model.
    pub fn model(&self) -> &BlockModel {
        &self.model
    }

    /// The known-triple filter index.
    pub fn filter(&self) -> &FilterIndex {
        &self.filter
    }

    /// Serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Number of entities served.
    pub fn num_entities(&self) -> usize {
        self.snapshot.entities.len()
    }

    /// Number of relations served.
    pub fn num_relations(&self) -> usize {
        self.snapshot.relations.len()
    }

    /// Resolve an entity by vocabulary name, falling back to a numeric id.
    pub fn resolve_entity(&self, s: &str) -> Result<u32, ServeError> {
        if let Some(id) = self.snapshot.entities.id(s) {
            return Ok(id);
        }
        match s.parse::<u32>() {
            Ok(id) if (id as usize) < self.num_entities() => Ok(id),
            _ => Err(ServeError::UnknownEntity(s.to_owned())),
        }
    }

    /// Resolve a relation by vocabulary name, falling back to a numeric id.
    pub fn resolve_relation(&self, s: &str) -> Result<u32, ServeError> {
        if let Some(id) = self.snapshot.relations.id(s) {
            return Ok(id);
        }
        match s.parse::<u32>() {
            Ok(id) if (id as usize) < self.num_relations() => Ok(id),
            _ => Err(ServeError::UnknownRelation(s.to_owned())),
        }
    }

    fn check(&self, q: &Query) -> Result<(), ServeError> {
        if q.k == 0 {
            return Err(ServeError::BadQuery("k must be at least 1".into()));
        }
        if q.anchor as usize >= self.num_entities() {
            return Err(ServeError::BadQuery(format!(
                "entity id {} out of range (have {})",
                q.anchor,
                self.num_entities()
            )));
        }
        if q.rel as usize >= self.num_relations() {
            return Err(ServeError::BadQuery(format!(
                "relation id {} out of range (have {})",
                q.rel,
                self.num_relations()
            )));
        }
        Ok(())
    }

    /// Answer one query, consulting the result cache.
    pub fn answer(&self, q: Query) -> Result<Answer, ServeError> {
        self.check(&q)?;
        let _span = eras_obs::span!("serve.answer", k = q.k);
        let start = Stopwatch::start();
        if let Some(ranked) = lock_cache(&self.cache).get(&q) {
            let latency_us = start.elapsed_us();
            self.metrics.record_query(latency_us, true);
            return Ok(Answer {
                query: q,
                ranked,
                cached: true,
                latency_us,
            });
        }
        let ranked = Arc::new(self.topk_batch(&[q]).pop().unwrap_or_default());
        lock_cache(&self.cache).put(q, Arc::clone(&ranked));
        let latency_us = start.elapsed_us();
        self.metrics.record_query(latency_us, false);
        Ok(Answer {
            query: q,
            ranked,
            cached: false,
            latency_us,
        })
    }

    /// Answer a batch of queries with one pass over the entity table for
    /// all cache misses. Answers come back in query order.
    // audit:allow(E701): answers and miss_idx are built from
    // queries.iter().enumerate(), so every index i is < queries.len()
    pub fn answer_batch(&self, queries: &[Query]) -> Result<Vec<Answer>, ServeError> {
        for q in queries {
            self.check(q)?;
        }
        let _span = eras_obs::span!("serve.answer_batch", queries = queries.len());
        let start = Stopwatch::start();
        let mut answers: Vec<Option<Answer>> = queries.iter().map(|_| None).collect();
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut cache = lock_cache(&self.cache);
            for (i, q) in queries.iter().enumerate() {
                match cache.get(q) {
                    Some(ranked) => {
                        answers[i] = Some(Answer {
                            query: *q,
                            ranked,
                            cached: true,
                            latency_us: 0,
                        })
                    }
                    None => miss_idx.push(i),
                }
            }
        }
        let misses: Vec<Query> = miss_idx.iter().map(|&i| queries[i]).collect();
        let computed = self.topk_batch(&misses);
        {
            let mut cache = lock_cache(&self.cache);
            for (&i, ranked) in miss_idx.iter().zip(computed) {
                let ranked = Arc::new(ranked);
                cache.put(queries[i], Arc::clone(&ranked));
                answers[i] = Some(Answer {
                    query: queries[i],
                    ranked,
                    cached: false,
                    latency_us: 0,
                });
            }
        }
        // All batch members share the batch's wall-clock latency.
        let latency_us = start.elapsed_us();
        Ok(answers
            .into_iter()
            .flatten()
            .map(|mut a| {
                a.latency_us = latency_us;
                self.metrics.record_query(latency_us, a.cached);
                a
            })
            .collect())
    }

    /// The batched kernel, sharded over the shared thread pool: the
    /// query list is cut into fixed groups of [`BATCH_SHARD_QUERIES`]
    /// and each group makes its own ascending pass over the entity
    /// table via [`QueryEngine::topk_group`]. Every query's ranking is
    /// a pure function of that query alone, so the sharding (and the
    /// pool size) cannot change any result; `ThreadPool::map` returns
    /// groups in index order.
    // audit:allow(E701): ThreadPool::map invokes the closure with
    // g < groups.len() by contract
    fn topk_batch(&self, queries: &[Query]) -> Vec<Vec<Ranked>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let groups: Vec<&[Query]> = queries.chunks(BATCH_SHARD_QUERIES).collect();
        ThreadPool::global()
            .map(groups.len(), |g| self.topk_group(groups[g]))
            .into_iter()
            .flatten()
            .collect()
    }

    /// One fused, cache-blocked pass over the entity table for a group
    /// of queries (`eras_linalg::scan::scan_rows`): a group of `B`
    /// queries costs one table pass, with entity rows register-tiled
    /// four queries at a time and scores streamed straight into each
    /// query's bounded heap.
    // audit:allow(E701): qvecs is sized queries.len() * dim up front,
    // and qi always comes from enumerate() over queries
    fn topk_group(&self, queries: &[Query]) -> Vec<Vec<Ranked>> {
        let emb = &self.snapshot.embeddings;
        let dim = emb.dim();
        let mut qvecs = vec![0.0f32; queries.len() * dim];
        let mut states: Vec<StreamTopK<'_>> = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let qv = &mut qvecs[qi * dim..(qi + 1) * dim];
            match q.dir {
                Direction::Tail => self.model.tail_query(emb, q.anchor, q.rel, qv),
                Direction::Head => self.model.head_query(emb, q.anchor, q.rel, qv),
            }
            let filt: &[u32] = if q.filtered {
                match q.dir {
                    Direction::Tail => self.filter.tails(q.anchor, q.rel),
                    Direction::Head => self.filter.heads(q.anchor, q.rel),
                }
            } else {
                &[]
            };
            states.push(StreamTopK::new(q.k, filt));
        }
        scan_rows(&emb.entity, &qvecs, &mut states);
        states
            .into_iter()
            .map(|st| {
                st.into_sorted()
                    .into_iter()
                    .map(|h| Ranked {
                        id: h.id,
                        score: h.score,
                    })
                    .collect()
            })
            .collect()
    }

    /// `/stats` payload: metrics plus model and cache descriptors.
    pub fn stats(&self) -> Json {
        let (cache_entries, cache_capacity) = {
            let cache = lock_cache(&self.cache);
            (cache.len(), cache.capacity())
        };
        self.metrics
            .to_json()
            .set("model", self.snapshot.name.as_str())
            .set("entities", self.num_entities())
            .set("relations", self.num_relations())
            .set("dim", self.snapshot.embeddings.dim())
            .set("known_triples", self.snapshot.known.len())
            .set("cache_entries", cache_entries)
            .set("cache_capacity", cache_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::vocab::Vocab;
    use eras_data::Triple;
    use eras_linalg::cmp;
    use eras_linalg::Rng;
    use eras_sf::zoo;
    use eras_train::eval::ScoreModel;
    use eras_train::Embeddings;

    fn tiny_snapshot(ne: usize, nr: usize, dim: usize, seed: u64) -> Snapshot {
        let mut rng = Rng::seed_from_u64(seed);
        let mut entities = Vocab::new();
        for i in 0..ne {
            entities.intern(&format!("e{i}"));
        }
        let mut relations = Vocab::new();
        for r in 0..nr {
            relations.intern(&format!("r{r}"));
        }
        let model = BlockModel::universal(zoo::complex(), nr);
        let embeddings = Embeddings::init(ne, nr, dim, &mut rng);
        let known: Vec<Triple> = (0..ne as u32)
            .map(|i| Triple::new(i, i % nr as u32, (i + 1) % ne as u32))
            .collect();
        Snapshot::new("tiny", entities, relations, &model, embeddings, known)
    }

    fn engine(cache: usize) -> QueryEngine {
        QueryEngine::new(tiny_snapshot(20, 2, 8, 7), cache).expect("valid snapshot")
    }

    /// Brute-force reference ranking: score everything, drop filtered,
    /// sort by (score desc, id asc).
    fn reference(eng: &QueryEngine, q: Query) -> Vec<Ranked> {
        let emb = &eng.snapshot().embeddings;
        let mut scores = vec![0.0f32; emb.num_entities()];
        match q.dir {
            Direction::Tail => eng
                .model()
                .score_all_tails(emb, q.anchor, q.rel, &mut scores),
            Direction::Head => eng
                .model()
                .score_all_heads(emb, q.anchor, q.rel, &mut scores),
        }
        let filt: &[u32] = if q.filtered {
            match q.dir {
                Direction::Tail => eng.filter().tails(q.anchor, q.rel),
                Direction::Head => eng.filter().heads(q.anchor, q.rel),
            }
        } else {
            &[]
        };
        let mut all: Vec<Ranked> = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| filt.binary_search(&(*i as u32)).is_err())
            .map(|(i, &s)| Ranked {
                id: i as u32,
                score: s,
            })
            .collect();
        all.sort_by(|a, b| cmp::nan_last_desc_f32(a.score, b.score).then_with(|| a.id.cmp(&b.id)));
        all.truncate(q.k);
        all
    }

    #[test]
    fn topk_matches_brute_force_in_both_directions() {
        let eng = engine(0);
        for dir in [Direction::Tail, Direction::Head] {
            for filtered in [false, true] {
                for k in [1usize, 3, 10, 50] {
                    let q = Query {
                        dir,
                        anchor: 3,
                        rel: 1,
                        k,
                        filtered,
                    };
                    let got = eng.answer(q).expect("query ok");
                    let want = reference(&eng, q);
                    assert_eq!(got.ranked.len(), want.len(), "{q:?}");
                    for (g, w) in got.ranked.iter().zip(&want) {
                        assert_eq!(g.id, w.id, "{q:?}");
                        assert_eq!(g.score.to_bits(), w.score.to_bits(), "{q:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_answers_match_individual_answers() {
        let eng = engine(0);
        let queries: Vec<Query> = (0..10u32)
            .map(|i| Query {
                dir: if i % 2 == 0 {
                    Direction::Tail
                } else {
                    Direction::Head
                },
                anchor: i % 20,
                rel: i % 2,
                k: 5,
                filtered: i % 3 == 0,
            })
            .collect();
        let batch = eng.answer_batch(&queries).expect("batch ok");
        assert_eq!(batch.len(), queries.len());
        for (q, a) in queries.iter().zip(&batch) {
            let solo = eng.answer(*q).expect("solo ok");
            assert_eq!(a.query, *q);
            let ids: Vec<u32> = a.ranked.iter().map(|r| r.id).collect();
            let solo_ids: Vec<u32> = solo.ranked.iter().map(|r| r.id).collect();
            assert_eq!(ids, solo_ids, "{q:?}");
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_respects_key() {
        let eng = engine(64);
        let q = Query {
            dir: Direction::Tail,
            anchor: 0,
            rel: 0,
            k: 5,
            filtered: true,
        };
        let first = eng.answer(q).expect("ok");
        assert!(!first.cached);
        let second = eng.answer(q).expect("ok");
        assert!(second.cached);
        assert_eq!(
            first.ranked.iter().map(|r| r.id).collect::<Vec<_>>(),
            second.ranked.iter().map(|r| r.id).collect::<Vec<_>>()
        );
        // Different k is a different key.
        let third = eng.answer(Query { k: 6, ..q }).expect("ok");
        assert!(!third.cached);
        assert_eq!(eng.metrics().cache_hits(), 1);
    }

    #[test]
    fn filtered_query_excludes_known_answers() {
        let eng = engine(0);
        // known contains (0, 0, 1): entity 1 must not appear for the
        // filtered tail query (0, 0, ?).
        let q = Query {
            dir: Direction::Tail,
            anchor: 0,
            rel: 0,
            k: 20,
            filtered: true,
        };
        let a = eng.answer(q).expect("ok");
        assert!(a.ranked.iter().all(|r| r.id != 1), "filtered id served");
        let unfiltered = eng
            .answer(Query {
                filtered: false,
                ..q
            })
            .expect("ok");
        assert!(unfiltered.ranked.iter().any(|r| r.id == 1));
    }

    #[test]
    fn ties_rank_smaller_ids_first() {
        // Zero embeddings ⇒ all scores equal ⇒ ranking must be id order.
        let mut snap = tiny_snapshot(10, 1, 4, 3);
        for v in snap.embeddings.entity.as_mut_slice() {
            *v = 0.0;
        }
        let eng = QueryEngine::new(snap, 0).expect("valid");
        let a = eng
            .answer(Query {
                dir: Direction::Tail,
                anchor: 0,
                rel: 0,
                k: 4,
                filtered: false,
            })
            .expect("ok");
        let ids: Vec<u32> = a.ranked.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let eng = engine(0);
        let base = Query {
            dir: Direction::Tail,
            anchor: 0,
            rel: 0,
            k: 5,
            filtered: false,
        };
        assert!(matches!(
            eng.answer(Query { k: 0, ..base }),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(
            eng.answer(Query {
                anchor: 999,
                ..base
            }),
            Err(ServeError::BadQuery(_))
        ));
        assert!(matches!(
            eng.answer(Query { rel: 99, ..base }),
            Err(ServeError::BadQuery(_))
        ));
    }

    #[test]
    fn name_and_numeric_resolution() {
        let eng = engine(0);
        assert_eq!(eng.resolve_entity("e3").expect("name"), 3);
        assert_eq!(eng.resolve_entity("7").expect("numeric"), 7);
        assert!(matches!(
            eng.resolve_entity("nope"),
            Err(ServeError::UnknownEntity(_))
        ));
        assert!(matches!(
            eng.resolve_entity("9999"),
            Err(ServeError::UnknownEntity(_))
        ));
        assert_eq!(eng.resolve_relation("r1").expect("name"), 1);
        assert!(matches!(
            eng.resolve_relation("zzz"),
            Err(ServeError::UnknownRelation(_))
        ));
    }

    #[test]
    fn k_larger_than_entity_count_returns_all_candidates() {
        let eng = engine(0);
        let a = eng
            .answer(Query {
                dir: Direction::Tail,
                anchor: 0,
                rel: 0,
                k: 10_000,
                filtered: false,
            })
            .expect("ok");
        assert_eq!(a.ranked.len(), 20);
    }

    #[test]
    fn stats_reports_model_shape() {
        let eng = engine(8);
        let j = eng.stats();
        assert_eq!(j.get("entities").and_then(Json::as_usize), Some(20));
        assert_eq!(j.get("relations").and_then(Json::as_usize), Some(2));
        assert_eq!(j.get("model").and_then(Json::as_str), Some("tiny"));
        assert_eq!(j.get("cache_capacity").and_then(Json::as_usize), Some(8));
    }
}
