//! A minimal, std-only HTTP/1.1 front end for the query engine.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! a fixed worker-thread pool fed over an `mpsc` channel, hard limits on
//! request-line, header and body sizes, and JSON in/out via
//! `eras_data::json`. No external dependencies, no async runtime — a
//! handful of threads blocked on `accept`/`read` is exactly the right
//! tool for a serving sidecar of this size.
//!
//! ## Endpoints
//!
//! | Method | Path       | Meaning                                      |
//! |--------|------------|----------------------------------------------|
//! | GET    | `/health`  | liveness probe                               |
//! | GET    | `/stats`   | serving counters + model shape               |
//! | GET    | `/metrics` | text exposition of the metrics registries    |
//! | POST   | `/query`   | one top-k query, or `{"queries": [...]}`     |
//!
//! A query object holds `"head"` (tail prediction) **or** `"tail"` (head
//! prediction), `"relation"`, and optional `"k"` (default 10) and
//! `"filtered"` (default true). Entities/relations are referenced by
//! vocabulary name, with a numeric-id fallback.

use crate::engine::{Answer, Direction, Query, QueryEngine, ServeError};
use eras_data::Json;
use eras_linalg::faults;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: u64 = 8 * 1024;
/// Longest accepted header line.
const MAX_HEADER_LINE: u64 = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body.
const MAX_BODY: usize = 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request — just the parts the router needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path with any `?query` suffix stripped.
    pub path: String,
    /// Raw request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; maps onto 400 vs 413 vs 431.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request → 400.
    BadRequest(String),
    /// The body size limit was exceeded → 413.
    TooLarge(String),
    /// The request line, a header line, or the header count exceeded
    /// its limit → 431.
    HeadersTooLarge(String),
}

/// Read one `\n`-terminated line, refusing lines longer than `max`.
/// Only request-line/header reads come through here, so overflow is a
/// 431, not a 413.
fn read_line_limited<R: BufRead>(r: &mut R, max: u64) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    r.take(max)
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::BadRequest(format!("read failed: {e}")))?;
    if buf.is_empty() {
        return Err(HttpError::BadRequest("connection closed".into()));
    }
    if !buf.ends_with(b"\n") {
        return Err(HttpError::HeadersTooLarge(format!(
            "line exceeds {max} bytes or was truncated"
        )));
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadRequest("line is not UTF-8".into()))
}

/// Parse one HTTP/1.1 request from a buffered stream, enforcing the
/// size limits above.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let line = read_line_limited(r, MAX_REQUEST_LINE)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("request line has no path".into()))?;
    if parts.next().is_none() {
        return Err(HttpError::BadRequest("request line has no version".into()));
    }
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length = 0usize;
    for n in 0..=MAX_HEADERS {
        let header = read_line_limited(r, MAX_HEADER_LINE)?;
        if header.is_empty() {
            break;
        }
        if n == MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::BadRequest("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds limit {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|_| HttpError::BadRequest("body shorter than Content-Length".into()))?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialise a JSON response with status line, length and close header.
pub fn write_response<W: Write>(w: &mut W, status: u16, body: &Json) -> std::io::Result<()> {
    let payload = body.to_compact();
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
        reason(status),
        payload.len()
    )?;
    w.flush()
}

/// Serialise a plain-text response — used by `GET /metrics`, which
/// speaks the Prometheus text exposition format, not JSON.
pub fn write_text_response<W: Write>(w: &mut W, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: text/plain; version=0.0.4\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        reason(status),
        body.len()
    )?;
    w.flush()
}

/// The `/metrics` payload: process-global series (pool dispatches,
/// trainer totals) followed by this engine's `serve.*` series. Both
/// registries render sorted, so the concatenation is deterministic.
pub fn metrics_text(engine: &QueryEngine) -> String {
    let mut out = eras_obs::metrics::global().render_text();
    out.push_str(engine.metrics().registry().render_text().as_str());
    out
}

fn err_json(message: &str) -> Json {
    Json::obj().set("error", message)
}

fn error_response(e: &ServeError) -> (u16, Json) {
    let status = match e {
        ServeError::UnknownEntity(_) | ServeError::UnknownRelation(_) => 404,
        ServeError::BadQuery(_) => 400,
        ServeError::Snapshot(_) => 500,
    };
    (status, err_json(&e.to_string()))
}

/// Decode one query object from the wire format.
fn parse_query(engine: &QueryEngine, j: &Json) -> Result<Query, ServeError> {
    let head = j.get("head").and_then(Json::as_str);
    let tail = j.get("tail").and_then(Json::as_str);
    let rel_name = j
        .get("relation")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadQuery("missing \"relation\"".into()))?;
    let (dir, anchor_name) = match (head, tail) {
        (Some(h), None) => (Direction::Tail, h),
        (None, Some(t)) => (Direction::Head, t),
        (Some(_), Some(_)) => {
            return Err(ServeError::BadQuery(
                "give either \"head\" or \"tail\", not both".into(),
            ))
        }
        (None, None) => {
            return Err(ServeError::BadQuery(
                "missing \"head\" (tail prediction) or \"tail\" (head prediction)".into(),
            ))
        }
    };
    let k = match j.get("k") {
        None => 10,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| ServeError::BadQuery("\"k\" must be a non-negative integer".into()))?,
    };
    let filtered = match j.get("filtered") {
        None => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::BadQuery("\"filtered\" must be a boolean".into()))?,
    };
    Ok(Query {
        dir,
        anchor: engine.resolve_entity(anchor_name)?,
        rel: engine.resolve_relation(rel_name)?,
        k,
        filtered,
    })
}

/// Render an answer in the wire format (ranks are 1-based).
pub fn render_answer(engine: &QueryEngine, a: &Answer) -> Json {
    let snap = engine.snapshot();
    let results: Vec<Json> = a
        .ranked
        .iter()
        .enumerate()
        .map(|(i, r)| {
            Json::obj()
                .set("rank", i + 1)
                .set("id", r.id)
                .set("entity", snap.entities.name(r.id))
                .set("score", r.score)
        })
        .collect();
    Json::obj()
        .set("model", snap.name.as_str())
        .set("direction", a.query.dir.as_str())
        .set("anchor", snap.entities.name(a.query.anchor))
        .set("relation", snap.relations.name(a.query.rel))
        .set("k", a.query.k)
        .set("filtered", a.query.filtered)
        .set("cached", a.cached)
        .set("latency_us", a.latency_us)
        .set("results", results)
}

fn handle_query(engine: &QueryEngine, body: &[u8]) -> (u16, Json) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, err_json("body is not UTF-8")),
    };
    let json = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => return (400, err_json(&format!("invalid JSON: {e}"))),
    };
    if let Some(arr) = json.get("queries").and_then(Json::as_arr) {
        let mut queries = Vec::with_capacity(arr.len());
        for q in arr {
            match parse_query(engine, q) {
                Ok(q) => queries.push(q),
                Err(e) => return error_response(&e),
            }
        }
        match engine.answer_batch(&queries) {
            Ok(answers) => {
                let rendered: Vec<Json> =
                    answers.iter().map(|a| render_answer(engine, a)).collect();
                (200, Json::obj().set("answers", rendered))
            }
            Err(e) => error_response(&e),
        }
    } else {
        match parse_query(engine, &json).and_then(|q| engine.answer(q)) {
            Ok(a) => (200, render_answer(engine, &a)),
            Err(e) => error_response(&e),
        }
    }
}

/// Route a parsed request to a `(status, body)` pair. Pure with respect
/// to the connection, which keeps it unit-testable without sockets.
pub fn route(engine: &QueryEngine, req: &Request) -> (u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => (
            200,
            Json::obj()
                .set("status", "ok")
                .set("model", engine.snapshot().name.as_str()),
        ),
        ("GET", "/stats") => (200, engine.stats()),
        ("POST", "/query") => handle_query(engine, &req.body),
        // `GET /metrics` is answered in `handle_connection` (it is
        // plain text, not JSON); only the wrong-method case lands here.
        (_, "/health") | (_, "/stats") | (_, "/query") | (_, "/metrics") => {
            (405, err_json("method not allowed for this endpoint"))
        }
        _ => (404, err_json("no such endpoint")),
    }
}

fn handle_connection(stream: TcpStream, engine: &QueryEngine, io_timeout: Duration) {
    // Injected latency: stall before touching the socket, as a slow
    // disk or scheduler hiccup would.
    if let Some(faults::Fault::Delay { millis }) = faults::check(faults::Site::ServeLatency) {
        thread::sleep(Duration::from_millis(millis as u64));
    }
    // Injected drop: close the connection without a byte of response.
    // The client must see a clean EOF, never a torn response.
    if faults::check(faults::Site::ServeDrop).is_some() {
        return;
    }
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let _span = eras_obs::span!("serve.request");
    let parsed = {
        let _parse = eras_obs::span!("serve.parse");
        read_request(&mut reader)
    };
    if parsed.is_err() {
        // Unparseable request line/headers/body — covers malformed
        // clients and sockets that hit the read timeout mid-request.
        eras_obs::metrics::global()
            .counter("serve.read_errors")
            .inc();
    }
    let (status, body) = match parsed {
        Ok(req) => {
            if req.method == "GET" && req.path == "/metrics" {
                engine.metrics().record_http(200);
                let text = metrics_text(engine);
                let mut writer = BufWriter::new(stream);
                let _write = eras_obs::span!("serve.write");
                let _ = write_text_response(&mut writer, 200, &text);
                return;
            }
            route(engine, &req)
        }
        Err(HttpError::BadRequest(m)) => (400, err_json(&m)),
        Err(HttpError::TooLarge(m)) => (413, err_json(&m)),
        Err(HttpError::HeadersTooLarge(m)) => (431, err_json(&m)),
    };
    engine.metrics().record_http(status);
    let mut writer = BufWriter::new(stream);
    {
        let _write = eras_obs::span!("serve.write", status = status as u64);
        let _ = write_response(&mut writer, status, &body);
    }
    if status >= 400 {
        // Lingering close: an error response usually leaves unread
        // request bytes in the kernel buffer, and closing with pending
        // input sends RST, destroying the in-flight response. Signal
        // end-of-response, then drain (bounded by the read timeout)
        // until the client finishes or hangs up.
        let _ = writer.flush();
        let _ = writer.get_ref().shutdown(Shutdown::Write);
        let mut sink = [0u8; 1024];
        while matches!(reader.get_mut().read(&mut sink), Ok(n) if n > 0) {}
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    engine: &QueryEngine,
    depth: &AtomicUsize,
    io_timeout: Duration,
) {
    let queue_depth = eras_obs::metrics::global().gauge("serve.queue_depth");
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(|poison| poison.into_inner());
            guard.recv()
        };
        match next {
            Ok(stream) => {
                let before = depth.fetch_sub(1, Ordering::AcqRel);
                queue_depth.set(before.saturating_sub(1) as i64);
                handle_connection(stream, engine, io_timeout);
            }
            // The acceptor dropped the sender: orderly shutdown.
            Err(_) => break,
        }
    }
}

/// Tuning knobs for [`serve_with_options`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections allowed to sit in the accept queue before new
    /// arrivals are shed with a 503 + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-connection read and write timeout.
    pub io_timeout: Duration,
    /// When this flag turns true (and the listener is poked with one
    /// more connection, see [`request_shutdown`]), the acceptor stops
    /// taking connections, drains everything already queued, and joins
    /// its workers before returning.
    pub shutdown: Option<Arc<AtomicBool>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_capacity: 64,
            io_timeout: IO_TIMEOUT,
            shutdown: None,
        }
    }
}

/// Ask a [`serve_with_options`] loop to drain and exit: set its
/// shutdown flag, then open (and immediately drop) one connection so a
/// blocked `accept` wakes up and observes the flag.
pub fn request_shutdown(flag: &AtomicBool, addr: std::net::SocketAddr) {
    flag.store(true, Ordering::Release);
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// Accept connections forever, dispatching them to a fixed pool of
/// `workers` threads. Returns only if the listener fails fatally (the
/// accept loop itself skips transient errors).
pub fn serve(
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    workers: usize,
) -> std::io::Result<()> {
    serve_with_options(
        listener,
        engine,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
}

/// [`serve`] with explicit limits, timeouts and a shutdown flag.
///
/// Overload behaviour: the acceptor tracks how many accepted
/// connections are queued but not yet claimed by a worker; past
/// `queue_capacity` it answers new connections directly with
/// `503 Service Unavailable` + `Retry-After` instead of queueing them,
/// so the queue (and client tail latency) stays bounded.
///
/// Shutdown behaviour: once `shutdown` reads true the acceptor stops
/// accepting, drops the channel sender, and joins the workers — which
/// first finish every connection already accepted (graceful drain).
pub fn serve_with_options(
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    opts: ServeOptions,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let depth = Arc::new(AtomicUsize::new(0));
    let shed_total = eras_obs::metrics::global().counter("serve.shed_total");
    let queue_depth = eras_obs::metrics::global().gauge("serve.queue_depth");
    let mut handles = Vec::new();
    for _ in 0..opts.workers.max(1) {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        let depth = Arc::clone(&depth);
        let io_timeout = opts.io_timeout;
        // Blocking-IO worker threads parked on an mpsc channel, not
        // CPU-parallel work for the shared pool.
        // audit:allow(W405): blocking-IO workers, not CPU work
        handles.push(thread::spawn(move || {
            worker_loop(&rx, &engine, &depth, io_timeout)
        }));
    }
    for stream in listener.incoming() {
        if opts
            .shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
        {
            break;
        }
        match stream {
            Ok(s) => {
                if depth.load(Ordering::Acquire) >= opts.queue_capacity.max(1) {
                    engine.metrics().record_http(503);
                    shed_total.inc();
                    eras_obs::event!("serve.shed", depth = depth.load(Ordering::Acquire));
                    shed(s, opts.io_timeout);
                    continue;
                }
                let before = depth.fetch_add(1, Ordering::AcqRel);
                queue_depth.set((before + 1) as i64);
                if tx.send(s).is_err() {
                    break;
                }
            }
            Err(_) => continue,
        }
    }
    // Graceful drain: closing the sender lets each worker finish its
    // current and queued connections, then exit on the channel error.
    drop(tx);
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Refuse one connection with `503` + `Retry-After: 1`, cheaply, on the
/// acceptor thread.
fn shed(stream: TcpStream, io_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut w = BufWriter::new(stream);
    let payload = err_json("server overloaded; retry shortly").to_compact();
    let _ = write!(
        w,
        "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\ncontent-length: {}\r\nretry-after: 1\r\nconnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::vocab::Vocab;
    use eras_data::Triple;
    use eras_linalg::Rng;
    use eras_sf::zoo;
    use eras_train::io::Snapshot;
    use eras_train::{BlockModel, Embeddings};
    use std::io::Cursor;

    fn engine() -> QueryEngine {
        let mut rng = Rng::seed_from_u64(5);
        let ne = 12;
        let nr = 2;
        let mut entities = Vocab::new();
        for i in 0..ne {
            entities.intern(&format!("e{i}"));
        }
        let mut relations = Vocab::new();
        for r in 0..nr {
            relations.intern(&format!("r{r}"));
        }
        let model = BlockModel::universal(zoo::complex(), nr);
        let emb = Embeddings::init(ne, nr, 8, &mut rng);
        let known = vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)];
        let snap = Snapshot::new("http-test", entities, relations, &model, emb, known);
        QueryEngine::new(snap, 16).expect("valid snapshot")
    }

    fn req(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let r = read_request(&mut Cursor::new(&raw[..])).expect("parse ok");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/query");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn strips_query_strings_from_the_path() {
        let raw = b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n";
        let r = read_request(&mut Cursor::new(&raw[..])).expect("parse ok");
        assert_eq!(r.path, "/stats");
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let raw = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        match read_request(&mut Cursor::new(raw.as_bytes())) {
            Err(HttpError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_request_line_with_431() {
        let raw = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE as usize)
        );
        match read_request(&mut Cursor::new(raw.as_bytes())) {
            Err(HttpError::HeadersTooLarge(_)) => {}
            other => panic!("expected HeadersTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_header_line_with_431() {
        let raw = format!(
            "GET /health HTTP/1.1\r\nx-big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE as usize)
        );
        match read_request(&mut Cursor::new(raw.as_bytes())) {
            Err(HttpError::HeadersTooLarge(_)) => {}
            other => panic!("expected HeadersTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_too_many_headers_with_431() {
        let mut raw = String::from("GET /health HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        match read_request(&mut Cursor::new(raw.as_bytes())) {
            Err(HttpError::HeadersTooLarge(m)) => assert!(m.contains("headers"), "{m}"),
            other => panic!("expected HeadersTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn header_limit_errors_map_to_431_responses() {
        let eng = engine();
        // Drive the full connection path over a socket so the status
        // mapping (not just the parser) is covered.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = Arc::clone(&Arc::new(eng));
        let srv = Arc::clone(&server);
        thread::spawn(move || serve(listener, srv, 1));
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET /{} HTTP/1.1\r\n\r\n",
            "x".repeat(MAX_REQUEST_LINE as usize)
        )
        .expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read");
        assert!(response.starts_with("HTTP/1.1 431 "), "{response}");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for raw in ["GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "\r\n\r\n"] {
            match read_request(&mut Cursor::new(raw.as_bytes())) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{raw:?}: expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_bodies_are_bad_requests() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        match read_request(&mut Cursor::new(&raw[..])) {
            Err(HttpError::BadRequest(_)) => {}
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn health_and_stats_routes() {
        let eng = engine();
        let (s, body) = route(&eng, &req("GET", "/health", ""));
        assert_eq!(s, 200);
        assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
        let (s, body) = route(&eng, &req("GET", "/stats", ""));
        assert_eq!(s, 200);
        assert!(body.get("queries").is_some());
    }

    #[test]
    fn unknown_paths_and_methods() {
        let eng = engine();
        assert_eq!(route(&eng, &req("GET", "/nope", "")).0, 404);
        assert_eq!(route(&eng, &req("DELETE", "/query", "")).0, 405);
        assert_eq!(route(&eng, &req("POST", "/health", "")).0, 405);
        assert_eq!(route(&eng, &req("POST", "/metrics", "")).0, 405);
    }

    #[test]
    fn metrics_text_concatenates_global_and_engine_series() {
        let eng = engine();
        eng.metrics().record_query(120, false);
        let text = metrics_text(&eng);
        assert!(text.contains("serve_queries 1"), "{text}");
        assert!(text.contains("# TYPE serve_latency_us histogram"), "{text}");
    }

    #[test]
    fn metrics_endpoint_speaks_text_exposition() {
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = Arc::clone(&eng);
        thread::spawn(move || serve(listener, server, 1));

        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("content-type: text/plain"), "{response}");
        assert!(response.contains("serve_http_requests"), "{response}");
    }

    #[test]
    fn query_roundtrip_over_the_router() {
        let eng = engine();
        let (s, body) = route(
            &eng,
            &req("POST", "/query", r#"{"head":"e0","relation":"r0","k":3}"#),
        );
        assert_eq!(s, 200, "{body:?}");
        let results = body.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].get("rank").and_then(Json::as_usize), Some(1));
        assert_eq!(body.get("direction").and_then(Json::as_str), Some("tail"));
        assert_eq!(body.get("filtered").and_then(Json::as_bool), Some(true));
        // Filtered by default: e1 is a known tail of (e0, r0).
        assert!(results
            .iter()
            .all(|r| r.get("entity").and_then(Json::as_str) != Some("e1")));
    }

    #[test]
    fn batch_queries_over_the_router() {
        let eng = engine();
        let body = r#"{"queries":[
            {"head":"e0","relation":"r0","k":2},
            {"tail":"e2","relation":"r1","k":2,"filtered":false}
        ]}"#;
        let (s, out) = route(&eng, &req("POST", "/query", body));
        assert_eq!(s, 200, "{out:?}");
        let answers = out.get("answers").and_then(Json::as_arr).expect("answers");
        assert_eq!(answers.len(), 2);
        assert_eq!(
            answers[1].get("direction").and_then(Json::as_str),
            Some("head")
        );
    }

    #[test]
    fn error_statuses_are_mapped() {
        let eng = engine();
        // Unknown entity → 404.
        let (s, _) = route(
            &eng,
            &req("POST", "/query", r#"{"head":"nope","relation":"r0"}"#),
        );
        assert_eq!(s, 404);
        // Bad JSON → 400.
        assert_eq!(route(&eng, &req("POST", "/query", "{oops")).0, 400);
        // Both head and tail → 400.
        let (s, _) = route(
            &eng,
            &req(
                "POST",
                "/query",
                r#"{"head":"e0","tail":"e1","relation":"r0"}"#,
            ),
        );
        assert_eq!(s, 400);
        // k = 0 → 400 from the engine.
        let (s, _) = route(
            &eng,
            &req("POST", "/query", r#"{"head":"e0","relation":"r0","k":0}"#),
        );
        assert_eq!(s, 400);
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, &Json::obj().set("a", 1)).expect("write ok");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
        let len = "{\"a\":1}".len();
        assert!(text.contains(&format!("content-length: {len}\r\n")));
    }

    /// With a single stalled worker and a queue of one, the next
    /// connection must be shed with `503` + `Retry-After`, not queued
    /// without bound.
    #[test]
    fn overload_sheds_with_503_and_retry_after() {
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let flag = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions {
            workers: 1,
            queue_capacity: 1,
            io_timeout: Duration::from_secs(2),
            shutdown: Some(Arc::clone(&flag)),
        };
        let srv = Arc::clone(&eng);
        let server = thread::spawn(move || serve_with_options(listener, srv, opts));

        // `a` occupies the worker: it sends nothing, so once claimed the
        // worker blocks in read for the full `io_timeout`. The sleep lets
        // the worker claim it; `b` then fills the single queue slot and
        // `c` — processed after `b` by the sequential accept loop — must
        // find the queue at capacity and be shed.
        let a = TcpStream::connect(addr).expect("connect a");
        thread::sleep(Duration::from_millis(200));
        let b = TcpStream::connect(addr).expect("connect b");
        let c = TcpStream::connect(addr).expect("connect c");
        let mut response = String::new();
        BufReader::new(c)
            .read_to_string(&mut response)
            .expect("read shed response");
        assert!(response.starts_with("HTTP/1.1 503 "), "{response}");
        assert!(response.contains("retry-after: 1\r\n"), "{response}");

        drop(a);
        drop(b);
        request_shutdown(&flag, addr);
        server
            .join()
            .expect("server thread")
            .expect("serve returns Ok");
    }

    /// Setting the shutdown flag and poking the listener makes the
    /// accept loop drain its workers and return.
    #[test]
    fn shutdown_drains_and_returns() {
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let flag = Arc::new(AtomicBool::new(false));
        let opts = ServeOptions {
            workers: 2,
            shutdown: Some(Arc::clone(&flag)),
            ..ServeOptions::default()
        };
        let srv = Arc::clone(&eng);
        let server = thread::spawn(move || serve_with_options(listener, srv, opts));

        // A request served before shutdown completes normally.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /health HTTP/1.1\r\n\r\n").expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");

        request_shutdown(&flag, addr);
        server
            .join()
            .expect("server thread")
            .expect("serve returns Ok after drain");
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let eng = Arc::new(engine());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = Arc::clone(&eng);
        thread::spawn(move || serve(listener, server, 2));

        let payload = r#"{"head":"e3","relation":"r1","k":5}"#;
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_to_string(&mut response)
            .expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        let json = Json::parse(body).expect("json body");
        let results = json.get("results").and_then(Json::as_arr).expect("results");
        assert_eq!(results.len(), 5);
        assert_eq!(eng.metrics().queries(), 1);
    }
}
