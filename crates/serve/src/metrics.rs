//! Serving counters surfaced at `/stats` and `/metrics`.
//!
//! `ServeMetrics` is a thin facade over an [`eras_obs::metrics::Registry`]
//! instance: the counters live in the registry (named `serve.*`), the
//! handles cached here keep the hot path lock-free, and the same
//! registry backs both the JSON rendering for `/stats` and the
//! Prometheus text exposition for `GET /metrics`. One registry per
//! engine, so concurrently running engines (tests, multi-model
//! processes) observe their own traffic in isolation; process-wide
//! series (pool, trainer) live in [`eras_obs::metrics::global`] and are
//! concatenated into `/metrics` by the HTTP front end.

use eras_data::Json;
use eras_obs::metrics::{Counter, Histogram, Registry, LATENCY_US_BUCKETS};

/// Per-engine serving metrics. All counters are relaxed atomics — they
/// are monotone tallies, not synchronisation points.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    queries: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    latency_us: Histogram,
    http_requests: Counter,
    http_errors: Counter,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh zeroed counters in a fresh registry.
    pub fn new() -> Self {
        let registry = Registry::new();
        ServeMetrics {
            queries: registry.counter("serve.queries"),
            cache_hits: registry.counter("serve.cache_hits"),
            cache_misses: registry.counter("serve.cache_misses"),
            latency_us: registry.histogram("serve.latency_us", LATENCY_US_BUCKETS),
            http_requests: registry.counter("serve.http_requests"),
            http_errors: registry.counter("serve.http_errors"),
            registry,
        }
    }

    /// The backing registry (for text exposition at `/metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record one answered query with its end-to-end latency.
    pub fn record_query(&self, latency_us: u64, cache_hit: bool) {
        self.queries.inc();
        if cache_hit {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
        self.latency_us.record_value(latency_us);
    }

    /// Record one HTTP request and whether it produced an error status.
    pub fn record_http(&self, status: u16) {
        self.http_requests.inc();
        if status >= 400 {
            self.http_errors.inc();
        }
    }

    /// Total queries answered (cache hits included).
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Result-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// JSON rendering for `/stats`.
    pub fn to_json(&self) -> Json {
        let queries = self.queries.get();
        let hits = self.cache_hits.get();
        let total_us = self.latency_us.sum();
        let mean_us = if queries > 0 {
            total_us as f64 / queries as f64
        } else {
            0.0
        };
        let hit_rate = if queries > 0 {
            hits as f64 / queries as f64
        } else {
            0.0
        };
        Json::obj()
            .set("queries", queries)
            .set("cache_hits", hits)
            .set("cache_misses", self.cache_misses.get())
            .set("cache_hit_rate", hit_rate)
            .set("latency_us_total", total_us)
            .set("latency_us_mean", mean_us)
            .set("latency_us_max", self.latency_us.max())
            .set("http_requests", self.http_requests.get())
            .set("http_errors", self.http_errors.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_query(100, false);
        m.record_query(300, true);
        m.record_http(200);
        m.record_http(404);
        assert_eq!(m.queries(), 2);
        assert_eq!(m.cache_hits(), 1);
        let j = m.to_json();
        assert_eq!(j.get("queries").and_then(Json::as_usize), Some(2));
        assert_eq!(j.get("cache_misses").and_then(Json::as_usize), Some(1));
        assert_eq!(j.get("latency_us_max").and_then(Json::as_usize), Some(300));
        assert_eq!(j.get("latency_us_mean").and_then(Json::as_f64), Some(200.0));
        assert_eq!(j.get("http_errors").and_then(Json::as_usize), Some(1));
        assert_eq!(j.get("cache_hit_rate").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn zero_queries_report_zero_means() {
        let j = ServeMetrics::new().to_json();
        assert_eq!(j.get("latency_us_mean").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("cache_hit_rate").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn engines_do_not_share_registries() {
        let a = ServeMetrics::new();
        let b = ServeMetrics::new();
        a.record_query(10, false);
        assert_eq!(a.queries(), 1);
        assert_eq!(b.queries(), 0);
    }

    #[test]
    fn text_exposition_carries_the_serve_series() {
        let m = ServeMetrics::new();
        m.record_query(120, true);
        m.record_http(200);
        let text = m.registry().render_text();
        assert!(text.contains("serve_queries 1"), "{text}");
        assert!(text.contains("# TYPE serve_latency_us histogram"), "{text}");
        assert!(text.contains("serve_latency_us_count 1"), "{text}");
        assert!(text.contains("serve_http_requests 1"), "{text}");
    }
}
