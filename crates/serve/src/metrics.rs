//! Lock-free serving counters surfaced at the `/stats` endpoint.

use eras_data::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process serving metrics. All counters are relaxed atomics — they
/// are monotone tallies, not synchronisation points.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    latency_us_total: AtomicU64,
    latency_us_max: AtomicU64,
    http_requests: AtomicU64,
    http_errors: AtomicU64,
}

impl ServeMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Record one answered query with its end-to-end latency.
    pub fn record_query(&self, latency_us: u64, cache_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_us_total
            .fetch_add(latency_us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(latency_us, Ordering::Relaxed);
    }

    /// Record one HTTP request and whether it produced an error status.
    pub fn record_http(&self, status: u16) {
        self.http_requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.http_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total queries answered (cache hits included).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Result-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// JSON rendering for `/stats`.
    pub fn to_json(&self) -> Json {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let total_us = self.latency_us_total.load(Ordering::Relaxed);
        let mean_us = if queries > 0 {
            total_us as f64 / queries as f64
        } else {
            0.0
        };
        let hit_rate = if queries > 0 {
            hits as f64 / queries as f64
        } else {
            0.0
        };
        Json::obj()
            .set("queries", queries)
            .set("cache_hits", hits)
            .set("cache_misses", self.cache_misses.load(Ordering::Relaxed))
            .set("cache_hit_rate", hit_rate)
            .set("latency_us_total", total_us)
            .set("latency_us_mean", mean_us)
            .set(
                "latency_us_max",
                self.latency_us_max.load(Ordering::Relaxed),
            )
            .set("http_requests", self.http_requests.load(Ordering::Relaxed))
            .set("http_errors", self.http_errors.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_query(100, false);
        m.record_query(300, true);
        m.record_http(200);
        m.record_http(404);
        assert_eq!(m.queries(), 2);
        assert_eq!(m.cache_hits(), 1);
        let j = m.to_json();
        assert_eq!(j.get("queries").and_then(Json::as_usize), Some(2));
        assert_eq!(j.get("cache_misses").and_then(Json::as_usize), Some(1));
        assert_eq!(j.get("latency_us_max").and_then(Json::as_usize), Some(300));
        assert_eq!(j.get("latency_us_mean").and_then(Json::as_f64), Some(200.0));
        assert_eq!(j.get("http_errors").and_then(Json::as_usize), Some(1));
        assert_eq!(j.get("cache_hit_rate").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn zero_queries_report_zero_means() {
        let j = ServeMetrics::new().to_json();
        assert_eq!(j.get("latency_us_mean").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("cache_hit_rate").and_then(Json::as_f64), Some(0.0));
    }
}
