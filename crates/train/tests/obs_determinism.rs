//! Observability must observe, never participate: training outcomes
//! are bit-identical whether or not a tracer, echo, or profiler is
//! active, at every pool size — and in builds without `obs-hook` the
//! hooks compile out entirely.
//!
//! CI runs this file twice: once with `--features obs-hook` (the
//! traced-vs-untraced comparisons) and once without (the inert
//! checks). The two halves are feature-gated so each build exercises
//! its own contract.

use eras_data::{FilterIndex, Preset};
use eras_linalg::pool::ThreadPool;
use eras_sf::zoo;
use eras_train::trainer::{train_standalone_on, Execution, TrainConfig};
use eras_train::{BlockModel, LossMode};

fn fast_cfg() -> TrainConfig {
    TrainConfig {
        dim: 16,
        max_epochs: 4,
        eval_every: 2,
        patience: 2,
        batch_size: 128,
        n3: 1e-3,
        loss: LossMode::Sampled { negatives: 8 },
        execution: Execution::DataParallel,
        ..TrainConfig::default()
    }
}

#[cfg(feature = "obs-hook")]
mod traced {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tracer installation across tests in this binary: the
    /// trace sink and echo flag are process-global.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    /// A shared in-memory sink for asserting on emitted JSONL.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn tracing_and_profiling_never_change_training() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dataset = Preset::Tiny.build(11);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let cfg = fast_cfg();

        // Reference run: hooks compiled in, but no tracer installed.
        let pool = ThreadPool::new(1);
        let reference = train_standalone_on(&model, &dataset, &filter, &cfg, &pool);

        for threads in [1usize, 4] {
            // Full observability plane active: JSONL tracer + sampling
            // profiler, across single- and multi-threaded pools.
            let sink = SharedBuf::default();
            let traced = {
                let _guard = eras_obs::trace::install_writer(Box::new(sink.clone()));
                let profiler =
                    eras_obs::profile::start_sampler(std::time::Duration::from_millis(2));
                let pool = ThreadPool::new(threads);
                let outcome = train_standalone_on(&model, &dataset, &filter, &cfg, &pool);
                let _ = profiler.stop();
                outcome
            };
            assert_eq!(
                reference.embeddings.entity.as_slice(),
                traced.embeddings.entity.as_slice(),
                "entity embeddings drifted with tracing on ({threads} threads)"
            );
            assert_eq!(
                reference.embeddings.relation.as_slice(),
                traced.embeddings.relation.as_slice(),
                "relation embeddings drifted with tracing on ({threads} threads)"
            );
            assert_eq!(reference.final_loss, traced.final_loss);
            assert_eq!(reference.test.mrr, traced.test.mrr);
            assert_eq!(reference.best_valid.mrr, traced.best_valid.mrr);
            assert_eq!(reference.epochs_run, traced.epochs_run);

            // And the run actually produced a well-formed trace.
            let text = String::from_utf8(sink.0.lock().unwrap().clone()).expect("utf-8 trace");
            let records = eras_obs::summary::parse_trace(&text).expect("well-formed JSONL");
            assert!(
                records
                    .iter()
                    .any(|r| r.kind == "span" && r.name == "train.epoch"),
                "expected train.epoch spans in the trace"
            );
            assert!(
                records
                    .iter()
                    .any(|r| r.kind == "event" && r.name == "train.progress"),
                "expected train.progress events in the trace"
            );
        }
    }

    #[test]
    fn uninstalled_tracer_emits_nothing_and_costs_no_records() {
        let _serial = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // With hooks compiled in but no sink installed, spans are
        // skipped at the `enabled()` branch: nothing accumulates.
        assert!(!eras_obs::trace::enabled());
        let _span = eras_obs::span!("test.noop", k = 1u64);
        eras_obs::event!("test.noop_event");
        assert!(!eras_obs::trace::enabled());
    }
}

#[cfg(not(feature = "obs-hook"))]
mod inert {
    use super::*;

    #[test]
    fn hooks_compile_out_without_the_feature() {
        // The macros expand to constant-false branches; installs are
        // no-ops returning inert guards.
        assert!(!eras_obs::trace::enabled());
        let _writer = eras_obs::trace::install_writer(Box::new(std::io::sink()));
        let _echo = eras_obs::trace::install_echo();
        assert!(
            !eras_obs::trace::enabled(),
            "installs must be inert without obs-hook"
        );
        let _span = eras_obs::span!("test.noop", k = 1u64);
        eras_obs::event!("test.noop_event");
    }

    #[test]
    fn training_runs_clean_with_inert_hooks() {
        // The instrumented trainer works identically when every hook
        // is compiled out; metrics (always on) still accumulate.
        let dataset = Preset::Tiny.build(11);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let pool = ThreadPool::new(2);
        let epochs_before = eras_obs::metrics::global().counter("train.epochs").get();
        let outcome = train_standalone_on(&model, &dataset, &filter, &fast_cfg(), &pool);
        assert!(outcome.final_loss.is_finite());
        let epochs_after = eras_obs::metrics::global().counter("train.epochs").get();
        assert!(
            epochs_after >= epochs_before + outcome.epochs_run as u64,
            "the epoch counter must tick even in inert builds"
        );
    }
}
