//! Property tests for the snapshot v2 format: random models survive a
//! save/load cycle with *byte-identical* scoring behaviour, and v1 files
//! keep loading as embeddings-only.

use eras_data::vocab::Vocab;
use eras_data::Triple;
use eras_linalg::Rng;
use eras_sf::canonical::canonicalize;
use eras_sf::BlockSf;
use eras_train::eval::ScoreModel;
use eras_train::io;
use eras_train::Embeddings;

/// A random snapshot: fresh vocabularies, `n_groups` random canonical
/// structures over `m` blocks, a random assignment, random embeddings
/// and a random known-triple set.
fn random_snapshot(seed: u64) -> io::Snapshot {
    let mut rng = Rng::seed_from_u64(seed);
    let m = 2 + rng.next_below(3); // M ∈ {2, 3, 4}
    let n_groups = 1 + rng.next_below(3);
    let ne = 8 + rng.next_below(24);
    let nr = 2 + rng.next_below(5);
    let dim = m * (1 + rng.next_below(4));

    let mut entities = Vocab::new();
    for i in 0..ne {
        entities.intern(&format!("entity/{seed}/{i}"));
    }
    let mut relations = Vocab::new();
    for r in 0..nr {
        relations.intern(&format!("relation-{r}"));
    }

    let sfs: Vec<BlockSf> = (0..n_groups)
        .map(|_| {
            // Random non-degenerate structure, reduced to its canonical
            // representative under the search space's symmetry group.
            loop {
                let budget = m + rng.next_below(m * m - m + 1);
                let sf = BlockSf::random(m, budget, &mut rng);
                if !sf.is_degenerate() {
                    break canonicalize(&sf);
                }
            }
        })
        .collect();
    let assignment: Vec<u8> = (0..nr).map(|_| rng.next_below(n_groups) as u8).collect();
    let embeddings = Embeddings::init(ne, nr, dim, &mut rng);
    let known: Vec<Triple> = (0..40)
        .map(|_| {
            Triple::new(
                rng.next_below(ne) as u32,
                rng.next_below(nr) as u32,
                rng.next_below(ne) as u32,
            )
        })
        .collect();

    io::Snapshot {
        name: format!("prop-{seed}"),
        entities,
        relations,
        sfs,
        assignment,
        embeddings,
        known,
    }
}

/// Save → load → the reloaded model scores 100 sampled triples with
/// bit-for-bit identical results (same embedding bytes, same structure,
/// same kernel ⇒ same f32 operations).
#[test]
fn snapshot_roundtrip_scores_are_byte_identical() {
    for seed in 0..8u64 {
        let snap = random_snapshot(seed);
        let path = std::env::temp_dir().join(format!(
            "eras_snapshot_prop_{seed}_{}.eras",
            std::process::id()
        ));
        io::save_snapshot(&path, &snap).unwrap();
        let back = io::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.sfs, snap.sfs, "seed {seed}");
        assert_eq!(back.assignment, snap.assignment, "seed {seed}");
        assert_eq!(
            back.embeddings.entity.as_slice(),
            snap.embeddings.entity.as_slice(),
            "seed {seed}"
        );

        let model = snap.block_model();
        let model_back = back.block_model();
        let ne = snap.entities.len() as u32;
        let nr = snap.relations.len() as u32;
        let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD);
        for _ in 0..100 {
            let t = Triple::new(
                rng.next_below(ne as usize) as u32,
                rng.next_below(nr as usize) as u32,
                rng.next_below(ne as usize) as u32,
            );
            let a = model.score_triple(&snap.embeddings, t);
            let b = model_back.score_triple(&back.embeddings, t);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed}, triple {t:?}: {a} vs {b}"
            );
        }
    }
}

/// Forward compatibility: files written in the v1 embeddings-only format
/// still load as embeddings via the v1 loader, and the v2 loader points
/// at it instead of misparsing.
#[test]
fn v1_files_still_load_as_embeddings_only() {
    let mut rng = Rng::seed_from_u64(11);
    let emb = Embeddings::init(6, 2, 8, &mut rng);
    let path = std::env::temp_dir().join(format!("eras_v1_compat_{}.bin", std::process::id()));
    io::save(&path, &emb).unwrap();

    let back = io::load(&path).unwrap();
    assert_eq!(back.entity.as_slice(), emb.entity.as_slice());
    assert_eq!(back.relation.as_slice(), emb.relation.as_slice());

    match io::load_snapshot(&path) {
        Err(io::IoError::Format(m)) => assert!(m.contains("version 1"), "{m}"),
        other => panic!("v2 loader must reject v1 files cleanly, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

/// Saving over an existing snapshot never exposes a torn intermediate:
/// the destination always parses, before and after.
#[test]
fn overwrite_is_atomic_at_the_destination() {
    let a = random_snapshot(100);
    let b = random_snapshot(101);
    let path = std::env::temp_dir().join(format!("eras_snap_over_{}.eras", std::process::id()));
    io::save_snapshot(&path, &a).unwrap();
    assert_eq!(io::load_snapshot(&path).unwrap().name, a.name);
    io::save_snapshot(&path, &b).unwrap();
    assert_eq!(io::load_snapshot(&path).unwrap().name, b.name);
    std::fs::remove_file(&path).ok();
}
