//! Table-driven corruption corpus: every committed file under
//! `tests/data/` is a damaged (truncated or bit-flipped) v1 or v2 model
//! file, and every one must load as a clean [`IoError::Format`] — never
//! a panic, never an allocation blow-up, never a leaked `Io` error.
//!
//! The corpus is generated deterministically by the `#[ignore]`d
//! `regenerate_corpus` test below (`cargo test -p eras-train --test
//! corrupt_corpus -- --ignored`) and committed, so the exact bytes that
//! once exposed a bug keep guarding against its return even if the
//! writer changes.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use eras_data::vocab::Vocab;
use eras_data::Triple;
use eras_linalg::Rng;
use eras_sf::zoo;
use eras_train::block::BlockModel;
use eras_train::embeddings::Embeddings;
use eras_train::io::{self, IoError, Snapshot};

fn data_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data")
}

/// The deterministic model both generations of corpus files are carved
/// from. Seeded, so `regenerate_corpus` is reproducible.
fn sample_snapshot() -> Snapshot {
    let mut rng = Rng::seed_from_u64(42);
    let mut entities = Vocab::new();
    let mut relations = Vocab::new();
    for i in 0..11 {
        entities.intern(&format!("entity_{i}"));
    }
    for r in 0..5 {
        relations.intern(&format!("relation_{r}"));
    }
    let model =
        BlockModel::relation_aware(vec![zoo::complex(), zoo::simple()], vec![0, 1, 0, 1, 0]);
    let embeddings = Embeddings::init(11, 5, 8, &mut rng);
    let known = vec![
        Triple::new(0, 0, 1),
        Triple::new(2, 3, 4),
        Triple::new(9, 4, 10),
    ];
    Snapshot::new("corpus", entities, relations, &model, embeddings, known)
}

fn v1_bytes() -> Vec<u8> {
    let mut rng = Rng::seed_from_u64(43);
    let emb = Embeddings::init(6, 3, 8, &mut rng);
    let mut buf = Vec::new();
    io::write_embeddings(&mut buf, &emb).unwrap();
    buf
}

fn v2_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    io::write_snapshot(&mut buf, &sample_snapshot()).unwrap();
    buf
}

/// Every committed corpus file must fail to load with `Format` — from
/// the snapshot loader always, and from the v1 embedding loader too for
/// `v1_*` files. A panic or an `Io` error is a bug.
#[test]
fn every_corpus_file_is_a_clean_format_error() {
    let dir = data_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} missing: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 8,
        "corpus unexpectedly small: {} files",
        entries.len()
    );
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let bytes = std::fs::read(&path).unwrap();

        let snap = panic::catch_unwind(AssertUnwindSafe(|| io::read_snapshot(bytes.as_slice())))
            .unwrap_or_else(|_| panic!("{name}: snapshot loader panicked"));
        match snap {
            Err(IoError::Format(_)) => {}
            Err(IoError::Io(e)) => panic!("{name}: leaked Io error {e}"),
            Ok(_) => panic!("{name}: corrupt file loaded as a valid snapshot"),
        }

        if name.starts_with("v1_") {
            let emb =
                panic::catch_unwind(AssertUnwindSafe(|| io::read_embeddings(bytes.as_slice())))
                    .unwrap_or_else(|_| panic!("{name}: v1 loader panicked"));
            match emb {
                Err(IoError::Format(_)) => {}
                Err(IoError::Io(e)) => panic!("{name}: v1 loader leaked Io error {e}"),
                Ok(_) => panic!("{name}: corrupt v1 file loaded as valid embeddings"),
            }
        }
    }
}

/// The corpus matches what the generator produces from today's writer:
/// guards against the committed files silently going stale.
#[test]
fn corpus_is_in_sync_with_the_generator() {
    for (name, bytes) in corpus() {
        let path = data_dir().join(name);
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{name} missing ({e}); run the regenerate_corpus test"));
        assert_eq!(
            committed, bytes,
            "{name} is stale; rerun `cargo test -p eras-train --test corrupt_corpus -- --ignored`"
        );
    }
}

/// All corpus files, derived deterministically from the sample model.
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let v1 = v1_bytes();
    let v2 = v2_bytes();
    let mut files = Vec::new();

    // v1 damage.
    files.push(("v1_truncated_header.bin", v1[..9].to_vec()));
    files.push(("v1_truncated_body.bin", v1[..v1.len() - 10].to_vec()));
    {
        // Dim field starts at offset 4 + 4 + 16; blow its high byte so
        // the header requests an implausible allocation.
        let mut b = v1.clone();
        b[4 + 4 + 16 + 7] = 0xFF;
        files.push(("v1_bitflip_dim.bin", b));
    }

    // v2 damage.
    files.push(("v2_truncated_header.bin", v2[..6].to_vec()));
    files.push(("v2_truncated_mid.bin", v2[..v2.len() / 2].to_vec()));
    files.push(("v2_truncated_tail.bin", v2[..v2.len() - 4].to_vec()));
    {
        let mut b = v2.clone();
        b[1] ^= 0x20; // magic: "ERAS" -> "ErAS"
        files.push(("v2_bitflip_magic.bin", b));
    }
    {
        let mut b = v2.clone();
        b[4] = 77; // version field
        files.push(("v2_bad_version.bin", b));
    }
    {
        // Name-length field (first field after the version) flipped
        // high: the loader must refuse before allocating.
        let mut b = v2.clone();
        b[8 + 3] = 0xFF;
        files.push(("v2_bitflip_len.bin", b));
    }
    {
        // First op index in the sf section flipped out of range.
        let mut b = v2.clone();
        let sf_header = b
            .windows(2)
            .position(|w| w == [2u8, 4u8])
            .expect("sf header (2 groups, M=4)");
        b[sf_header + 2] = 0xC8;
        files.push(("v2_bitflip_opindex.bin", b));
    }

    files
}

/// Regenerates the committed corpus. Run explicitly after a format
/// change: `cargo test -p eras-train --test corrupt_corpus -- --ignored`
#[test]
#[ignore = "writes into the source tree; run explicitly to regenerate"]
fn regenerate_corpus() {
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in corpus() {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}
