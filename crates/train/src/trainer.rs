//! Stand-alone training loop (the paper's "train to convergence" protocol).
//!
//! AutoSF evaluates candidates by training each one stand-alone; ERAS does
//! the same only for its final derived structure (step 12 of Algorithm 2).
//! [`train_standalone`] packages that protocol: epochs of shuffled
//! minibatches,
//! periodic filtered-MRR validation, and early stopping on a patience
//! window.

use crate::block::{train_minibatch, BlockModel, BlockScratch};
use crate::checkpoint::{config_fingerprint, TrainCheckpoint};
use crate::embeddings::Embeddings;
use crate::eval::{link_prediction_with, LinkPredictionMetrics, RankingMode};
use crate::io::IoError;
use crate::loss::{Corruption, LossMode};
use crate::negative::NegCtx;
use crate::parallel::{train_minibatch_parallel, GradShards};
use eras_data::{Dataset, FilterIndex, Triple};
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::pool::ThreadPool;
use eras_linalg::Rng;
use eras_sf::numeric::NormBounds;
use std::path::PathBuf;

/// How a training run spends the thread pool on each minibatch.
///
/// Either way the run is deterministic given the seed; the two modes
/// differ in *which* deterministic sequence of updates they produce
/// (the data-parallel step applies the optimizer once per batch, the
/// sequential step once per example side), so a given `(seed, mode)`
/// pair is reproducible but the modes are not bit-comparable to each
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// The classic per-example loop of [`train_minibatch`].
    #[default]
    Sequential,
    /// Sharded snapshot gradients on the thread pool with a fixed
    /// reduction tree — see [`crate::parallel`]. Bit-identical for
    /// every pool size.
    DataParallel,
}

/// Hyperparameters of a stand-alone training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Embedding dimension `d` (must be divisible by `M`).
    pub dim: usize,
    /// Adagrad learning rate for embeddings (the paper's optimizer).
    pub lr: f32,
    /// Decoupled L2 penalty.
    pub l2: f32,
    /// Weighted nuclear 3-norm (N3) regularisation strength (Lacroix et
    /// al. 2018) applied to the factors of each positive triple; 0
    /// disables it.
    pub n3: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 = constant; part of the paper's tuned hyperparameter set,
    /// Section V-A2).
    pub decay_rate: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Validate every this many epochs.
    pub eval_every: usize,
    /// Stop when validation MRR has not improved for this many
    /// consecutive validations.
    pub patience: usize,
    /// Loss materialisation.
    pub loss: LossMode,
    /// How validation and test ranking candidates are materialised:
    /// exact filtered ranking, or a seeded candidate sample (the
    /// affordable protocol on million-entity graphs).
    pub ranking: RankingMode,
    /// RNG seed for init, shuffling and negative sampling.
    pub seed: u64,
    /// Minibatch execution strategy (evaluation always runs on the
    /// pool; results there are pool-size independent).
    pub execution: Execution,
    /// Declared per-coordinate embedding-magnitude bounds: the numeric
    /// contract the static certifier (`eras_sf::numeric::certify`)
    /// interprets candidate structures under. A declaration, not an
    /// enforced clamp — the default comfortably covers the uniform
    /// init scale `√(6/d)/3` plus regularised drift.
    pub bounds: NormBounds,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dim: 32,
            lr: 0.1,
            l2: 1e-4,
            n3: 0.0,
            decay_rate: 1.0,
            batch_size: 256,
            max_epochs: 60,
            eval_every: 5,
            patience: 3,
            loss: LossMode::sampled_default(),
            ranking: RankingMode::Full,
            seed: 0,
            execution: Execution::Sequential,
            bounds: NormBounds::default(),
        }
    }
}

/// Where and how often a training run checkpoints itself.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Checkpoint file path (written atomically on every save).
    pub path: PathBuf,
    /// Save after every this many completed epochs (0 disables saves;
    /// resume can still read an existing file).
    pub every: usize,
    /// Attempt to resume from an existing checkpoint at `path`. A
    /// missing, torn, or corrupt file falls back to a fresh start —
    /// which converges to the same bits, just from epoch 1 — while a
    /// checkpoint from a *different* configuration is a hard error.
    pub resume: bool,
}

/// Result of a stand-alone run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Trained embeddings at the best-validation point... (see note):
    /// this implementation returns the *final* embeddings; the metrics
    /// fields record the best validation seen and the final test numbers.
    pub embeddings: Embeddings,
    /// Best validation metrics observed.
    pub best_valid: LinkPredictionMetrics,
    /// Metrics on the test split with the final embeddings.
    pub test: LinkPredictionMetrics,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Mean training loss of the last epoch.
    pub final_loss: f32,
}

/// Train `model` stand-alone on `dataset` and evaluate it, using the
/// process-wide [`ThreadPool::global`] for evaluation and (under
/// [`Execution::DataParallel`]) for the minibatch gradients.
pub fn train_standalone(
    model: &BlockModel,
    dataset: &Dataset,
    filter: &FilterIndex,
    cfg: &TrainConfig,
) -> TrainOutcome {
    train_standalone_on(model, dataset, filter, cfg, ThreadPool::global())
}

/// [`train_standalone`] on an explicit pool. The pool size never
/// affects the outcome — minibatch gradients and evaluation metrics
/// are bit-identical for every pool size — so callers pick a pool for
/// resource reasons only.
pub fn train_standalone_on(
    model: &BlockModel,
    dataset: &Dataset,
    filter: &FilterIndex,
    cfg: &TrainConfig,
    pool: &ThreadPool,
) -> TrainOutcome {
    train_standalone_resumable(model, dataset, filter, cfg, pool, None)
        .expect("training without a checkpoint spec performs no I/O") // audit:allow(W402): statically infallible — the None branch never touches a file
}

/// [`train_standalone_on`] with optional checkpointing: with a
/// [`CheckpointSpec`] the run saves its complete state every
/// `spec.every` epochs and, when `spec.resume` is set, continues a
/// previous run from its last checkpoint **bit-identically** — the
/// outcome equals the uninterrupted run's in every field. The only
/// errors are checkpoint I/O failures and a resume/config mismatch;
/// with `spec == None` this function cannot fail.
pub fn train_standalone_resumable(
    model: &BlockModel,
    dataset: &Dataset,
    filter: &FilterIndex,
    cfg: &TrainConfig,
    pool: &ThreadPool,
    spec: Option<&CheckpointSpec>,
) -> Result<TrainOutcome, IoError> {
    let _run_span = eras_obs::span!(
        "train.run",
        dim = cfg.dim,
        max_epochs = cfg.max_epochs,
        batch_size = cfg.batch_size,
        triples = dataset.train.len(),
        data_parallel = matches!(cfg.execution, Execution::DataParallel),
    );
    let registry = eras_obs::metrics::global();
    let epochs_counter = registry.counter("train.epochs");
    let batches_counter = registry.counter("train.batches");
    let evals_counter = registry.counter("train.evals");
    let neg_batches_counter = registry.counter("train.neg_batches");
    let neg_samples_counter = registry.counter("train.neg_samples");

    // Filtered-negative context for the neg-sampling objective: the
    // train-split filter is shared, and Bernoulli corruption fits its
    // per-relation tail probabilities once per run.
    let neg_ctx = match cfg.loss {
        LossMode::NegSampling {
            corruption: Corruption::Bernoulli,
            ..
        } => Some(NegCtx::bernoulli(
            filter,
            &dataset.train,
            dataset.num_relations(),
        )),
        LossMode::NegSampling { .. } => Some(NegCtx::uniform(filter)),
        _ => None,
    };
    let neg = neg_ctx.as_ref();
    // Exact per-batch negative-draw count: Bernoulli corrupts one side
    // per triple, every other corruption both.
    let neg_per_triple = match cfg.loss {
        LossMode::NegSampling {
            negatives,
            corruption,
            ..
        } => match corruption {
            Corruption::Bernoulli => negatives,
            Corruption::Uniform => 2 * negatives,
        },
        _ => 0,
    };

    let fingerprint = config_fingerprint(
        cfg,
        dataset.num_entities(),
        dataset.num_relations(),
        dataset.train.len(),
    );

    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut emb = Embeddings::init(
        dataset.num_entities(),
        dataset.num_relations(),
        cfg.dim,
        &mut rng,
    );
    let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), cfg.lr, cfg.l2);
    let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), cfg.lr, cfg.l2);
    let mut scratch = BlockScratch::new();
    let mut shards = GradShards::new();
    let mut order: Vec<Triple> = dataset.train.clone();

    let mut best_valid = LinkPredictionMetrics::default();
    let mut strikes = 0usize;
    let mut epochs_run = 0usize;
    let mut final_loss = 0.0f32;
    let mut start_epoch = 1usize;

    if let Some(spec) = spec.filter(|s| s.resume) {
        match TrainCheckpoint::load(&spec.path) {
            Ok(ck) if ck.fingerprint == fingerprint => {
                rng = Rng::from_state(ck.rng_state);
                emb = ck.embeddings;
                opt_e = Adagrad::from_accumulator(ck.lr_entity, cfg.l2, ck.ent_accum);
                opt_r = Adagrad::from_accumulator(ck.lr_relation, cfg.l2, ck.rel_accum);
                order = ck.order;
                best_valid = ck.best_valid;
                strikes = ck.strikes;
                final_loss = ck.final_loss;
                epochs_run = ck.epoch;
                start_epoch = ck.epoch + 1;
                eras_obs::event!("train.resumed", epoch = ck.epoch);
            }
            Ok(ck) => {
                return Err(IoError::Format(format!(
                    "checkpoint {} was written by a different run \
                     (fingerprint {:#018x}, this run {:#018x})",
                    spec.path.display(),
                    ck.fingerprint,
                    fingerprint
                )));
            }
            // Missing, torn, or unreadable checkpoint: start fresh.
            // The from-scratch run walks the same deterministic path,
            // so the outcome is still bit-identical, only slower.
            Err(_) => {}
        }
    }

    for epoch in start_epoch..=cfg.max_epochs {
        let _epoch_span = eras_obs::span!("train.epoch", epoch = epoch);
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for batch in order.chunks(cfg.batch_size.max(1)) {
            match cfg.execution {
                Execution::Sequential => {
                    loss_sum += train_minibatch(
                        model,
                        &mut emb,
                        &mut opt_e,
                        &mut opt_r,
                        batch,
                        cfg.loss,
                        neg,
                        &mut rng,
                        &mut scratch,
                    );
                    if cfg.n3 > 0.0 {
                        crate::block::apply_n3(&mut emb, &mut opt_e, &mut opt_r, batch, cfg.n3);
                    }
                }
                Execution::DataParallel => {
                    // N3 is folded into the batch gradient here rather
                    // than applied as a separate pass.
                    loss_sum += train_minibatch_parallel(
                        model,
                        &mut emb,
                        &mut opt_e,
                        &mut opt_r,
                        batch,
                        cfg.loss,
                        neg,
                        cfg.n3,
                        &mut rng,
                        pool,
                        &mut shards,
                    );
                }
            }
            if neg_per_triple > 0 {
                neg_batches_counter.inc();
                neg_samples_counter.add((neg_per_triple * batch.len()) as u64);
            }
            batches += 1;
        }
        final_loss = loss_sum / batches.max(1) as f32;
        epochs_run = epoch;
        epochs_counter.inc();
        batches_counter.add(batches as u64);
        if cfg.decay_rate != 1.0 {
            opt_e.set_learning_rate(opt_e.learning_rate() * cfg.decay_rate);
            opt_r.set_learning_rate(opt_r.learning_rate() * cfg.decay_rate);
        }

        if epoch % cfg.eval_every.max(1) == 0 && !dataset.valid.is_empty() {
            let metrics = {
                let _eval_span =
                    eras_obs::span!("train.eval", epoch = epoch, triples = dataset.valid.len());
                link_prediction_with(model, &emb, &dataset.valid, filter, cfg.ranking, pool)
            };
            evals_counter.inc();
            let valid_mrr = metrics.mrr;
            if metrics.mrr > best_valid.mrr {
                best_valid = metrics;
                strikes = 0;
            } else {
                strikes += 1;
                if strikes >= cfg.patience {
                    eras_obs::event!(
                        "train.early_stop",
                        epoch = epoch,
                        best_valid_mrr = best_valid.mrr,
                    );
                    break;
                }
            }
            eras_obs::event!(
                "train.progress",
                epoch = epoch,
                loss = final_loss,
                valid_mrr = valid_mrr,
                best_valid_mrr = best_valid.mrr,
                strikes = strikes,
            );
        }

        // Checkpoint *after* this epoch's eval so the patience state is
        // captured; the early-stop `break` above skips the save, so no
        // checkpoint ever records a run that already decided to stop.
        if let Some(spec) = spec {
            if spec.every > 0 && epoch.is_multiple_of(spec.every) {
                let _ckpt_span = eras_obs::span!("train.checkpoint", epoch = epoch);
                TrainCheckpoint {
                    fingerprint,
                    epoch,
                    rng_state: rng.state(),
                    order: order.clone(),
                    embeddings: emb.clone(),
                    ent_accum: opt_e.accumulator().to_vec(),
                    rel_accum: opt_r.accumulator().to_vec(),
                    lr_entity: opt_e.learning_rate(),
                    lr_relation: opt_r.learning_rate(),
                    best_valid,
                    strikes,
                    final_loss,
                }
                .save(&spec.path)?;
            }
        }
    }

    let test = {
        let _eval_span = eras_obs::span!("train.eval", triples = dataset.test.len());
        link_prediction_with(model, &emb, &dataset.test, filter, cfg.ranking, pool)
    };
    if dataset.valid.is_empty() {
        best_valid = test;
    }
    Ok(TrainOutcome {
        embeddings: emb,
        best_valid,
        test,
        epochs_run,
        final_loss,
    })
}

/// Convenience: stand-alone validation MRR of a structure (the quantity
/// AutoSF's predictor is trained to predict, and the x-axis of Figure 5).
pub fn standalone_valid_mrr(
    model: &BlockModel,
    dataset: &Dataset,
    filter: &FilterIndex,
    cfg: &TrainConfig,
) -> f64 {
    let outcome = train_standalone(model, dataset, filter, cfg);
    outcome.best_valid.mrr
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_data::Preset;
    use eras_sf::zoo;

    fn fast_cfg() -> TrainConfig {
        TrainConfig {
            dim: 16,
            max_epochs: 12,
            eval_every: 4,
            patience: 2,
            batch_size: 128,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_on_tiny_preset_beats_chance() {
        let dataset = Preset::Tiny.build(3);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let outcome = train_standalone(&model, &dataset, &filter, &fast_cfg());
        // Chance MRR over 150 entities ≈ ln(150)/150 ≈ 0.03.
        assert!(
            outcome.test.mrr > 0.15,
            "ComplEx should clearly learn the planted structure, got {}",
            outcome.test.mrr
        );
        assert!(outcome.epochs_run >= 4);
        assert!(outcome.final_loss.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let dataset = Preset::Tiny.build(4);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::simple(), dataset.num_relations());
        let mut cfg = fast_cfg();
        cfg.max_epochs = 4;
        let a = train_standalone(&model, &dataset, &filter, &cfg);
        let b = train_standalone(&model, &dataset, &filter, &cfg);
        assert_eq!(a.test.mrr, b.test.mrr);
        assert_eq!(
            a.embeddings.entity.as_slice(),
            b.embeddings.entity.as_slice()
        );
    }

    #[test]
    fn data_parallel_training_is_identical_for_every_pool_size() {
        // Property: with `Execution::DataParallel`, the *entire*
        // stand-alone protocol — init, shuffling, negative sampling,
        // minibatch gradients, N3, validation-driven early stopping —
        // is a pure function of the seed, for both loss modes and any
        // pool size.
        let dataset = Preset::Tiny.build(6);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        for loss in [
            LossMode::Full,
            LossMode::Sampled { negatives: 8 },
            LossMode::NegSampling {
                negatives: 4,
                gamma: 6.0,
                adversarial_temp: 1.0,
                corruption: Corruption::Uniform,
            },
            LossMode::NegSampling {
                negatives: 4,
                gamma: 6.0,
                adversarial_temp: 0.0,
                corruption: Corruption::Bernoulli,
            },
        ] {
            let cfg = TrainConfig {
                dim: 16,
                max_epochs: 3,
                eval_every: 2,
                n3: 1e-3,
                loss,
                execution: Execution::DataParallel,
                ..TrainConfig::default()
            };
            let reference = {
                let pool = ThreadPool::new(1);
                train_standalone_on(&model, &dataset, &filter, &cfg, &pool)
            };
            for threads in [2usize, 3, 8] {
                let pool = ThreadPool::new(threads);
                let run = train_standalone_on(&model, &dataset, &filter, &cfg, &pool);
                assert_eq!(
                    reference.embeddings.entity.as_slice(),
                    run.embeddings.entity.as_slice(),
                    "entity table diverged at {threads} threads ({loss:?})"
                );
                assert_eq!(
                    reference.embeddings.relation.as_slice(),
                    run.embeddings.relation.as_slice(),
                    "relation table diverged at {threads} threads ({loss:?})"
                );
                assert_eq!(reference.final_loss, run.final_loss, "{loss:?}");
                assert_eq!(reference.test, run.test, "{loss:?}");
                assert_eq!(reference.best_valid, run.best_valid, "{loss:?}");
                assert_eq!(reference.epochs_run, run.epochs_run, "{loss:?}");
            }
        }
    }

    #[test]
    fn data_parallel_training_learns_on_tiny_preset() {
        let dataset = Preset::Tiny.build(3);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let cfg = TrainConfig {
            loss: LossMode::Full,
            execution: Execution::DataParallel,
            ..fast_cfg()
        };
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        assert!(
            outcome.test.mrr > 0.15,
            "data-parallel run should learn the planted structure, got {}",
            outcome.test.mrr
        );
    }

    #[test]
    fn n3_gradient_descends_the_cubed_norm() {
        use crate::block::apply_n3;
        use eras_data::Triple;
        use eras_linalg::optim::Sgd;
        use eras_linalg::Rng;
        let mut rng = Rng::seed_from_u64(9);
        let mut emb = crate::Embeddings::init(4, 2, 8, &mut rng);
        let cubed = |e: &crate::Embeddings, row: usize| -> f32 {
            e.entity.row(row).iter().map(|x| x.abs().powi(3)).sum()
        };
        let batch = [Triple::new(0, 1, 2)];
        let before = cubed(&emb, 0) + cubed(&emb, 2);
        let mut opt_e = Sgd::new(0.05, 0.0);
        let mut opt_r = Sgd::new(0.05, 0.0);
        for _ in 0..300 {
            apply_n3(&mut emb, &mut opt_e, &mut opt_r, &batch, 0.1);
        }
        let after = cubed(&emb, 0) + cubed(&emb, 2);
        assert!(
            after < 0.5 * before,
            "N3 steps should shrink ‖x‖₃³: {before} -> {after}"
        );
        // Untouched rows are untouched.
        let untouched = emb.entity.row(3);
        assert!(untouched.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn decay_rate_reduces_learning_rate_over_epochs() {
        let dataset = Preset::Tiny.build(7);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::distmult(4), dataset.num_relations());
        // Training still works end-to-end with decay enabled.
        let cfg = TrainConfig {
            dim: 16,
            max_epochs: 6,
            eval_every: 6,
            patience: 1,
            decay_rate: 0.7,
            ..TrainConfig::default()
        };
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        assert!(outcome.test.mrr > 0.0);
        assert_eq!(outcome.epochs_run, 6);
    }

    /// Resume-from-checkpoint reproduces the uninterrupted run exactly:
    /// run once with a checkpoint saved mid-run, then "crash" (discard
    /// the in-memory result) and resume from the file — every outcome
    /// field must match the plain run bit-for-bit.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let dataset = Preset::Tiny.build(8);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let cfg = TrainConfig {
            dim: 16,
            max_epochs: 6,
            eval_every: 2,
            patience: 3,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let reference = train_standalone(&model, &dataset, &filter, &cfg);

        let dir = std::env::temp_dir().join(format!("eras_resume_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CheckpointSpec {
            path: dir.join("train.ckpt"),
            every: 4, // last save lands at epoch 4, two epochs short
            resume: false,
        };
        let pool = ThreadPool::new(2);
        let first = train_standalone_resumable(&model, &dataset, &filter, &cfg, &pool, Some(&spec))
            .unwrap();
        assert_eq!(
            first.embeddings.entity.as_slice(),
            reference.embeddings.entity.as_slice(),
            "checkpointing must not perturb the run itself"
        );

        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        let resumed =
            train_standalone_resumable(&model, &dataset, &filter, &cfg, &pool, Some(&resume))
                .unwrap();
        assert_eq!(
            resumed.embeddings.entity.as_slice(),
            reference.embeddings.entity.as_slice()
        );
        assert_eq!(
            resumed.embeddings.relation.as_slice(),
            reference.embeddings.relation.as_slice()
        );
        assert_eq!(resumed.best_valid, reference.best_valid);
        assert_eq!(resumed.test, reference.test);
        assert_eq!(resumed.epochs_run, reference.epochs_run);
        assert_eq!(resumed.final_loss, reference.final_loss);

        // A checkpoint from a different configuration is refused.
        let mut other = cfg.clone();
        other.seed = 99;
        match train_standalone_resumable(&model, &dataset, &filter, &other, &pool, Some(&resume)) {
            Err(crate::io::IoError::Format(m)) => assert!(m.contains("different run"), "{m}"),
            res => panic!("expected a fingerprint mismatch, got {res:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Negative-sampling training survives a crash/resume cycle
    /// bit-for-bit: the corruption sampler's RNG state rides the main
    /// `rng_state` in the checkpoint, so the resumed run draws the
    /// exact same negatives the uninterrupted run would have.
    #[test]
    fn neg_sampling_checkpoint_resume_is_bit_identical() {
        let dataset = Preset::Tiny.build(9);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let cfg = TrainConfig {
            dim: 16,
            max_epochs: 6,
            eval_every: 2,
            patience: 3,
            batch_size: 128,
            loss: LossMode::NegSampling {
                negatives: 8,
                gamma: 6.0,
                adversarial_temp: 1.0,
                corruption: Corruption::Bernoulli,
            },
            execution: Execution::DataParallel,
            ..TrainConfig::default()
        };
        let reference = train_standalone(&model, &dataset, &filter, &cfg);

        let dir = std::env::temp_dir().join(format!("eras_neg_resume_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = CheckpointSpec {
            path: dir.join("train.ckpt"),
            every: 4, // last save lands mid-run, two epochs short
            resume: false,
        };
        let pool = ThreadPool::new(2);
        train_standalone_resumable(&model, &dataset, &filter, &cfg, &pool, Some(&spec)).unwrap();
        let resume = CheckpointSpec {
            resume: true,
            ..spec.clone()
        };
        let resumed =
            train_standalone_resumable(&model, &dataset, &filter, &cfg, &pool, Some(&resume))
                .unwrap();
        assert_eq!(
            resumed.embeddings.entity.as_slice(),
            reference.embeddings.entity.as_slice()
        );
        assert_eq!(
            resumed.embeddings.relation.as_slice(),
            reference.embeddings.relation.as_slice()
        );
        assert_eq!(resumed.best_valid, reference.best_valid);
        assert_eq!(resumed.test, reference.test);
        assert_eq!(resumed.final_loss, reference.final_loss);

        // A checkpoint written under a different negative-sampling
        // config (same everything else) is refused: the loss
        // hyper-parameters are part of the fingerprint.
        let mut other = cfg.clone();
        other.loss = LossMode::NegSampling {
            negatives: 8,
            gamma: 9.0,
            adversarial_temp: 1.0,
            corruption: Corruption::Bernoulli,
        };
        match train_standalone_resumable(&model, &dataset, &filter, &other, &pool, Some(&resume)) {
            Err(crate::io::IoError::Format(m)) => assert!(m.contains("different run"), "{m}"),
            res => panic!("expected a fingerprint mismatch, got {res:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A trainer configured with sampled ranking at `candidates ≥
    /// num_entities` reproduces the full-ranking run bit-for-bit: the
    /// candidate draw degenerates to "all entities" and early stopping
    /// sees identical validation metrics at every gate.
    #[test]
    fn sampled_ranking_with_all_candidates_matches_full_trainer_run() {
        let dataset = Preset::Tiny.build(10);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let base = TrainConfig {
            dim: 16,
            max_epochs: 4,
            eval_every: 2,
            patience: 2,
            batch_size: 128,
            ..TrainConfig::default()
        };
        let full = train_standalone(&model, &dataset, &filter, &base);
        let sampled_cfg = TrainConfig {
            ranking: RankingMode::Sampled {
                candidates: dataset.num_entities() * 2,
                seed: 77,
            },
            ..base
        };
        let sampled = train_standalone(&model, &dataset, &filter, &sampled_cfg);
        assert_eq!(sampled.test, full.test);
        assert_eq!(sampled.best_valid, full.best_valid);
        assert_eq!(sampled.epochs_run, full.epochs_run);
        assert_eq!(
            sampled.embeddings.entity.as_slice(),
            full.embeddings.entity.as_slice()
        );
        // A genuinely sub-sampled protocol still drives training and
        // early stopping end-to-end and produces sane metrics.
        let small_cfg = TrainConfig {
            ranking: RankingMode::Sampled {
                candidates: 40,
                seed: 77,
            },
            ..base
        };
        let small = train_standalone(&model, &dataset, &filter, &small_cfg);
        assert_eq!(small.test.count, full.test.count);
        assert!(small.test.mrr > 0.0 && small.test.mrr <= 1.0);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let dataset = Preset::Tiny.build(5);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::distmult(4), dataset.num_relations());
        let cfg = TrainConfig {
            dim: 16,
            max_epochs: 100,
            eval_every: 1,
            patience: 2,
            lr: 0.0, // no learning → no improvement → stop fast
            ..TrainConfig::default()
        };
        let outcome = train_standalone(&model, &dataset, &filter, &cfg);
        assert!(
            outcome.epochs_run <= 6,
            "patience 2 with eval every epoch must stop early, ran {}",
            outcome.epochs_run
        );
    }
}
