//! Deterministic data-parallel minibatch training.
//!
//! [`train_minibatch_parallel`] is the pool-backed counterpart of
//! [`crate::block::train_minibatch`]. The sequential step interleaves
//! gradient computation with optimizer application per example; that
//! serialises on the optimizer state and, under [`LossMode::Full`],
//! pays an Adagrad sweep over *every* entity row per side. The
//! data-parallel step restructures the batch instead:
//!
//! 1. **Fixed sharding.** The batch is cut into `ceil(len / 32)` shards
//!    of [`SHARD_TRIPLES`] triples. Shard boundaries depend only on the
//!    batch length — never on the pool size — and shard `s` draws its
//!    negatives from an RNG derived from `(batch_base, s)`, so the work
//!    a shard does is a pure function of the shard index.
//! 2. **Snapshot gradients.** Every shard computes exact gradients
//!    against the batch-start embeddings into its own accumulator
//!    (entity/relation tables with touched-row tracking, so
//!    [`LossMode::Sampled`] shards stay sparse). No shard writes
//!    anything another shard reads.
//! 3. **Fixed tree reduction.** Shard accumulators are merged
//!    sequentially with stride doubling (`s[i] += s[i + stride]`,
//!    stride 1, 2, 4, …). Floating-point addition is not associative;
//!    fixing the reduction *tree* — not just the set of addends — is
//!    what makes the sums bit-identical for every pool size.
//! 4. **Single application.** The optimizer applies the merged gradient
//!    once per touched row in ascending row order.
//!
//! ## Bounded memory under `LossMode::Full`
//!
//! A full-softmax shard is dense: its entity accumulator spans the
//! whole table and its deferred outer products carry one residual per
//! entity per example side. Letting every shard of a large batch hold
//! that at once would cost memory linear in the batch length, so two
//! machine-independent constants bound it instead:
//!
//! - `FULL_FLUSH_SIDES` caps the deferred `p ⊗ q` buffer: a shard
//!   flushes after that many sides, in ascending side order, which
//!   leaves every per-element sum in exactly the same order as one big
//!   flush.
//! - `FULL_LIVE_SHARDS` caps how many dense shard accumulators are
//!   live at once: the batch runs as a sequence of *super-steps* over a
//!   fixed-size window of shard buffers. Each super-step tree-reduces
//!   its window, then folds it into a running batch accumulator in
//!   ascending step order. Window size and step order are constants of
//!   the batch length — never the pool size — so the overall reduction
//!   shape, and therefore every floating-point sum, stays bit-identical
//!   for every thread count.
//!
//! `LossMode::Sampled` shards are sparse (a few dozen rows each), so
//! they keep the single-window path with every shard live.
//! [`LossMode::NegSampling`] shards are sparse too, but they target
//! million-entity tables where even a sparse shard carries a
//! rows-sized slot map, so they run over their own bounded window
//! (`NEG_LIVE_SHARDS`). Sparse shards store only the rows they touch
//! (slot-compressed, see [`GradTable`]): a neg-sampling shard over a
//! million-entity table costs kilobytes of gradient rows, not the
//! 4·`N_e`·`d` bytes a dense accumulator would.
//!
//! The result is bit-identical for every thread count (the pool only
//! decides *which worker* runs a shard, never what the shard computes),
//! and the restructuring itself is the throughput win: under
//! `LossMode::Full` the per-side entity sweep collapses from a
//! `sqrt`/`div`-bound Adagrad pass over the whole table to two fused
//! `axpy` passes, with one Adagrad pass per *batch* instead of per
//! side.
//!
//! N3 regularisation is folded into the same batch gradient (evaluated
//! on the batch-start snapshot) rather than applied as a separate
//! post-batch pass like the sequential `apply_n3`.

use crate::block::{sides_for, BlockModel};
use crate::embeddings::Embeddings;
use crate::loss::LossMode;
use crate::negative::{sample_neg_block, NegCtx};
use eras_data::Triple;
use eras_linalg::optim::Optimizer;
use eras_linalg::pool::ThreadPool;
use eras_linalg::softmax::{self, log_loss_and_residual, neg_sampling_loss_and_residual};
use eras_linalg::{vecops, Rng};
use std::cell::UnsafeCell;

/// Triples per gradient shard. Shard count is `ceil(batch / 32)` — a
/// function of the batch length only, which is what keeps results
/// independent of the pool size.
pub const SHARD_TRIPLES: usize = 32;

/// Deferred outer-product group size under [`LossMode::Full`]: a shard
/// materialises its `p ⊗ q` sides every this-many sides instead of
/// buffering one residual row per side of the whole shard, capping
/// `p_rows` at `FULL_FLUSH_SIDES · num_entities` floats per shard.
/// Groups flush in ascending side order, so each gradient element
/// accumulates its sides in the same order as a single flush would —
/// the sums are bitwise unchanged.
const FULL_FLUSH_SIDES: usize = 8;

/// Maximum shard accumulators live at once under [`LossMode::Full`],
/// where each accumulator holds a dense `num_entities × dim` gradient
/// table. Batches with more shards run as a sequence of super-steps
/// over a window this wide, so a batch's footprint is bounded by a
/// constant independent of its length. This is a fixed constant — never
/// the pool size — so the reduction shape (and with it every
/// floating-point sum) remains a pure function of the batch length.
const FULL_LIVE_SHARDS: usize = 8;

/// Maximum shard accumulators live at once under
/// [`LossMode::NegSampling`]. Neg-sampling shards are sparse, but the
/// mode targets million-entity tables where every live shard still
/// carries a rows-sized row→slot map; bounding the window keeps the
/// batch footprint a constant multiple of the table's *row count*
/// rather than of the shard count. Like `FULL_LIVE_SHARDS` it is a
/// machine-independent constant, so the reduction shape stays a pure
/// function of the batch length.
const NEG_LIVE_SHARDS: usize = 8;

/// A gradient table with slot-compressed sparse storage: `grad` holds
/// one `dim`-row per *touched* row (first-touch order) and `slot_of`
/// maps a table row to its slot, so a sampled- or neg-sampling-mode
/// shard over a million-entity table costs memory proportional to the
/// rows it actually touches, never to the table. [`LossMode::Full`]
/// shards flip to a dense layout ([`GradTable::mark_dense`]) where row
/// `r` lives at offset `r·dim` — the deferred outer-product flush
/// writes the whole table anyway, and a direct offset beats a slot
/// lookup per row there.
#[derive(Default)]
struct GradTable {
    rows: usize,
    dim: usize,
    /// Active storage: `touched.len()·dim` floats (sparse layout) or
    /// `rows·dim` (dense layout).
    grad: Vec<f32>,
    /// Retained buffer for the other layout, so the sparse↔dense flip
    /// allocates once per table lifetime, not once per batch. All-zero
    /// whenever the table is sparse (restored by [`GradTable::clear`]).
    spare: Vec<f32>,
    /// Row → slot index into `grad`; `u32::MAX` marks untouched.
    slot_of: Vec<u32>,
    touched: Vec<u32>,
    dense: bool,
}

impl GradTable {
    fn ensure(&mut self, rows: usize, dim: usize) {
        if self.rows == rows && self.dim == dim {
            return;
        }
        self.rows = rows;
        self.dim = dim;
        self.grad = Vec::new();
        self.spare = Vec::new();
        self.slot_of = vec![u32::MAX; rows];
        self.touched = Vec::new();
        self.dense = false;
    }

    /// Assign `row` a slot (appending a zeroed gradient row) unless it
    /// already has one. In the dense layout every row is live already.
    #[inline]
    fn mark(&mut self, row: u32) {
        if self.dense {
            return;
        }
        if self.slot_of[row as usize] == u32::MAX {
            self.slot_of[row as usize] = self.touched.len() as u32;
            self.touched.push(row);
            self.grad.resize(self.grad.len() + self.dim, 0.0);
        }
    }

    /// Flip to the dense layout: scatter the sparse slots to their
    /// `r·dim` offsets in the (all-zero) spare buffer and swap. The
    /// flip moves values without touching any sum. Idempotent within a
    /// batch (the flag is reset by [`GradTable::clear`]).
    fn mark_dense(&mut self, rows: usize) {
        if self.dense {
            return;
        }
        let dim = self.dim;
        self.spare.resize(rows * dim, 0.0);
        for (slot, &r) in self.touched.iter().enumerate() {
            self.spare[r as usize * dim..(r as usize + 1) * dim]
                .copy_from_slice(&self.grad[slot * dim..(slot + 1) * dim]);
        }
        std::mem::swap(&mut self.grad, &mut self.spare);
        self.dense = true;
        self.touched.clear();
        self.touched.extend(0..rows as u32);
    }

    // audit:allow(E701): `at` is a dense row index or a slot assigned
    // by `mark`, both < the length the layout fixes
    #[inline]
    fn row(&self, row: usize, dim: usize) -> &[f32] {
        let at = if self.dense {
            row
        } else {
            self.slot_of[row] as usize
        };
        &self.grad[at * dim..(at + 1) * dim]
    }

    #[inline]
    fn row_mut(&mut self, row: usize, dim: usize) -> &mut [f32] {
        let at = if self.dense {
            row
        } else {
            self.slot_of[row] as usize
        };
        &mut self.grad[at * dim..(at + 1) * dim]
    }

    /// `self[r] += src[r]` for every row `src` touched. Row values are
    /// independent, so the merge order of rows cannot affect the sums.
    /// A dense source merges as one whole-table add — the same
    /// element-wise sums as the row loop, minus the per-row marking.
    fn merge_from(&mut self, src: &GradTable, dim: usize) {
        if src.dense {
            self.mark_dense(src.rows);
            for (d, &v) in self.grad.iter_mut().zip(&src.grad) {
                *d += v;
            }
            return;
        }
        for (slot, &r) in src.touched.iter().enumerate() {
            self.mark(r);
            let s = &src.grad[slot * dim..(slot + 1) * dim];
            for (d, &v) in self.row_mut(r as usize, dim).iter_mut().zip(s) {
                *d += v;
            }
        }
    }

    /// Restore the empty-table invariant the next batch relies on: the
    /// sparse layout just truncates (new marks push freshly zeroed
    /// rows), the dense layout re-zeroes the big buffer and parks it in
    /// `spare` so the next flip reuses it without reallocating.
    fn clear(&mut self) {
        if self.dense {
            vecops::zero(&mut self.grad);
            std::mem::swap(&mut self.grad, &mut self.spare);
            self.grad.clear();
            self.slot_of.fill(u32::MAX);
            self.touched.clear();
            self.dense = false;
            return;
        }
        for &r in &self.touched {
            self.slot_of[r as usize] = u32::MAX;
        }
        self.touched.clear();
        self.grad.clear();
    }
}

/// One shard's accumulators plus its private work buffers.
#[derive(Default)]
struct Shard {
    entity: GradTable,
    relation: GradTable,
    loss: f32,
    /// Loss-term sides accumulated — the batch-mean divisor. Bernoulli
    /// corruption trains one side per triple; every other mode two.
    sides: u32,
    q: Vec<f32>,
    g_q: Vec<f32>,
    scores: Vec<f32>,
    candidates: Vec<u32>,
    /// Deferred `LossMode::Full` outer products: side `s` stores its
    /// residual row `p_s` (one scalar per entity) and query `q_s` here,
    /// and [`Shard::flush_full`] materialises `G += Σ_s p_s ⊗ q_s` in
    /// one table-resident pass per shard instead of a read-modify-write
    /// of the whole gradient table per side.
    p_rows: Vec<f32>,
    q_rows: Vec<f32>,
    n_sides: usize,
    g_q_b: Vec<f32>,
}

impl Shard {
    /// Accumulate exact gradients for `triples` against the snapshot
    /// `emb`, mirroring the math of `train_side` for both directions.
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &mut self,
        model: &BlockModel,
        emb: &Embeddings,
        triples: &[Triple],
        mode: LossMode,
        neg: Option<&NegCtx>,
        n3_lambda: f32,
        rng: &mut Rng,
    ) {
        self.entity.ensure(emb.num_entities(), emb.dim());
        self.relation.ensure(emb.num_relations(), emb.dim());
        self.q.resize(emb.dim(), 0.0);
        self.g_q.resize(emb.dim(), 0.0);
        self.g_q_b.resize(emb.dim(), 0.0);
        self.loss = 0.0;
        self.sides = 0;
        if matches!(mode, LossMode::Full) {
            let sides = (2 * triples.len()).min(FULL_FLUSH_SIDES);
            self.p_rows.resize(sides * emb.num_entities(), 0.0);
            self.q_rows.resize(sides * emb.dim(), 0.0);
            self.n_sides = 0;
        }
        for &t in triples {
            let (tail_side, head_side) = sides_for(mode, neg, t, rng);
            if tail_side {
                self.loss += self.side(model, emb, false, t.head, t.rel, t.tail, mode, neg, rng);
                self.sides += 1;
            }
            if head_side {
                self.loss += self.side(model, emb, true, t.tail, t.rel, t.head, mode, neg, rng);
                self.sides += 1;
            }
            if n3_lambda > 0.0 {
                self.accumulate_n3(emb, t, n3_lambda);
            }
        }
        if matches!(mode, LossMode::Full) {
            self.flush_full(emb.num_entities(), emb.dim());
        }
    }

    /// One 1-vs-all direction: residuals into candidate entity rows,
    /// chain rule through `q` into the anchor and relation rows.
    #[allow(clippy::too_many_arguments)]
    fn side(
        &mut self,
        model: &BlockModel,
        emb: &Embeddings,
        transposed: bool,
        anchor: u32,
        rel: u32,
        target: u32,
        mode: LossMode,
        neg: Option<&NegCtx>,
        rng: &mut Rng,
    ) -> f32 {
        let dim = emb.dim();
        let num_entities = emb.num_entities();
        let sf = if transposed {
            model.sf_for_transposed(rel)
        } else {
            model.sf_for(rel)
        };
        let x = emb.entity.row(anchor as usize);
        let r_row = emb.relation.row(rel as usize);
        model.query_with(sf, x, r_row, &mut self.q);

        vecops::zero(&mut self.g_q);
        let loss = match mode {
            LossMode::Full => {
                // Side group full: materialise the deferred outer
                // products before claiming a new slot. Ascending side
                // order per group keeps every element's sum order
                // identical to one big flush.
                if self.n_sides * num_entities >= self.p_rows.len() {
                    self.flush_full(num_entities, dim);
                }
                self.scores.resize(num_entities, 0.0);
                emb.entity.matvec(&self.q, &mut self.scores);
                // Fast softmax: scores become unnormalised exp values;
                // the 1/Σ normalisation folds into each row's gradient
                // scalar below instead of costing its own pass.
                let (loss, inv) = softmax::log_loss_exp_scale(&mut self.scores, target as usize);
                // One pass over the entity table yields g_q (= Eᵀ·p)
                // and records the residual scalars — the per-row grads
                // `p_c·q` are *deferred* to [`Shard::flush_full`], so
                // the gradient table is written once per shard instead
                // of read-modify-written once per side. Rows go two at
                // a time with split g_q accumulators so the two
                // streams stay independent; the combine order is
                // fixed, keeping the result a pure function of the
                // input.
                let s_idx = self.n_sides;
                self.n_sides += 1;
                let p_row = &mut self.p_rows[s_idx * num_entities..(s_idx + 1) * num_entities];
                self.q_rows[s_idx * dim..(s_idx + 1) * dim].copy_from_slice(&self.q);
                {
                    let gq = &mut self.g_q[..dim];
                    let gqb = &mut self.g_q_b[..dim];
                    let mut pi = p_row.chunks_exact_mut(2);
                    let mut ei = emb.entity.as_slice().chunks_exact(2 * dim);
                    let mut si = self.scores.chunks_exact(2);
                    for ((p2, e2), s2) in (&mut pi).zip(&mut ei).zip(&mut si) {
                        let r0 = s2[0] * inv;
                        let r1 = s2[1] * inv;
                        p2[0] = r0;
                        p2[1] = r1;
                        let (e0, e1) = e2.split_at(dim);
                        vecops::axpy(r0, e0, gq);
                        vecops::axpy(r1, e1, gqb);
                    }
                    for ((p, e_row), &s) in pi
                        .into_remainder()
                        .iter_mut()
                        .zip(ei.remainder().chunks_exact(dim))
                        .zip(si.remainder())
                    {
                        let r = s * inv;
                        *p = r;
                        vecops::axpy(r, e_row, gq);
                    }
                    vecops::axpy(1.0, gqb, gq);
                    vecops::zero(gqb);
                }
                // The pass used p (softmax) rather than the residual
                // p − onehot; subtract the one-hot column here.
                p_row[target as usize] -= 1.0;
                vecops::axpy(-1.0, emb.entity.row(target as usize), &mut self.g_q);
                loss
            }
            LossMode::Sampled { negatives } => {
                self.candidates.clear();
                self.candidates.push(target);
                for _ in 0..negatives {
                    let mut c = rng.next_below(num_entities) as u32;
                    if c == target {
                        c = (c + 1) % num_entities as u32;
                    }
                    self.candidates.push(c);
                }
                self.scores.resize(self.candidates.len(), 0.0);
                for slot in 0..self.candidates.len() {
                    let c = self.candidates[slot] as usize;
                    self.scores[slot] = vecops::dot(&self.q, emb.entity.row(c));
                }
                let loss = log_loss_and_residual(&mut self.scores, 0);
                // self.scores now holds resid = softmax − onehot.
                for slot in 0..self.candidates.len() {
                    let c = self.candidates[slot] as usize;
                    let resid = self.scores[slot];
                    self.entity.mark(c as u32);
                    vecops::axpy(resid, emb.entity.row(c), &mut self.g_q);
                    vecops::axpy(resid, &self.q, self.entity.row_mut(c, dim));
                }
                loss
            }
            LossMode::NegSampling {
                negatives,
                gamma,
                adversarial_temp,
                ..
            } => {
                // Slot 0 is the positive; the filtered negative block
                // corrupts the side being predicted (tail unless this
                // is the transposed/head-prediction direction) — the
                // same math as the sequential `train_side` arm.
                self.candidates.clear();
                self.candidates.push(target);
                self.candidates.resize(1 + negatives, 0);
                sample_neg_block(
                    anchor,
                    rel,
                    target,
                    !transposed,
                    num_entities,
                    neg.map(|n| n.filter),
                    rng,
                    &mut self.candidates[1..],
                );
                self.scores.resize(self.candidates.len(), 0.0);
                for slot in 0..self.candidates.len() {
                    let c = self.candidates[slot] as usize;
                    self.scores[slot] = vecops::dot(&self.q, emb.entity.row(c));
                }
                let loss =
                    neg_sampling_loss_and_residual(&mut self.scores, gamma, adversarial_temp);
                // self.scores now holds the per-candidate ∂L/∂s.
                for slot in 0..self.candidates.len() {
                    let c = self.candidates[slot] as usize;
                    let resid = self.scores[slot];
                    self.entity.mark(c as u32);
                    vecops::axpy(resid, emb.entity.row(c), &mut self.g_q);
                    vecops::axpy(resid, &self.q, self.entity.row_mut(c, dim));
                }
                loss
            }
        };

        self.entity.mark(anchor);
        self.relation.mark(rel);
        model.backprop_query(
            sf,
            x,
            r_row,
            &self.g_q,
            self.entity.row_mut(anchor as usize, dim),
            self.relation.row_mut(rel as usize, dim),
        );
        loss
    }

    /// N3 gradient `3λ·sign(x)·x²` for the factor rows of `t`,
    /// evaluated on the batch-start snapshot.
    fn accumulate_n3(&mut self, emb: &Embeddings, t: Triple, lambda: f32) {
        let dim = emb.dim();
        for &e in &[t.head, t.tail] {
            self.entity.mark(e);
            let dst = self.entity.row_mut(e as usize, dim);
            for (g, &x) in dst.iter_mut().zip(emb.entity.row(e as usize)) {
                *g += 3.0 * lambda * x * x * x.signum();
            }
        }
        self.relation.mark(t.rel);
        let dst = self.relation.row_mut(t.rel as usize, dim);
        for (g, &x) in dst.iter_mut().zip(emb.relation.row(t.rel as usize)) {
            *g += 3.0 * lambda * x * x * x.signum();
        }
    }

    /// Materialise the deferred `LossMode::Full` entity gradients:
    /// `G_c += Σ_s p_s[c] · q_s`, entity rows outermost so each row
    /// stays cache-resident across all sides of the shard. The side
    /// order `s` is ascending — fixed — so the sums are a pure
    /// function of the shard's input.
    fn flush_full(&mut self, num_entities: usize, dim: usize) {
        if self.n_sides == 0 {
            return;
        }
        self.entity.mark_dense(num_entities);
        let q_rows = &self.q_rows[..self.n_sides * dim];
        for (c, g_row) in self
            .entity
            .grad
            .chunks_exact_mut(dim)
            .enumerate()
            .take(num_entities)
        {
            for (s, q_s) in q_rows.chunks_exact(dim).enumerate() {
                vecops::axpy(self.p_rows[s * num_entities + c], q_s, g_row);
            }
        }
        self.n_sides = 0;
    }

    fn merge_from(&mut self, src: &Shard, dim: usize) {
        self.loss += src.loss;
        self.sides += src.sides;
        self.entity.merge_from(&src.entity, dim);
        self.relation.merge_from(&src.relation, dim);
    }

    fn clear(&mut self) {
        self.loss = 0.0;
        self.sides = 0;
        self.entity.clear();
        self.relation.clear();
    }
}

/// Reusable per-shard accumulators for [`train_minibatch_parallel`] —
/// one set per trainer, sized lazily (the data-parallel analogue of
/// [`crate::block::BlockScratch`]).
#[derive(Default)]
pub struct GradShards {
    /// Live shard buffers — the window one super-step accumulates into.
    shards: Vec<UnsafeCell<Shard>>,
    /// Running batch total: each super-step's reduced window folds into
    /// here (ascending step order), and the optimizer reads from here.
    root: Shard,
}

impl GradShards {
    /// Fresh accumulator set; shards are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        while self.shards.len() < n {
            self.shards.push(UnsafeCell::new(Shard::default()));
        }
    }
}

/// Shared view of the shard cells for the parallel region.
struct ShardCells<'a>(&'a [UnsafeCell<Shard>]);
// SAFETY: pool task index `s` is claimed by exactly one executor and
// touches exactly `cells.0[s]`; no two tasks alias a shard.
// audit:allow(W406): per-index exclusive access under the pool barrier
unsafe impl Sync for ShardCells<'_> {}

impl ShardCells<'_> {
    /// SAFETY: the caller must be the sole accessor of shard `s` for
    /// the lifetime of the returned borrow. Accessed through a method
    /// so closures capture the `Sync` wrapper, not its non-Sync field
    /// (edition 2021 closures capture fields precisely).
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard(&self, s: usize) -> &mut Shard {
        // SAFETY: exclusivity is the caller's contract (doc above).
        unsafe { &mut *self.0[s].get() }
    }
}

/// One data-parallel pass over a minibatch: shard gradients on the
/// pool, tree-reduce, apply once. Returns the mean per-side loss.
///
/// Bit-identical for every pool size — see the module docs for the
/// argument. N3 regularisation (`n3_lambda > 0`) is folded into the
/// batch gradient. `neg` supplies the filtered-negative context for
/// [`LossMode::NegSampling`]; `None` falls back to target-excluded
/// uniform sampling.
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch_parallel(
    model: &BlockModel,
    emb: &mut Embeddings,
    opt_entity: &mut dyn Optimizer,
    opt_relation: &mut dyn Optimizer,
    batch: &[Triple],
    mode: LossMode,
    neg: Option<&NegCtx>,
    n3_lambda: f32,
    rng: &mut Rng,
    pool: &ThreadPool,
    state: &mut GradShards,
) -> f32 {
    if batch.is_empty() {
        return 0.0;
    }
    let dim = emb.dim();
    let num_shards = batch.len().div_ceil(SHARD_TRIPLES);
    // Full-softmax shards are dense, so only a bounded window of them
    // is live at once and the batch runs as super-steps over that
    // window; sampled shards are sparse and all stay live. The window
    // size is a machine-independent constant, keeping the reduction
    // shape a pure function of the batch length.
    let window = match mode {
        LossMode::Full => num_shards.min(FULL_LIVE_SHARDS),
        LossMode::Sampled { .. } => num_shards,
        LossMode::NegSampling { .. } => num_shards.min(NEG_LIVE_SHARDS),
    };
    state.ensure(window);
    // One parent draw per batch; shard RNGs derive from (base, s) the
    // same way `Rng::fork` mixes streams, so the negative samples a
    // shard draws are a function of the shard index alone.
    let base = rng.next_u64();

    let GradShards { shards, root } = state;
    root.entity.ensure(emb.num_entities(), dim);
    root.relation.ensure(emb.num_relations(), dim);

    let mut step_base = 0;
    while step_base < num_shards {
        let count = window.min(num_shards - step_base);
        {
            let emb_ref: &Embeddings = emb;
            let cells = ShardCells(&shards[..count]);
            let cells_ref = &cells;
            pool.run(count, |k| {
                // SAFETY: task `k` is the sole accessor of buffer `k`.
                let shard = unsafe { cells_ref.shard(k) };
                let s = step_base + k;
                let lo = s * SHARD_TRIPLES;
                let hi = (lo + SHARD_TRIPLES).min(batch.len());
                let mut srng =
                    Rng::seed_from_u64(base ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                shard.accumulate(
                    model,
                    emb_ref,
                    &batch[lo..hi],
                    mode,
                    neg,
                    n3_lambda,
                    &mut srng,
                );
            });
        }

        // Fixed tree reduction within the super-step: stride doubling
        // on the buffer index (= shard index offset by `step_base`).
        // The tree shape depends only on the step's shard count, so the
        // floating-point sums are bit-identical regardless of how the
        // pool scheduled the shards above.
        let mut stride = 1;
        while stride < count {
            let mut i = 0;
            while i + stride < count {
                // SAFETY: `i != i + stride`; both cells are exclusively
                // ours (the parallel region is over).
                let (dst, src) = unsafe { (&mut *shards[i].get(), &*shards[i + stride].get()) };
                dst.merge_from(src, dim);
                i += 2 * stride;
            }
            stride *= 2;
        }

        // Fold the reduced super-step into the running batch total —
        // ascending step order, another fixed shape — and re-zero the
        // window for the next step.
        // SAFETY: the parallel region is over; this thread owns cell 0.
        root.merge_from(unsafe { &*shards[0].get() }, dim);
        for cell in &mut shards[..count] {
            cell.get_mut().clear();
        }
        step_base += count;
    }

    // Apply the merged gradient once per touched row, ascending — a
    // fixed order, and one optimizer pass per batch instead of one per
    // example side.
    root.entity.touched.sort_unstable();
    root.relation.touched.sort_unstable();
    for &r in &root.entity.touched {
        opt_entity.step_at(
            emb.entity.as_mut_slice(),
            r as usize * dim,
            root.entity.row(r as usize, dim),
        );
    }
    for &r in &root.relation.touched {
        opt_relation.step_at(
            emb.relation.as_mut_slice(),
            r as usize * dim,
            root.relation.row(r as usize, dim),
        );
    }
    // Divide by the sides actually trained: 2·len for every mode but
    // Bernoulli corruption, which draws one side per triple.
    let mean = root.loss / root.sides.max(1) as f32;

    // Restore the all-zero invariant for the next batch.
    root.clear();
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::evaluate_loss;
    use crate::loss::Corruption;
    use eras_data::FilterIndex;
    use eras_linalg::Adagrad;
    use eras_sf::zoo;

    fn planted(n: usize) -> Vec<Triple> {
        (0..n as u32)
            .map(|i| Triple::new(i % 40, i % 3, (i * 7 + 1) % 40))
            .collect()
    }

    fn run_training(
        pool_size: usize,
        mode: LossMode,
        n3: f32,
        batch_len: usize,
        steps: usize,
    ) -> (Embeddings, f32) {
        let pool = ThreadPool::new(pool_size);
        let mut rng = Rng::seed_from_u64(99);
        let mut emb = Embeddings::init(40, 3, 16, &mut rng);
        let model = BlockModel::universal(zoo::complex(), 3);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 1e-4);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 1e-4);
        let mut state = GradShards::new();
        let data = planted(batch_len);
        let filter = FilterIndex::from_triples(data.iter().copied());
        let neg_ctx = match mode {
            LossMode::NegSampling {
                corruption: Corruption::Bernoulli,
                ..
            } => NegCtx::bernoulli(&filter, &data, 3),
            _ => NegCtx::uniform(&filter),
        };
        let neg = matches!(mode, LossMode::NegSampling { .. }).then_some(&neg_ctx);
        let mut loss = 0.0;
        for _ in 0..steps {
            loss = train_minibatch_parallel(
                &model, &mut emb, &mut opt_e, &mut opt_r, &data, mode, neg, n3, &mut rng, &pool,
                &mut state,
            );
        }
        (emb, loss)
    }

    fn assert_bit_identical_across_pool_sizes(batch_len: usize, steps: usize) {
        for mode in [
            LossMode::Full,
            LossMode::Sampled { negatives: 8 },
            LossMode::NegSampling {
                negatives: 4,
                gamma: 6.0,
                adversarial_temp: 1.0,
                corruption: Corruption::Uniform,
            },
            LossMode::NegSampling {
                negatives: 4,
                gamma: 6.0,
                adversarial_temp: 0.0,
                corruption: Corruption::Bernoulli,
            },
        ] {
            let (ref_emb, ref_loss) = run_training(1, mode, 1e-3, batch_len, steps);
            for threads in [2usize, 3, 8] {
                let (emb, loss) = run_training(threads, mode, 1e-3, batch_len, steps);
                assert_eq!(
                    ref_emb.entity.as_slice(),
                    emb.entity.as_slice(),
                    "entity table diverged at {threads} threads ({mode:?})"
                );
                assert_eq!(
                    ref_emb.relation.as_slice(),
                    emb.relation.as_slice(),
                    "relation table diverged at {threads} threads ({mode:?})"
                );
                assert_eq!(ref_loss, loss, "loss diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn bit_identical_across_pool_sizes() {
        assert_bit_identical_across_pool_sizes(100, 10);
    }

    #[test]
    fn bit_identical_across_pool_sizes_with_multiple_super_steps() {
        // 300 triples → 10 shards → two Full-mode super-steps over the
        // 8-wide window (the second with a partial count): the in-step
        // tree plus the cross-step fold must stay a pure function of
        // the batch length, for full and partial windows alike.
        assert!(300usize.div_ceil(SHARD_TRIPLES) > FULL_LIVE_SHARDS);
        assert_bit_identical_across_pool_sizes(300, 3);
    }

    #[test]
    fn full_mode_learns() {
        let pool = ThreadPool::new(4);
        let mut rng = Rng::seed_from_u64(7);
        let mut emb = Embeddings::init(40, 3, 16, &mut rng);
        let model = BlockModel::universal(zoo::complex(), 3);
        let data = planted(60);
        let before = evaluate_loss(&model, &emb, &data);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.2, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.2, 0.0);
        let mut state = GradShards::new();
        for _ in 0..40 {
            train_minibatch_parallel(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                &data,
                LossMode::Full,
                None,
                0.0,
                &mut rng,
                &pool,
                &mut state,
            );
        }
        let after = evaluate_loss(&model, &emb, &data);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn neg_sampling_mode_learns() {
        let pool = ThreadPool::new(4);
        let mut rng = Rng::seed_from_u64(13);
        let mut emb = Embeddings::init(40, 3, 16, &mut rng);
        let model = BlockModel::universal(zoo::complex(), 3);
        let data = planted(60);
        let filter = FilterIndex::from_triples(data.iter().copied());
        let neg_ctx = NegCtx::uniform(&filter);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.2, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.2, 0.0);
        let mut state = GradShards::new();
        let mode = LossMode::NegSampling {
            negatives: 8,
            gamma: 4.0,
            adversarial_temp: 1.0,
            corruption: Corruption::Uniform,
        };
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..60 {
            last = train_minibatch_parallel(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                &data,
                mode,
                Some(&neg_ctx),
                0.0,
                &mut rng,
                &pool,
                &mut state,
            );
            if step == 0 {
                first = last;
            }
        }
        assert!(last < first * 0.8, "neg-sampling loss {first} -> {last}");
    }

    #[test]
    fn sampled_mode_learns() {
        let pool = ThreadPool::new(3);
        let mut rng = Rng::seed_from_u64(11);
        let mut emb = Embeddings::init(40, 3, 16, &mut rng);
        let model = BlockModel::universal(zoo::simple(), 3);
        let data = planted(60);
        let before = evaluate_loss(&model, &emb, &data);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.2, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.2, 0.0);
        let mut state = GradShards::new();
        for _ in 0..60 {
            train_minibatch_parallel(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                &data,
                LossMode::Sampled { negatives: 8 },
                None,
                0.0,
                &mut rng,
                &pool,
                &mut state,
            );
        }
        let after = evaluate_loss(&model, &emb, &data);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2);
        let mut rng = Rng::seed_from_u64(0);
        let mut emb = Embeddings::init(8, 2, 8, &mut rng);
        let before = emb.entity.as_slice().to_vec();
        let model = BlockModel::universal(zoo::distmult(4), 2);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        let mut state = GradShards::new();
        let loss = train_minibatch_parallel(
            &model,
            &mut emb,
            &mut opt_e,
            &mut opt_r,
            &[],
            LossMode::Full,
            None,
            0.0,
            &mut rng,
            &pool,
            &mut state,
        );
        assert_eq!(loss, 0.0);
        assert_eq!(emb.entity.as_slice(), &before[..]);
    }
}
