//! Gradient containers filled by the trainers' pure gradient kernels.
//!
//! Each trainer exposes its closed-form gradients through a `*_grads`
//! method that fills one of these structs *without touching any
//! parameter* — the `train_epoch` loops then hand the pieces to their
//! optimizers. Keeping the gradient math side-effect free is what lets
//! [`crate::contract`] finite-difference check the exact code the
//! training loops run, instead of a re-derived copy of the formulas.

/// Gradients of a translational / rotational distance with respect to
/// one triple's three parameter rows (TransE, RotatE).
#[derive(Debug, Clone)]
pub struct TripleGrads {
    /// ∂dist/∂(head row).
    pub head: Vec<f32>,
    /// ∂dist/∂(relation row).
    pub rel: Vec<f32>,
    /// ∂dist/∂(tail row).
    pub tail: Vec<f32>,
}

impl TripleGrads {
    /// Zero-filled buffers for embedding dimension `dim`.
    pub fn new(dim: usize) -> Self {
        TripleGrads {
            head: vec![0.0; dim],
            rel: vec![0.0; dim],
            tail: vec![0.0; dim],
        }
    }
}

/// TransH's distance gradients: the three rows plus the hyperplane
/// normal `w_r`.
#[derive(Debug, Clone)]
pub struct TransHGrads {
    /// ∂dist/∂(head row).
    pub head: Vec<f32>,
    /// ∂dist/∂(relation row).
    pub rel: Vec<f32>,
    /// ∂dist/∂(tail row).
    pub tail: Vec<f32>,
    /// ∂dist/∂(normal `w_r`).
    pub normal: Vec<f32>,
}

impl TransHGrads {
    /// Zero-filled buffers for embedding dimension `dim`.
    pub fn new(dim: usize) -> Self {
        TransHGrads {
            head: vec![0.0; dim],
            rel: vec![0.0; dim],
            tail: vec![0.0; dim],
            normal: vec![0.0; dim],
        }
    }
}

/// One 1-vs-all side step of a query-vector model (HolE, QuatE): the
/// loss, the query vector `q`, the softmax residual over the candidate
/// list, and the chain-rule gradients of the anchor and relation rows.
/// Candidate `slot`'s entity row gradient is `resid[slot] · q`.
#[derive(Debug, Clone)]
pub struct SideGrads {
    /// Multiclass log-loss of the step.
    pub loss: f32,
    /// Query vector (`score(c) = ⟨q, E[c]⟩`).
    pub q: Vec<f32>,
    /// Softmax residual per candidate slot (`softmax − onehot`).
    pub resid: Vec<f32>,
    /// ∂loss/∂(anchor entity row).
    pub anchor: Vec<f32>,
    /// ∂loss/∂(relation row).
    pub rel: Vec<f32>,
}

impl SideGrads {
    /// Zero-filled buffers for embedding dimension `dim`.
    pub fn new(dim: usize) -> Self {
        SideGrads {
            loss: 0.0,
            q: vec![0.0; dim],
            resid: Vec::new(),
            anchor: vec![0.0; dim],
            rel: vec![0.0; dim],
        }
    }
}

/// MlpE's side step: the [`SideGrads`] pieces plus the network-layer
/// cotangents. Row gradients of the layers are outer products:
/// `∂loss/∂W2[i] = g_q[i] · hid`, `∂loss/∂W1[j] = d_hid[j] · [h ; r]`,
/// `∂loss/∂b2 = g_q`, `∂loss/∂b1 = d_hid`.
#[derive(Debug, Clone)]
pub struct MlpSideGrads {
    /// Multiclass log-loss of the step.
    pub loss: f32,
    /// Query vector (network output).
    pub q: Vec<f32>,
    /// Softmax residual per candidate slot.
    pub resid: Vec<f32>,
    /// ∂loss/∂(anchor entity row).
    pub anchor: Vec<f32>,
    /// ∂loss/∂(relation row).
    pub rel: Vec<f32>,
    /// Post-ReLU hidden activations (forward value, for W2 updates).
    pub hid: Vec<f32>,
    /// ∂loss/∂q — also the bias-2 gradient.
    pub g_q: Vec<f32>,
    /// ReLU-masked hidden cotangent — also the bias-1 gradient.
    pub d_hid: Vec<f32>,
}

impl MlpSideGrads {
    /// Zero-filled buffers for dimension `dim` and hidden width `hidden`.
    pub fn new(dim: usize, hidden: usize) -> Self {
        MlpSideGrads {
            loss: 0.0,
            q: vec![0.0; dim],
            resid: Vec::new(),
            anchor: vec![0.0; dim],
            rel: vec![0.0; dim],
            hid: vec![0.0; hidden],
            g_q: vec![0.0; dim],
            d_hid: vec![0.0; hidden],
        }
    }
}

/// TuckER's full-softmax tail step. The per-entity row gradient is the
/// outer product `resid[c] · v`; the core gradient is dense (`d³`).
#[derive(Debug, Clone)]
pub struct TuckErGrads {
    /// Multiclass log-loss of the step.
    pub loss: f32,
    /// Tail query vector `v = W ×₁ h ×₂ r`.
    pub v: Vec<f32>,
    /// Softmax residual over all entities.
    pub resid: Vec<f32>,
    /// ∂loss/∂(head row).
    pub head: Vec<f32>,
    /// ∂loss/∂(relation row).
    pub rel: Vec<f32>,
    /// ∂loss/∂W, dense `d³` in the core's own layout.
    pub core: Vec<f32>,
}

impl TuckErGrads {
    /// Zero-filled buffers for dimension `dim` and `num_entities`.
    pub fn new(dim: usize, num_entities: usize) -> Self {
        TuckErGrads {
            loss: 0.0,
            v: vec![0.0; dim],
            resid: vec![0.0; num_entities],
            head: vec![0.0; dim],
            rel: vec![0.0; dim],
            core: vec![0.0; dim * dim * dim],
        }
    }
}
