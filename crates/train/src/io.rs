//! Embedding persistence: a small self-describing binary format.
//!
//! Layout (little-endian): magic `b"ERAS"`, format version `u32`, then
//! `num_entities`, `num_relations`, `dim` as `u64`, then the entity table
//! and the relation table as raw `f32` rows. Written atomically enough
//! for a CLI tool (write then rename is left to callers that need it).

use crate::embeddings::Embeddings;
use eras_linalg::Matrix;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ERAS";
const VERSION: u32 = 1;

/// Errors from loading an embedding file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not an embedding file, or an unsupported version.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialise embeddings to a writer.
pub fn write_embeddings<W: Write>(mut w: W, emb: &Embeddings) -> Result<(), IoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    for v in [
        emb.num_entities() as u64,
        emb.num_relations() as u64,
        emb.dim() as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    for table in [&emb.entity, &emb.relation] {
        for &x in table.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialise embeddings from a reader.
pub fn read_embeddings<R: Read>(mut r: R) -> Result<Embeddings, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Format(
            "bad magic; not an ERAS embedding file".into(),
        ));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let mut u64buf = [0u8; 8];
    let mut dims = [0u64; 3];
    for d in &mut dims {
        r.read_exact(&mut u64buf)?;
        *d = u64::from_le_bytes(u64buf);
    }
    let [ne, nr, dim] = dims.map(|v| v as usize);
    if dim == 0 || ne == 0 {
        return Err(IoError::Format("degenerate shape".into()));
    }
    let mut read_table = |rows: usize| -> Result<Matrix, IoError> {
        let mut data = vec![0.0f32; rows * dim];
        let mut f32buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut f32buf)?;
            *x = f32::from_le_bytes(f32buf);
        }
        Ok(Matrix::from_vec(rows, dim, data))
    };
    let entity = read_table(ne)?;
    let relation = read_table(nr)?;
    Ok(Embeddings { entity, relation })
}

/// Save embeddings to a file path.
pub fn save(path: &Path, emb: &Embeddings) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_embeddings(std::io::BufWriter::new(file), emb)
}

/// Load embeddings from a file path.
pub fn load(path: &Path) -> Result<Embeddings, IoError> {
    let file = std::fs::File::open(path)?;
    read_embeddings(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::Rng;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(7, 3, 12, &mut rng);
        let mut buf = Vec::new();
        write_embeddings(&mut buf, &emb).unwrap();
        let back = read_embeddings(buf.as_slice()).unwrap();
        assert_eq!(back.num_entities(), 7);
        assert_eq!(back.num_relations(), 3);
        assert_eq!(back.dim(), 12);
        assert_eq!(back.entity.as_slice(), emb.entity.as_slice());
        assert_eq!(back.relation.as_slice(), emb.relation.as_slice());
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE0000000000000000000000000000".to_vec();
        assert!(matches!(
            read_embeddings(buf.as_slice()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(4, 2, 8, &mut rng);
        let mut buf = Vec::new();
        write_embeddings(&mut buf, &emb).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_embeddings(buf.as_slice()),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(5, 2, 4, &mut rng);
        let path = std::env::temp_dir().join(format!("eras_io_test_{}.bin", std::process::id()));
        save(&path, &emb).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.entity.as_slice(), emb.entity.as_slice());
        std::fs::remove_file(&path).ok();
    }
}
