//! Model persistence: self-describing binary formats.
//!
//! Two formats share the magic `b"ERAS"` and a little-endian layout:
//!
//! - **v1** — embeddings only: `num_entities`, `num_relations`, `dim` as
//!   `u64`, then the entity and relation tables as raw `f32` rows. Kept
//!   for forward compatibility; v1 files still load as embeddings-only
//!   via [`load`] / [`read_embeddings`].
//! - **v2** — a complete [`Snapshot`] of a trained link-prediction model:
//!   entity/relation vocabularies, the searched `BlockSf` structures with
//!   the relation→group assignment, the embedding tables, and the known
//!   true triples used to build the serving-time filter index. This is
//!   the format `eras serve` loads.
//!
//! Both save paths are **atomic**: the bytes are written to a sibling
//! temporary file, fsynced, and renamed over the destination, so a crash
//! mid-save can never leave a torn file at the target path. A truncated
//! or corrupted file — v1 or v2 — loads as a clean [`IoError::Format`],
//! never a panic or an over-allocation.
//!
//! Every path in this module carries [`eras_linalg::faults`] injection
//! sites (reads, writes, torn renames, snapshot opens). Without the
//! `fault-hook` feature each check compiles to a constant `None`.

use crate::block::BlockModel;
use crate::embeddings::Embeddings;
use eras_data::vocab::Vocab;
use eras_data::Triple;
use eras_linalg::{faults, Matrix};
use eras_sf::{BlockSf, Op};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"ERAS";
const VERSION: u32 = 1;
const VERSION_V2: u32 = 2;

/// Hard cap on any single length field in a v2 file. A corrupt header
/// can therefore never request a pathological allocation; real models
/// stay far below this.
pub(crate) const MAX_LEN: u64 = 1 << 28;

/// Errors from loading a model file.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a model file, an unsupported version, or a corrupt/truncated
    /// body.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl IoError {
    /// Whether retrying the operation could plausibly succeed. I/O
    /// errors are transient (the file may reappear, the disk may
    /// recover); format errors are permanent — re-reading a corrupt
    /// file cannot fix it.
    pub fn is_transient(&self) -> bool {
        matches!(self, IoError::Io(_))
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Serialise embeddings to a writer (format v1).
pub fn write_embeddings<W: Write>(mut w: W, emb: &Embeddings) -> Result<(), IoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    for v in [
        emb.num_entities() as u64,
        emb.num_relations() as u64,
        emb.dim() as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    for table in [&emb.entity, &emb.relation] {
        write_f32_table(&mut w, table)?;
    }
    Ok(())
}

/// Deserialise embeddings from a reader (format v1). Truncation and
/// corruption surface as [`IoError::Format`], same as the v2 loader.
pub fn read_embeddings<R: Read>(r: R) -> Result<Embeddings, IoError> {
    let mut r = FormatReader { inner: r };
    let magic = r.bytes::<4>()?;
    if &magic != MAGIC {
        return Err(IoError::Format(
            "bad magic; not an ERAS embedding file".into(),
        ));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let mut dims = [0u64; 3];
    for d in &mut dims {
        *d = r.len_u64("embedding shape")?;
    }
    let [ne, nr, dim] = dims.map(|v| v as usize);
    if dim == 0 || ne == 0 {
        return Err(IoError::Format("degenerate shape".into()));
    }
    let entity = r.f32_table(ne, dim)?;
    let relation = r.f32_table(nr, dim)?;
    Ok(Embeddings { entity, relation })
}

/// Save embeddings to a file path (format v1), atomically.
pub fn save(path: &Path, emb: &Embeddings) -> Result<(), IoError> {
    let _span = eras_obs::span!("io.save_embeddings", entities = emb.num_entities());
    atomic_write(path, |w| write_embeddings(w, emb))
}

/// Load embeddings from a file path (format v1).
pub fn load(path: &Path) -> Result<Embeddings, IoError> {
    let _span = eras_obs::span!("io.load_embeddings");
    if faults::check(faults::Site::SnapshotOpen).is_some() {
        return Err(IoError::Io(faults::injected_io_error(
            faults::Site::SnapshotOpen,
        )));
    }
    let file = std::fs::File::open(path)?;
    read_embeddings(std::io::BufReader::new(file))
}

// ---------------------------------------------------------------------------
// Snapshot format v2
// ---------------------------------------------------------------------------

/// A complete trained link-prediction model: everything a serving process
/// needs to answer `(h, r, ?)` / `(?, r, t)` queries with no access to
/// the original dataset files.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Dataset / model name (informational).
    pub name: String,
    /// Entity vocabulary; row `i` of `embeddings.entity` is entity `i`.
    pub entities: Vocab,
    /// Relation vocabulary; row `r` of `embeddings.relation` is relation `r`.
    pub relations: Vocab,
    /// The searched scoring-function structures, one per relation group.
    pub sfs: Vec<BlockSf>,
    /// Relation → group assignment (the paper's `B`); length equals the
    /// relation vocabulary.
    pub assignment: Vec<u8>,
    /// Trained embedding tables.
    pub embeddings: Embeddings,
    /// Known true triples (typically train + valid) used to build the
    /// filtered-ranking index at serving time.
    pub known: Vec<Triple>,
}

impl Snapshot {
    /// Assemble a snapshot from training artefacts. `known` is the triple
    /// set a server should filter against (usually train + valid).
    pub fn new(
        name: &str,
        entities: Vocab,
        relations: Vocab,
        model: &BlockModel,
        embeddings: Embeddings,
        known: Vec<Triple>,
    ) -> Snapshot {
        Snapshot {
            name: name.to_owned(),
            entities,
            relations,
            sfs: model.sfs().to_vec(),
            assignment: model.assignment().to_vec(),
            embeddings,
            known,
        }
    }

    /// Reconstruct the scoring model this snapshot was trained with.
    pub fn block_model(&self) -> BlockModel {
        BlockModel::relation_aware(self.sfs.clone(), self.assignment.clone())
    }

    /// Internal consistency check; every loaded snapshot satisfies this.
    // audit:allow(E701): sfs[0] is guarded by the is_empty check just
    // above it; everything else returns Err
    pub fn validate(&self) -> Result<(), String> {
        let ne = self.entities.len();
        let nr = self.relations.len();
        if ne == 0 {
            return Err("snapshot has no entities".into());
        }
        if nr == 0 {
            return Err("snapshot has no relations".into());
        }
        if self.embeddings.num_entities() != ne {
            return Err(format!(
                "entity table has {} rows for {} vocabulary entries",
                self.embeddings.num_entities(),
                ne
            ));
        }
        if self.embeddings.num_relations() != nr {
            return Err(format!(
                "relation table has {} rows for {} vocabulary entries",
                self.embeddings.num_relations(),
                nr
            ));
        }
        if self.sfs.is_empty() {
            return Err("snapshot has no scoring functions".into());
        }
        let m = self.sfs[0].m();
        if self.sfs.iter().any(|sf| sf.m() != m) {
            return Err("scoring functions disagree on block count M".into());
        }
        if self.embeddings.dim() == 0 || !self.embeddings.dim().is_multiple_of(m) {
            return Err(format!(
                "dim {} is not divisible by M={m}",
                self.embeddings.dim()
            ));
        }
        if self.assignment.len() != nr {
            return Err(format!(
                "assignment has {} entries for {} relations",
                self.assignment.len(),
                nr
            ));
        }
        let groups = self.sfs.len() as u8;
        if self.assignment.iter().any(|&g| g >= groups) {
            return Err(format!("assignment references group >= {groups}"));
        }
        for t in &self.known {
            if t.head as usize >= ne || t.tail as usize >= ne {
                return Err(format!("known triple {t:?}: entity id out of range"));
            }
            if t.rel as usize >= nr {
                return Err(format!("known triple {t:?}: relation id out of range"));
            }
        }
        Ok(())
    }
}

/// Serialise a snapshot to a writer (format v2).
pub fn write_snapshot<W: Write>(mut w: W, snap: &Snapshot) -> Result<(), IoError> {
    snap.validate().map_err(IoError::Format)?;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    write_str(&mut w, &snap.name)?;
    write_vocab(&mut w, &snap.entities)?;
    write_vocab(&mut w, &snap.relations)?;
    // Scoring functions: group count, M, then M² op indices per group.
    w.write_all(&[snap.sfs.len() as u8, snap.sfs[0].m() as u8])?;
    for sf in &snap.sfs {
        let indices: Vec<u8> = sf.to_indices().iter().map(|&k| k as u8).collect();
        w.write_all(&indices)?;
    }
    w.write_all(&snap.assignment)?;
    w.write_all(&(snap.embeddings.dim() as u64).to_le_bytes())?;
    write_f32_table(&mut w, &snap.embeddings.entity)?;
    write_f32_table(&mut w, &snap.embeddings.relation)?;
    w.write_all(&(snap.known.len() as u64).to_le_bytes())?;
    for t in &snap.known {
        for v in [t.head, t.rel, t.tail] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialise a snapshot from a reader (format v2). Truncation and
/// corruption surface as [`IoError::Format`].
pub fn read_snapshot<R: Read>(r: R) -> Result<Snapshot, IoError> {
    let mut r = FormatReader { inner: r };
    let magic = r.bytes::<4>()?;
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic; not an ERAS model file".into()));
    }
    let version = r.u32()?;
    if version == VERSION {
        return Err(IoError::Format(
            "version 1 file holds embeddings only; load it with io::load".into(),
        ));
    }
    if version != VERSION_V2 {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let name = r.string()?;
    let entities = r.vocab()?;
    let relations = r.vocab()?;

    let [n_groups, m] = r.bytes::<2>()?;
    let (n_groups, m) = (n_groups as usize, m as usize);
    if n_groups == 0 || !(1..=8).contains(&m) {
        return Err(IoError::Format(format!(
            "invalid structure header: {n_groups} groups, M={m}"
        )));
    }
    let mut sfs = Vec::with_capacity(n_groups);
    for g in 0..n_groups {
        let mut indices = vec![0usize; m * m];
        for slot in &mut indices {
            let [idx] = r.bytes::<1>()?;
            if idx as usize >= Op::alphabet_size(m) {
                return Err(IoError::Format(format!(
                    "group {g}: op index {idx} out of range for M={m}"
                )));
            }
            *slot = idx as usize;
        }
        sfs.push(BlockSf::from_indices(m, &indices));
    }

    let mut assignment = vec![0u8; relations.len()];
    r.fill(&mut assignment)?;

    let dim = r.len_u64("dim")? as usize;
    if dim == 0 || !dim.is_multiple_of(m) {
        return Err(IoError::Format(format!("dim {dim} not divisible by M={m}")));
    }
    let entity = r.f32_table(entities.len(), dim)?;
    let relation = r.f32_table(relations.len(), dim)?;

    let n_known = r.len_u64("triple count")? as usize;
    let mut known = Vec::new();
    for _ in 0..n_known {
        let (head, rel, tail) = (r.u32()?, r.u32()?, r.u32()?);
        known.push(Triple { head, rel, tail });
    }

    let snap = Snapshot {
        name,
        entities,
        relations,
        sfs,
        assignment,
        embeddings: Embeddings { entity, relation },
        known,
    };
    snap.validate().map_err(IoError::Format)?;
    Ok(snap)
}

/// Save a snapshot to a file path (format v2), atomically.
pub fn save_snapshot(path: &Path, snap: &Snapshot) -> Result<(), IoError> {
    let _span = eras_obs::span!(
        "io.save_snapshot",
        entities = snap.entities.len(),
        known = snap.known.len(),
    );
    atomic_write(path, |w| write_snapshot(w, snap))
}

/// Load a snapshot from a file path (format v2).
pub fn load_snapshot(path: &Path) -> Result<Snapshot, IoError> {
    let _span = eras_obs::span!("io.load_snapshot");
    if faults::check(faults::Site::SnapshotOpen).is_some() {
        return Err(IoError::Io(faults::injected_io_error(
            faults::Site::SnapshotOpen,
        )));
    }
    let file = std::fs::File::open(path)?;
    read_snapshot(std::io::BufReader::new(file))
}

/// Load a snapshot, retrying transient failures with exponential
/// backoff. Only [`IoError::Io`] is retried — a [`IoError::Format`]
/// error is permanent (re-reading a corrupt file cannot fix it) and is
/// returned immediately. `attempts` counts total tries, so `1` means no
/// retry; the sleep starts at `initial_backoff` and doubles per retry.
// audit:allow(E701): the 1.. loop has no break — every iteration either
// returns or retries, so the trailing unreachable! cannot execute
pub fn load_snapshot_retry(
    path: &Path,
    attempts: u32,
    initial_backoff: std::time::Duration,
) -> Result<Snapshot, IoError> {
    let mut backoff = initial_backoff;
    for attempt in 1.. {
        match load_snapshot(path) {
            Err(e) if e.is_transient() && attempt < attempts => {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            other => return other,
        }
    }
    unreachable!("the loop above always returns")
}

// ---------------------------------------------------------------------------
// Shared primitives
// ---------------------------------------------------------------------------

/// Write through a sibling temporary file, fsync, then rename into place,
/// so the destination path only ever holds a complete file.
pub(crate) fn atomic_write(
    path: &Path,
    write_fn: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        if faults::check(faults::Site::IoWrite).is_some() {
            return Err(IoError::Io(faults::injected_io_error(
                faults::Site::IoWrite,
            )));
        }
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        write_fn(&mut w)?;
        let file = w.into_inner().map_err(|e| IoError::Io(e.into_error()))?;
        file.sync_all()?;
        // Torn-write injection: simulate a crash on a filesystem whose
        // rename was not atomic by truncating the temp file to a seeded
        // fraction of its length and renaming it into place anyway. The
        // destination now holds a torn file — exactly the condition the
        // chaos harness asserts every loader rejects cleanly.
        if let Some(faults::Fault::Truncate { keep_num }) = faults::check(faults::Site::TornWrite) {
            let full = file.metadata()?.len();
            file.set_len(full * keep_num as u64 / 256)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)?;
            return Err(IoError::Io(faults::injected_io_error(
                faults::Site::TornWrite,
            )));
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `<name>.tmp.<pid>` next to `path` — same filesystem, so the rename is
/// atomic; pid-suffixed so concurrent processes never share a temp file.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "snapshot".into());
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

pub(crate) fn write_f32_table<W: Write>(w: &mut W, table: &Matrix) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(table.as_slice().len() * 4);
    for &x in table.as_slice() {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    w.write_all(&buf)?;
    Ok(())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), IoError> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn write_vocab<W: Write>(w: &mut W, vocab: &Vocab) -> Result<(), IoError> {
    w.write_all(&(vocab.len() as u64).to_le_bytes())?;
    for (_, name) in vocab.iter() {
        write_str(w, name)?;
    }
    Ok(())
}

/// Reader wrapper for the v2 body: every short read becomes a clean
/// [`IoError::Format`], and length fields are bounds-checked before any
/// allocation they drive.
pub(crate) struct FormatReader<R> {
    pub(crate) inner: R,
}

impl<R: Read> FormatReader<R> {
    pub(crate) fn fill(&mut self, buf: &mut [u8]) -> Result<(), IoError> {
        match faults::check(faults::Site::IoRead) {
            // A short read at end-of-file is indistinguishable from a
            // truncated file, so it surfaces the same way.
            Some(faults::Fault::ShortRead) => {
                return Err(IoError::Format(
                    "truncated snapshot (injected short read)".into(),
                ));
            }
            Some(_) => {
                return Err(IoError::Io(faults::injected_io_error(faults::Site::IoRead)));
            }
            None => {}
        }
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated snapshot".into())
            } else {
                IoError::Io(e)
            }
        })
    }

    pub(crate) fn bytes<const N: usize>(&mut self) -> Result<[u8; N], IoError> {
        let mut buf = [0u8; N];
        self.fill(&mut buf)?;
        Ok(buf)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.bytes::<4>()?))
    }

    pub(crate) fn len_u64(&mut self, what: &str) -> Result<u64, IoError> {
        let v = u64::from_le_bytes(self.bytes::<8>()?);
        if v > MAX_LEN {
            return Err(IoError::Format(format!("implausible {what}: {v}")));
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, IoError> {
        let len = self.u32()? as usize;
        if len as u64 > MAX_LEN {
            return Err(IoError::Format(format!("implausible string length {len}")));
        }
        let mut buf = vec![0u8; len];
        self.fill(&mut buf)?;
        String::from_utf8(buf).map_err(|_| IoError::Format("string is not UTF-8".into()))
    }

    fn vocab(&mut self) -> Result<Vocab, IoError> {
        let count = self.len_u64("vocabulary size")?;
        let mut vocab = Vocab::new();
        for i in 0..count {
            let name = self.string()?;
            let id = vocab.intern(&name);
            if u64::from(id) != i {
                return Err(IoError::Format(format!(
                    "duplicate vocabulary entry `{name}`"
                )));
            }
        }
        Ok(vocab)
    }

    // audit:allow(E701): c[0..4] indexes chunks_exact(4) chunks, and
    // from_vec's length always matches (bytes is rows*cols*4 exactly)
    pub(crate) fn f32_table(&mut self, rows: usize, cols: usize) -> Result<Matrix, IoError> {
        // Bound the *product* too: each factor can pass `len_u64` while
        // their product requests a pathological allocation.
        if (rows as u64)
            .checked_mul(cols as u64)
            .is_none_or(|n| n > MAX_LEN)
        {
            return Err(IoError::Format(format!(
                "implausible table shape {rows}x{cols}"
            )));
        }
        let mut bytes = vec![0u8; rows * cols * 4];
        self.fill(&mut bytes)?;
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::Rng;
    use eras_sf::zoo;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(7, 3, 12, &mut rng);
        let mut buf = Vec::new();
        write_embeddings(&mut buf, &emb).unwrap();
        let back = read_embeddings(buf.as_slice()).unwrap();
        assert_eq!(back.num_entities(), 7);
        assert_eq!(back.num_relations(), 3);
        assert_eq!(back.dim(), 12);
        assert_eq!(back.entity.as_slice(), emb.entity.as_slice());
        assert_eq!(back.relation.as_slice(), emb.relation.as_slice());
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE0000000000000000000000000000".to_vec();
        assert!(matches!(
            read_embeddings(buf.as_slice()),
            Err(IoError::Format(_))
        ));
    }

    /// Every prefix of a valid v1 file is a clean `Format` error, same
    /// contract as the v2 loader: truncation is corruption, not I/O.
    #[test]
    fn rejects_truncated_file() {
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(4, 2, 8, &mut rng);
        let mut buf = Vec::new();
        write_embeddings(&mut buf, &emb).unwrap();
        for cut in 0..buf.len() {
            match read_embeddings(&buf[..cut]) {
                Err(IoError::Format(_)) => {}
                other => panic!("prefix of {cut} bytes: expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_source_exposes_the_io_cause() {
        use std::error::Error as _;
        let io = IoError::Io(std::io::Error::new(
            std::io::ErrorKind::PermissionDenied,
            "disk on fire",
        ));
        let src = io.source().expect("Io carries a source");
        assert!(src.to_string().contains("disk on fire"));
        assert!(io.is_transient());

        let fmt = IoError::Format("bad magic".into());
        assert!(fmt.source().is_none(), "Format is the root cause");
        assert!(!fmt.is_transient());
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(5, 2, 4, &mut rng);
        let path = std::env::temp_dir().join(format!("eras_io_test_{}.bin", std::process::id()));
        save(&path, &emb).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.entity.as_slice(), emb.entity.as_slice());
        std::fs::remove_file(&path).ok();
    }

    fn sample_snapshot() -> Snapshot {
        let mut rng = Rng::seed_from_u64(9);
        let mut entities = Vocab::new();
        let mut relations = Vocab::new();
        for i in 0..9 {
            entities.intern(&format!("ent_{i}"));
        }
        for r in 0..4 {
            relations.intern(&format!("rel_{r}"));
        }
        let model =
            BlockModel::relation_aware(vec![zoo::complex(), zoo::simple()], vec![0, 1, 0, 1]);
        let embeddings = Embeddings::init(9, 4, 8, &mut rng);
        let known = vec![Triple::new(0, 0, 1), Triple::new(2, 3, 4)];
        Snapshot::new("unit", entities, relations, &model, embeddings, known)
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        let back = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(back.name, "unit");
        assert_eq!(back.entities.len(), 9);
        assert_eq!(back.entities.name(3), "ent_3");
        assert_eq!(back.relations.name(2), "rel_2");
        assert_eq!(back.sfs, snap.sfs);
        assert_eq!(back.assignment, snap.assignment);
        assert_eq!(
            back.embeddings.entity.as_slice(),
            snap.embeddings.entity.as_slice()
        );
        assert_eq!(
            back.embeddings.relation.as_slice(),
            snap.embeddings.relation.as_slice()
        );
        assert_eq!(back.known, snap.known);
    }

    #[test]
    fn snapshot_file_roundtrip_is_atomic() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join(format!("eras_snap_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.eras");
        save_snapshot(&path, &snap).unwrap();
        // No temp residue: the only file is the destination.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["model.eras".to_string()], "{names:?}");
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.known, snap.known);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The crash-torn-file contract: every prefix of a valid snapshot
    /// loads as a clean `Format` error — no panic, no `Io` leak.
    #[test]
    fn truncated_snapshot_is_a_clean_format_error() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        for cut in 0..buf.len() {
            match read_snapshot(&buf[..cut]) {
                Err(IoError::Format(_)) => {}
                other => panic!("prefix of {cut} bytes: expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn v1_files_are_rejected_by_the_snapshot_loader_with_guidance() {
        let mut rng = Rng::seed_from_u64(4);
        let emb = Embeddings::init(4, 2, 8, &mut rng);
        let mut buf = Vec::new();
        write_embeddings(&mut buf, &emb).unwrap();
        match read_snapshot(buf.as_slice()) {
            Err(IoError::Format(m)) => assert!(m.contains("version 1"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_op_index_is_rejected() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &snap).unwrap();
        // The sf section starts right after the two vocabularies; flip the
        // first op byte to an out-of-range index (M=4 → alphabet 9).
        let sf_header = buf
            .windows(2)
            .position(|w| w == [2u8, 4u8])
            .expect("sf header");
        buf[sf_header + 2] = 200;
        match read_snapshot(buf.as_slice()) {
            Err(IoError::Format(m)) => assert!(m.contains("op index"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn implausible_length_fields_do_not_allocate() {
        // magic + version 2 + a name length of u32::MAX.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_snapshot(buf.as_slice()),
            Err(IoError::Format(_))
        ));
    }
}
