//! MlpE — a small neural (NNM) scorer standing in for ConvE/HypER.
//!
//! The paper's Table VI includes neural-network models (ConvE, HypER)
//! that project `(h, r)` through a learned network and score candidates
//! by inner product with the projection. A 2-D convolution stack is out
//! of proportion for this reproduction (DESIGN.md §2); MlpE keeps the
//! family's defining structure — a learned nonlinear projection
//!
//! ```text
//! score(h, r, t) = ⟨ W₂ · relu(W₁ · [h ; r] + b₁) + b₂ , t ⟩
//! ```
//!
//! — with exact manual gradients through both layers (finite-difference
//! checked). Like ConvE it can model any relation pattern but pays a
//! `O(d·H)` projection per query and gives up the bilinear models'
//! algebraic regularisation, which is exactly the trade-off the paper's
//! taxonomy (Table I) attributes to NNMs.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use eras_data::Triple;
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::softmax::log_loss_and_residual;
use eras_linalg::vecops;
use eras_linalg::{Matrix, Rng};

/// The MLP projection scorer.
#[derive(Debug, Clone)]
pub struct MlpE {
    /// First layer, `H × 2d`.
    w1: Matrix,
    /// First bias, `H`.
    b1: Vec<f32>,
    /// Second layer, `d × H`.
    w2: Matrix,
    /// Second bias, `d`.
    b2: Vec<f32>,
    hidden: usize,
    opt_w1: Adagrad,
    opt_b1: Adagrad,
    opt_w2: Adagrad,
    opt_b2: Adagrad,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    /// Negatives per positive in the sampled softmax.
    pub negatives: usize,
}

impl MlpE {
    /// Create with hidden width `hidden`.
    pub fn new(emb: &Embeddings, hidden: usize, lr: f32, negatives: usize, rng: &mut Rng) -> Self {
        let d = emb.dim();
        let w1 = Matrix::xavier_init(hidden, 2 * d, rng);
        let w2 = Matrix::xavier_init(d, hidden, rng);
        MlpE {
            opt_w1: Adagrad::new(w1.as_slice().len(), lr, 1e-5),
            opt_b1: Adagrad::new(hidden, lr, 0.0),
            opt_w2: Adagrad::new(w2.as_slice().len(), lr, 1e-5),
            opt_b2: Adagrad::new(d, lr, 0.0),
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), lr, 1e-5),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), lr, 1e-5),
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; d],
            hidden,
            negatives,
        }
    }

    /// One 1-vs-all sampled-softmax step. Returns the loss.
    fn train_side(
        &mut self,
        emb: &mut Embeddings,
        anchor: u32,
        rel: u32,
        target: u32,
        rng: &mut Rng,
    ) -> f32 {
        let d = emb.dim();
        let ne = emb.num_entities();
        let h_row: Vec<f32> = emb.entity.row(anchor as usize).to_vec();
        let r_row: Vec<f32> = emb.relation.row(rel as usize).to_vec();
        let (hid, q) = self.project_impl(&h_row, &r_row);

        let mut candidates = Vec::with_capacity(self.negatives + 1);
        candidates.push(target);
        for _ in 0..self.negatives {
            let mut c = rng.next_below(ne) as u32;
            if c == target {
                c = (c + 1) % ne as u32;
            }
            candidates.push(c);
        }
        let mut scores: Vec<f32> = candidates
            .iter()
            .map(|&c| vecops::dot(&q, emb.entity.row(c as usize)))
            .collect();
        let loss = log_loss_and_residual(&mut scores, 0);

        // g_q and candidate updates.
        let mut g_q = vec![0.0f32; d];
        let mut row_grad = vec![0.0f32; d];
        for (slot, &c) in candidates.iter().enumerate() {
            let resid = scores[slot];
            vecops::axpy(resid, emb.entity.row(c as usize), &mut g_q);
            for (g, &qv) in row_grad.iter_mut().zip(&q) {
                *g = resid * qv;
            }
            self.opt_entity
                .step_at(emb.entity.as_mut_slice(), c as usize * d, &row_grad);
        }

        // Layer 2: q = W2·hid + b2 → dW2 = g_q ⊗ hid ; db2 = g_q ;
        // d_hid = W2ᵀ g_q (masked by ReLU).
        let mut d_hid = vec![0.0f32; self.hidden];
        for i in 0..d {
            let gi = g_q[i];
            if gi != 0.0 {
                let row = self.w2.row(i);
                for j in 0..self.hidden {
                    d_hid[j] += gi * row[j];
                }
            }
        }
        // Apply W2/b2 updates.
        let mut w2_row_grad = vec![0.0f32; self.hidden];
        for i in 0..d {
            let gi = g_q[i];
            for (g, &hj) in w2_row_grad.iter_mut().zip(&hid) {
                *g = gi * hj;
            }
            self.opt_w2
                .step_at(self.w2.as_mut_slice(), i * self.hidden, &w2_row_grad);
        }
        self.opt_b2.step_at(&mut self.b2, 0, &g_q);

        // ReLU mask, then layer 1.
        for j in 0..self.hidden {
            if hid[j] <= 0.0 {
                d_hid[j] = 0.0;
            }
        }
        let mut grad_h = vec![0.0f32; d];
        let mut grad_r = vec![0.0f32; d];
        let mut w1_row_grad = vec![0.0f32; 2 * d];
        for j in 0..self.hidden {
            let gz = d_hid[j];
            if gz == 0.0 {
                continue;
            }
            let row = self.w1.row(j);
            vecops::axpy(gz, &row[..d], &mut grad_h);
            vecops::axpy(gz, &row[d..], &mut grad_r);
            for (g, &hv) in w1_row_grad[..d].iter_mut().zip(&h_row) {
                *g = gz * hv;
            }
            for (g, &rv) in w1_row_grad[d..].iter_mut().zip(&r_row) {
                *g = gz * rv;
            }
            self.opt_w1
                .step_at(self.w1.as_mut_slice(), j * 2 * d, &w1_row_grad);
        }
        self.opt_b1.step_at(&mut self.b1, 0, &d_hid);
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), anchor as usize * d, &grad_h);
        self.opt_relation
            .step_at(emb.relation.as_mut_slice(), rel as usize * d, &grad_r);
        loss
    }

    /// Forward pass returning `(hidden activations, query vector)`.
    fn project_impl(&self, h: &[f32], r: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let d = h.len();
        let mut hid = vec![0.0f32; self.hidden];
        for j in 0..self.hidden {
            let row = self.w1.row(j);
            let z = vecops::dot(&row[..d], h) + vecops::dot(&row[d..], r) + self.b1[j];
            hid[j] = z.max(0.0);
        }
        let mut q = self.b2.clone();
        for (i, qv) in q.iter_mut().enumerate() {
            *qv += vecops::dot(self.w2.row(i), &hid);
        }
        (hid, q)
    }

    /// One pass over the training set (tail prediction only, as ConvE
    /// trains; head queries at evaluation go through the same projection
    /// with a reversed lookup). Returns mean loss.
    pub fn train_epoch(&mut self, emb: &mut Embeddings, train: &[Triple], rng: &mut Rng) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f32;
        for &t in train {
            total += self.train_side(emb, t.head, t.rel, t.tail, rng);
            total += self.train_side(emb, t.tail, t.rel, t.head, rng);
        }
        total / (2.0 * train.len() as f32)
    }
}

impl ScoreModel for MlpE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let (_, q) = self.project_impl(emb.entity.row(h as usize), emb.relation.row(r as usize));
        emb.entity.matvec(&q, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        // Symmetric treatment: project (t, r) and score head candidates.
        // (MlpE trains both directions through the same network.)
        let (_, q) = self.project_impl(emb.entity.row(t as usize), emb.relation.row(r as usize));
        emb.entity.matvec(&q, out);
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        let (_, q) = self.project_impl(
            emb.entity.row(t.head as usize),
            emb.relation.row(t.rel as usize),
        );
        vecops::dot(&q, emb.entity.row(t.tail as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_consistency() {
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(9, 2, 8, &mut rng);
        let model = MlpE::new(&emb, 12, 0.05, 4, &mut rng);
        let mut out = vec![0.0f32; 9];
        model.score_all_tails(&emb, 3, 1, &mut out);
        for t in 0..9u32 {
            let s = model.score_triple(&emb, Triple::new(3, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_finite_differences_on_w1() {
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(6, 1, 4, &mut rng);
        let model = MlpE::new(&emb, 5, 0.05, 3, &mut rng);
        let (h, r, t) = (1u32, 0u32, 2u32);

        let loss_of = |m: &MlpE, e: &Embeddings| -> f32 {
            let (_, q) = m.project_impl(e.entity.row(h as usize), e.relation.row(r as usize));
            let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, e.entity.row(c))).collect();
            log_loss_and_residual(&mut scores, t as usize)
        };

        // Analytic: replicate the layer math with full candidates.
        let (hid, q) = model.project_impl(emb.entity.row(1), emb.relation.row(0));
        let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, emb.entity.row(c))).collect();
        let _ = log_loss_and_residual(&mut scores, t as usize);
        let mut g_q = vec![0.0f32; 4];
        for (c, &resid) in scores.iter().enumerate() {
            vecops::axpy(resid, emb.entity.row(c), &mut g_q);
        }
        let mut d_hid = [0.0f32; 5];
        for i in 0..4 {
            for j in 0..5 {
                d_hid[j] += g_q[i] * model.w2.get(i, j);
            }
        }
        for j in 0..5 {
            if hid[j] <= 0.0 {
                d_hid[j] = 0.0;
            }
        }
        // dW1[j][k] = d_hid[j] * input[k] with input = [h ; r].
        let input: Vec<f32> = emb
            .entity
            .row(1)
            .iter()
            .chain(emb.relation.row(0))
            .copied()
            .collect();

        let eps = 1e-3f32;
        for (j, k) in [(0usize, 0usize), (2, 3), (4, 7), (1, 5)] {
            let analytic = d_hid[j] * input[k];
            let mut plus = model.clone();
            let idx = j * 8 + k;
            plus.w1.as_mut_slice()[idx] += eps;
            let mut minus = model.clone();
            minus.w1.as_mut_slice()[idx] -= eps;
            let fd = (loss_of(&plus, &emb) - loss_of(&minus, &emb)) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 2e-2,
                "w1[{j},{k}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from_u64(3);
        let mut emb = Embeddings::init(12, 2, 8, &mut rng);
        let train: Vec<Triple> = (0..10u32)
            .map(|i| Triple::new(i, i % 2, (i + 3) % 12))
            .collect();
        let mut model = MlpE::new(&emb, 16, 0.1, 6, &mut rng);
        let first = model.train_epoch(&mut emb, &train, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&mut emb, &train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }
}
