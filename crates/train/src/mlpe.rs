//! MlpE — a small neural (NNM) scorer standing in for ConvE/HypER.
//!
//! The paper's Table VI includes neural-network models (ConvE, HypER)
//! that project `(h, r)` through a learned network and score candidates
//! by inner product with the projection. A 2-D convolution stack is out
//! of proportion for this reproduction (DESIGN.md §2); MlpE keeps the
//! family's defining structure — a learned nonlinear projection
//!
//! ```text
//! score(h, r, t) = ⟨ W₂ · relu(W₁ · [h ; r] + b₁) + b₂ , t ⟩
//! ```
//!
//! — with exact manual gradients through both layers (finite-difference
//! checked). Like ConvE it can model any relation pattern but pays a
//! `O(d·H)` projection per query and gives up the bilinear models'
//! algebraic regularisation, which is exactly the trade-off the paper's
//! taxonomy (Table I) attributes to NNMs.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::grads::MlpSideGrads;
use eras_data::Triple;
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::softmax::log_loss_and_residual;
use eras_linalg::vecops;
use eras_linalg::{Matrix, Rng};

/// The MLP projection scorer.
#[derive(Debug, Clone)]
pub struct MlpE {
    /// First layer, `H × 2d`.
    w1: Matrix,
    /// First bias, `H`.
    b1: Vec<f32>,
    /// Second layer, `d × H`.
    w2: Matrix,
    /// Second bias, `d`.
    b2: Vec<f32>,
    hidden: usize,
    opt_w1: Adagrad,
    opt_b1: Adagrad,
    opt_w2: Adagrad,
    opt_b2: Adagrad,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    /// Negatives per positive in the sampled softmax.
    pub negatives: usize,
}

impl MlpE {
    /// Create with hidden width `hidden`.
    pub fn new(emb: &Embeddings, hidden: usize, lr: f32, negatives: usize, rng: &mut Rng) -> Self {
        let d = emb.dim();
        let w1 = Matrix::xavier_init(hidden, 2 * d, rng);
        let w2 = Matrix::xavier_init(d, hidden, rng);
        MlpE {
            opt_w1: Adagrad::new(w1.as_slice().len(), lr, 1e-5),
            opt_b1: Adagrad::new(hidden, lr, 0.0),
            opt_w2: Adagrad::new(w2.as_slice().len(), lr, 1e-5),
            opt_b2: Adagrad::new(d, lr, 0.0),
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), lr, 1e-5),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), lr, 1e-5),
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; d],
            hidden,
            negatives,
        }
    }

    /// Pure gradients of one 1-vs-all step over an explicit candidate
    /// list (`candidates[0]` is the target). Reads `emb` and the network
    /// weights, writes only `g`; the sampled-softmax trainer and the
    /// gradient contract checker share this kernel. Layer gradients are
    /// the outer products documented on [`MlpSideGrads`].
    pub fn side_grads(
        &self,
        emb: &Embeddings,
        anchor: u32,
        rel: u32,
        candidates: &[u32],
        g: &mut MlpSideGrads,
    ) {
        let d = emb.dim();
        let h_row = emb.entity.row(anchor as usize);
        let r_row = emb.relation.row(rel as usize);
        let (hid, q) = self.project_impl(h_row, r_row);
        g.hid.copy_from_slice(&hid);
        g.q.copy_from_slice(&q);

        g.resid.clear();
        g.resid.extend(
            candidates
                .iter()
                .map(|&c| vecops::dot(&q, emb.entity.row(c as usize))),
        );
        g.loss = log_loss_and_residual(&mut g.resid, 0);

        vecops::zero(&mut g.g_q);
        for (slot, &c) in candidates.iter().enumerate() {
            vecops::axpy(g.resid[slot], emb.entity.row(c as usize), &mut g.g_q);
        }

        // Layer 2: q = W2·hid + b2 → d_hid = W2ᵀ g_q, then the ReLU mask.
        vecops::zero(&mut g.d_hid);
        for i in 0..d {
            let gi = g.g_q[i];
            if gi != 0.0 {
                let row = self.w2.row(i);
                for j in 0..self.hidden {
                    g.d_hid[j] += gi * row[j];
                }
            }
        }
        for j in 0..self.hidden {
            if hid[j] <= 0.0 {
                g.d_hid[j] = 0.0;
            }
        }
        // Layer 1 chain rule into the anchor and relation rows.
        vecops::zero(&mut g.anchor);
        vecops::zero(&mut g.rel);
        for j in 0..self.hidden {
            let gz = g.d_hid[j];
            if gz == 0.0 {
                continue;
            }
            let row = self.w1.row(j);
            vecops::axpy(gz, &row[..d], &mut g.anchor);
            vecops::axpy(gz, &row[d..], &mut g.rel);
        }
    }

    /// One 1-vs-all sampled-softmax step. Returns the loss.
    fn train_side(
        &mut self,
        emb: &mut Embeddings,
        anchor: u32,
        rel: u32,
        target: u32,
        rng: &mut Rng,
        g: &mut MlpSideGrads,
    ) -> f32 {
        let d = emb.dim();
        let ne = emb.num_entities();
        let h_row: Vec<f32> = emb.entity.row(anchor as usize).to_vec();
        let r_row: Vec<f32> = emb.relation.row(rel as usize).to_vec();

        let mut candidates = Vec::with_capacity(self.negatives + 1);
        candidates.push(target);
        for _ in 0..self.negatives {
            let mut c = rng.next_below(ne) as u32;
            if c == target {
                c = (c + 1) % ne as u32;
            }
            candidates.push(c);
        }
        self.side_grads(emb, anchor, rel, &candidates, g);

        // Candidate rows move by resid · q.
        let mut row_grad = vec![0.0f32; d];
        for (slot, &c) in candidates.iter().enumerate() {
            let resid = g.resid[slot];
            for (gr, &qv) in row_grad.iter_mut().zip(&g.q) {
                *gr = resid * qv;
            }
            self.opt_entity
                .step_at(emb.entity.as_mut_slice(), c as usize * d, &row_grad);
        }

        // W2 rows (g_q[i] · hid), then b2.
        let mut w2_row_grad = vec![0.0f32; self.hidden];
        for i in 0..d {
            let gi = g.g_q[i];
            for (gr, &hj) in w2_row_grad.iter_mut().zip(&g.hid) {
                *gr = gi * hj;
            }
            self.opt_w2
                .step_at(self.w2.as_mut_slice(), i * self.hidden, &w2_row_grad);
        }
        self.opt_b2.step_at(&mut self.b2, 0, &g.g_q);

        // W1 rows (d_hid[j] · [h ; r]), then b1.
        let mut w1_row_grad = vec![0.0f32; 2 * d];
        for j in 0..self.hidden {
            let gz = g.d_hid[j];
            if gz == 0.0 {
                continue;
            }
            for (gr, &hv) in w1_row_grad[..d].iter_mut().zip(&h_row) {
                *gr = gz * hv;
            }
            for (gr, &rv) in w1_row_grad[d..].iter_mut().zip(&r_row) {
                *gr = gz * rv;
            }
            self.opt_w1
                .step_at(self.w1.as_mut_slice(), j * 2 * d, &w1_row_grad);
        }
        self.opt_b1.step_at(&mut self.b1, 0, &g.d_hid);
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), anchor as usize * d, &g.anchor);
        self.opt_relation
            .step_at(emb.relation.as_mut_slice(), rel as usize * d, &g.rel);
        g.loss
    }

    /// Forward pass returning `(hidden activations, query vector)`.
    fn project_impl(&self, h: &[f32], r: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let d = h.len();
        let mut hid = vec![0.0f32; self.hidden];
        for j in 0..self.hidden {
            let row = self.w1.row(j);
            let z = vecops::dot(&row[..d], h) + vecops::dot(&row[d..], r) + self.b1[j];
            hid[j] = z.max(0.0);
        }
        let mut q = self.b2.clone();
        for (i, qv) in q.iter_mut().enumerate() {
            *qv += vecops::dot(self.w2.row(i), &hid);
        }
        (hid, q)
    }

    /// One pass over the training set (tail prediction only, as ConvE
    /// trains; head queries at evaluation go through the same projection
    /// with a reversed lookup). Returns mean loss.
    pub fn train_epoch(&mut self, emb: &mut Embeddings, train: &[Triple], rng: &mut Rng) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let mut g = MlpSideGrads::new(emb.dim(), self.hidden);
        let mut total = 0.0f32;
        for &t in train {
            total += self.train_side(emb, t.head, t.rel, t.tail, rng, &mut g);
            total += self.train_side(emb, t.tail, t.rel, t.head, rng, &mut g);
        }
        total / (2.0 * train.len() as f32)
    }

    /// Hidden width `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The network parameters flattened as `[W1, b1, W2, b2]` (used for
    /// checkpointing and by the gradient contract checker).
    pub fn net_param_vec(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(
            self.w1.as_slice().len() + self.b1.len() + self.w2.as_slice().len() + self.b2.len(),
        );
        v.extend_from_slice(self.w1.as_slice());
        v.extend_from_slice(&self.b1);
        v.extend_from_slice(self.w2.as_slice());
        v.extend_from_slice(&self.b2);
        v
    }

    /// Restore network parameters from a `[W1, b1, W2, b2]` flat vector.
    /// Panics on a length mismatch.
    pub fn set_net_params(&mut self, v: &[f32]) {
        let (n1, nb1, n2) = (
            self.w1.as_slice().len(),
            self.b1.len(),
            self.w2.as_slice().len(),
        );
        assert_eq!(v.len(), n1 + nb1 + n2 + self.b2.len(), "bad param vector");
        self.w1.as_mut_slice().copy_from_slice(&v[..n1]);
        self.b1.copy_from_slice(&v[n1..n1 + nb1]);
        self.w2
            .as_mut_slice()
            .copy_from_slice(&v[n1 + nb1..n1 + nb1 + n2]);
        self.b2.copy_from_slice(&v[n1 + nb1 + n2..]);
    }
}

impl ScoreModel for MlpE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let (_, q) = self.project_impl(emb.entity.row(h as usize), emb.relation.row(r as usize));
        emb.entity.matvec(&q, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        // Symmetric treatment: project (t, r) and score head candidates.
        // (MlpE trains both directions through the same network.)
        let (_, q) = self.project_impl(emb.entity.row(t as usize), emb.relation.row(r as usize));
        emb.entity.matvec(&q, out);
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        let (_, q) = self.project_impl(
            emb.entity.row(t.head as usize),
            emb.relation.row(t.rel as usize),
        );
        vecops::dot(&q, emb.entity.row(t.tail as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_consistency() {
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(9, 2, 8, &mut rng);
        let model = MlpE::new(&emb, 12, 0.05, 4, &mut rng);
        let mut out = vec![0.0f32; 9];
        model.score_all_tails(&emb, 3, 1, &mut out);
        for t in 0..9u32 {
            let s = model.score_triple(&emb, Triple::new(3, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_match_finite_differences_on_w1() {
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(6, 1, 4, &mut rng);
        let model = MlpE::new(&emb, 5, 0.05, 3, &mut rng);
        let (h, r, t) = (1u32, 0u32, 2u32);

        let loss_of = |m: &MlpE, e: &Embeddings| -> f32 {
            let (_, q) = m.project_impl(e.entity.row(h as usize), e.relation.row(r as usize));
            let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, e.entity.row(c))).collect();
            log_loss_and_residual(&mut scores, t as usize)
        };

        // Analytic: replicate the layer math with full candidates.
        let (hid, q) = model.project_impl(emb.entity.row(1), emb.relation.row(0));
        let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, emb.entity.row(c))).collect();
        let _ = log_loss_and_residual(&mut scores, t as usize);
        let mut g_q = vec![0.0f32; 4];
        for (c, &resid) in scores.iter().enumerate() {
            vecops::axpy(resid, emb.entity.row(c), &mut g_q);
        }
        let mut d_hid = [0.0f32; 5];
        for i in 0..4 {
            for j in 0..5 {
                d_hid[j] += g_q[i] * model.w2.get(i, j);
            }
        }
        for j in 0..5 {
            if hid[j] <= 0.0 {
                d_hid[j] = 0.0;
            }
        }
        // dW1[j][k] = d_hid[j] * input[k] with input = [h ; r].
        let input: Vec<f32> = emb
            .entity
            .row(1)
            .iter()
            .chain(emb.relation.row(0))
            .copied()
            .collect();

        let eps = 1e-3f32;
        for (j, k) in [(0usize, 0usize), (2, 3), (4, 7), (1, 5)] {
            let analytic = d_hid[j] * input[k];
            let mut plus = model.clone();
            let idx = j * 8 + k;
            plus.w1.as_mut_slice()[idx] += eps;
            let mut minus = model.clone();
            minus.w1.as_mut_slice()[idx] -= eps;
            let fd = (loss_of(&plus, &emb) - loss_of(&minus, &emb)) / (2.0 * eps);
            assert!(
                (fd - analytic).abs() < 2e-2,
                "w1[{j},{k}]: fd {fd} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from_u64(3);
        let mut emb = Embeddings::init(12, 2, 8, &mut rng);
        let train: Vec<Triple> = (0..10u32)
            .map(|i| Triple::new(i, i % 2, (i + 3) % 12))
            .collect();
        let mut model = MlpE::new(&emb, 16, 0.1, 6, &mut rng);
        let first = model.train_epoch(&mut emb, &train, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&mut emb, &train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }
}
