//! The gradient contract: every analytic gradient in this crate checked
//! against central finite differences.
//!
//! Each [`GradCase`] packages one small, deterministic instance of a
//! model (fixed seed, fixed triple, fixed candidate list) and exposes
//! its parameters as one flat `f32` vector. `loss(params)` re-evaluates
//! the *production* forward code at the given parameters; `grad(params)`
//! assembles a dense gradient from the *production* gradient kernels
//! (`distance_grads` / `side_grads` / `step_grads`, or an SGD(lr=1)
//! parameter diff for the block model). [`check_case`] then compares the
//! analytic gradient against `(L(x+ε) − L(x−ε)) / 2ε` coordinate by
//! coordinate and reports the worst relative error per tensor.
//!
//! The `eras audit` gradient pass runs [`run_all_contracts`] and fails
//! on any report whose error exceeds [`DEFAULT_TOLERANCE`].

use crate::baselines::{MarginConfig, RotatE, TransE, TransH, TuckEr};
use crate::block::{BlockModel, BlockScratch};
use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::grads::{MlpSideGrads, SideGrads, TransHGrads, TripleGrads, TuckErGrads};
use crate::hole::HolE;
use crate::loss::LossMode;
use crate::mlpe::MlpE;
use crate::negative::sample_neg_block;
use crate::quate::QuatE;
use eras_data::Triple;
use eras_linalg::optim::Sgd;
use eras_linalg::softmax::{
    log_loss_and_residual, log_sum_exp, neg_sampling_loss_and_residual, sigmoid, softmax_inplace,
    softplus,
};
use eras_linalg::Rng;
use eras_sf::zoo;

/// Maximum allowed relative error between analytic and finite-difference
/// gradients, at f32 precision.
pub const DEFAULT_TOLERANCE: f64 = 1e-3;

/// One finite-difference-checkable gradient instance.
pub trait GradCase {
    /// Display name (`"transe"`, `"block-complex"`, ...).
    fn name(&self) -> &str;
    /// `(tensor name, length)` segments; concatenated they lay out
    /// `params()`.
    fn segments(&self) -> Vec<(&'static str, usize)>;
    /// The flat parameter vector at the check point.
    fn params(&self) -> Vec<f32>;
    /// The loss at `params`, via the production forward code.
    fn loss(&self, params: &[f32]) -> f32;
    /// The dense analytic gradient at `params`, via the production
    /// gradient kernels. Same layout as `params`.
    fn grad(&self, params: &[f32]) -> Vec<f32>;
    /// Central-difference step size.
    fn eps(&self) -> f32 {
        1e-2
    }
}

/// Worst finite-difference disagreement within one named tensor.
#[derive(Debug, Clone)]
pub struct TensorCheck {
    /// Tensor name from [`GradCase::segments`].
    pub tensor: &'static str,
    /// Number of coordinates checked.
    pub len: usize,
    /// Worst relative error in this tensor.
    pub max_rel_err: f64,
    /// Finite-difference value at the worst coordinate.
    pub worst_fd: f64,
    /// Analytic value at the worst coordinate.
    pub worst_analytic: f64,
}

/// Result of finite-difference checking one [`GradCase`].
#[derive(Debug, Clone)]
pub struct GradReport {
    /// Case name.
    pub model: String,
    /// Total coordinates checked.
    pub params_checked: usize,
    /// Worst relative error across all tensors.
    pub max_rel_err: f64,
    /// Per-tensor breakdown.
    pub tensors: Vec<TensorCheck>,
}

impl GradReport {
    /// Whether every coordinate agreed within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_err < tol
    }
}

/// Relative error with a floor on the denominator: near-zero gradient
/// coordinates would otherwise divide finite-difference noise (~1e-5 at
/// f32) by itself. The floor scales with the case's gradient magnitude
/// so a genuinely wrong small gradient is still caught.
fn rel_err(fd: f64, analytic: f64, floor: f64) -> f64 {
    (fd - analytic).abs() / (analytic.abs() + fd.abs()).max(floor)
}

/// Finite-difference check one case over every parameter coordinate.
pub fn check_case(case: &dyn GradCase) -> GradReport {
    let p0 = case.params();
    let analytic = case.grad(&p0);
    assert_eq!(
        analytic.len(),
        p0.len(),
        "{}: gradient / parameter layout mismatch",
        case.name()
    );
    let eps = case.eps();
    let scale = analytic.iter().fold(0.0f32, |m, g| m.max(g.abs())) as f64;
    let floor = (0.05 * scale).max(0.05);

    let mut work = p0.clone();
    let mut tensors = Vec::new();
    let mut offset = 0usize;
    let mut global_max = 0.0f64;
    for (tensor, len) in case.segments() {
        let mut check = TensorCheck {
            tensor,
            len,
            max_rel_err: 0.0,
            worst_fd: 0.0,
            worst_analytic: 0.0,
        };
        for i in offset..offset + len {
            work[i] = p0[i] + eps;
            let lp = case.loss(&work) as f64;
            work[i] = p0[i] - eps;
            let lm = case.loss(&work) as f64;
            work[i] = p0[i];
            let fd = (lp - lm) / (2.0 * eps as f64);
            let a = analytic[i] as f64;
            let rel = rel_err(fd, a, floor);
            if rel > check.max_rel_err {
                check.max_rel_err = rel;
                check.worst_fd = fd;
                check.worst_analytic = a;
            }
        }
        global_max = global_max.max(check.max_rel_err);
        offset += len;
        tensors.push(check);
    }
    assert_eq!(
        offset,
        p0.len(),
        "{}: segments don't cover params",
        case.name()
    );
    GradReport {
        model: case.name().to_string(),
        params_checked: p0.len(),
        max_rel_err: global_max,
        tensors,
    }
}

/// The full contract: one case per model family in this crate plus the
/// shared loss kernels.
pub fn all_cases() -> Vec<Box<dyn GradCase>> {
    vec![
        Box::new(BlockCase::new()),
        Box::new(TransECase::new()),
        Box::new(TransHCase::new()),
        Box::new(RotatECase::new()),
        Box::new(TuckErCase::new()),
        Box::new(QueryModelCase::hole(true)),
        Box::new(QueryModelCase::hole(false)),
        Box::new(QueryModelCase::quate(true)),
        Box::new(QueryModelCase::quate(false)),
        Box::new(MlpECase::new()),
        Box::new(LogLossCase::new()),
        Box::new(SoftplusCase::new()),
        Box::new(LogSumExpCase::new()),
        Box::new(NegSamplingKernelCase::uniform()),
        Box::new(NegSamplingKernelCase::adversarial()),
        Box::new(BlockNegSamplingCase::new()),
    ]
}

/// Check every case; the `eras audit` gradient pass consumes this.
pub fn run_all_contracts() -> Vec<GradReport> {
    all_cases().iter().map(|c| check_case(c.as_ref())).collect()
}

// ---------------------------------------------------------------------------
// Shared embedding gather/scatter
// ---------------------------------------------------------------------------

fn gather_emb(emb: &Embeddings) -> Vec<f32> {
    let mut v = Vec::with_capacity(emb.num_parameters());
    v.extend_from_slice(emb.entity.as_slice());
    v.extend_from_slice(emb.relation.as_slice());
    v
}

fn scatter_emb(template: &Embeddings, params: &[f32]) -> Embeddings {
    let mut emb = template.clone();
    let ne = emb.entity.as_slice().len();
    emb.entity.as_mut_slice().copy_from_slice(&params[..ne]);
    let nr = emb.relation.as_slice().len();
    emb.relation
        .as_mut_slice()
        .copy_from_slice(&params[ne..ne + nr]);
    emb
}

// ---------------------------------------------------------------------------
// Block bilinear model (the paper's workhorse)
// ---------------------------------------------------------------------------

struct BlockCase {
    emb: Embeddings,
    model: BlockModel,
    triple: Triple,
}

impl BlockCase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(11);
        BlockCase {
            emb: Embeddings::init(6, 2, 8, &mut rng),
            model: BlockModel::universal(zoo::complex(), 2),
            triple: Triple::new(1, 0, 2),
        }
    }
}

impl GradCase for BlockCase {
    fn name(&self) -> &str {
        "block-complex"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        gather_emb(&self.emb)
    }

    /// Tail-side plus head-side full multiclass log-loss — exactly what
    /// one `train_minibatch` call on this triple descends.
    fn loss(&self, params: &[f32]) -> f32 {
        let emb = scatter_emb(&self.emb, params);
        let ne = emb.num_entities();
        let mut scores = vec![0.0f32; ne];
        self.model
            .score_all_tails(&emb, self.triple.head, self.triple.rel, &mut scores);
        let tail_loss = log_loss_and_residual(&mut scores, self.triple.tail as usize);
        self.model
            .score_all_heads(&emb, self.triple.tail, self.triple.rel, &mut scores);
        let head_loss = log_loss_and_residual(&mut scores, self.triple.head as usize);
        tail_loss + head_loss
    }

    /// SGD(lr=1) parameter diff: `grad = params_before − params_after`
    /// of one full-softmax `train_side` step. Each side starts from the
    /// original parameters (the production minibatch applies them
    /// sequentially; here the sum of both sides' gradients *at the same
    /// point* is what the loss above differentiates to).
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let emb = scatter_emb(&self.emb, params);
        let base = gather_emb(&emb);
        let mut grad = vec![0.0f32; base.len()];
        let mut scratch = BlockScratch::new();
        // Full mode never samples, so the RNG is inert here.
        let mut rng = Rng::seed_from_u64(0);
        for (transposed, anchor, target) in [
            (false, self.triple.head, self.triple.tail),
            (true, self.triple.tail, self.triple.head),
        ] {
            let mut stepped = emb.clone();
            let mut opt_e = Sgd::new(1.0, 0.0);
            let mut opt_r = Sgd::new(1.0, 0.0);
            crate::block::train_side(
                &self.model,
                transposed,
                &mut stepped,
                &mut opt_e,
                &mut opt_r,
                anchor,
                self.triple.rel,
                target,
                LossMode::Full,
                None,
                &mut rng,
                &mut scratch,
            );
            for ((g, before), after) in grad.iter_mut().zip(&base).zip(gather_emb(&stepped)) {
                *g += before - after;
            }
        }
        grad
    }
}

// ---------------------------------------------------------------------------
// Translational / rotational margin models
// ---------------------------------------------------------------------------

/// Accumulate a triple's row gradients, scaled by `sign`, into the dense
/// embedding-layout gradient vector.
fn scatter_triple_grads(grad: &mut [f32], emb: &Embeddings, t: Triple, g: &TripleGrads, sign: f32) {
    let dim = emb.dim();
    let ne = emb.entity.as_slice().len();
    for k in 0..dim {
        grad[t.head as usize * dim + k] += sign * g.head[k];
        grad[t.tail as usize * dim + k] += sign * g.tail[k];
        grad[ne + t.rel as usize * dim + k] += sign * g.rel[k];
    }
}

struct TransECase {
    emb: Embeddings,
    pos: Triple,
    neg: Triple,
    margin: f32,
}

impl TransECase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(12);
        TransECase {
            emb: Embeddings::init(6, 2, 6, &mut rng),
            pos: Triple::new(1, 0, 2),
            neg: Triple::new(1, 0, 4),
            // Large enough that the hinge is always active in the FD
            // neighbourhood (distances here are O(1)).
            margin: 10.0,
        }
    }
}

impl GradCase for TransECase {
    fn name(&self) -> &str {
        "transe"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        gather_emb(&self.emb)
    }

    /// The margin ranking loss `max(0, γ − s⁺ + s⁻)` via the production
    /// scoring path.
    fn loss(&self, params: &[f32]) -> f32 {
        let emb = scatter_emb(&self.emb, params);
        let model = TransE::new(&emb, MarginConfig::default());
        (self.margin - model.score_triple(&emb, self.pos) + model.score_triple(&emb, self.neg))
            .max(0.0)
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let emb = scatter_emb(&self.emb, params);
        let mut grad = vec![0.0f32; params.len()];
        let mut g = TripleGrads::new(emb.dim());
        TransE::distance_grads(&emb, self.pos, &mut g);
        scatter_triple_grads(&mut grad, &emb, self.pos, &g, 1.0);
        TransE::distance_grads(&emb, self.neg, &mut g);
        scatter_triple_grads(&mut grad, &emb, self.neg, &g, -1.0);
        grad
    }
}

struct TransHCase {
    emb: Embeddings,
    model: TransH,
    pos: Triple,
    neg: Triple,
    margin: f32,
}

impl TransHCase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(13);
        let emb = Embeddings::init(6, 2, 6, &mut rng);
        let model = TransH::new(&emb, MarginConfig::default(), &mut rng);
        TransHCase {
            emb,
            model,
            pos: Triple::new(0, 1, 3),
            neg: Triple::new(0, 1, 5),
            margin: 10.0,
        }
    }

    fn rebuild(&self, params: &[f32]) -> (Embeddings, TransH) {
        let emb = scatter_emb(&self.emb, params);
        let mut model = self.model.clone();
        let np = emb.num_parameters();
        let nn = model.normals.as_slice().len();
        model
            .normals
            .as_mut_slice()
            .copy_from_slice(&params[np..np + nn]);
        (emb, model)
    }
}

impl GradCase for TransHCase {
    fn name(&self) -> &str {
        "transh"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
            ("normals", self.model.normals.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        let mut v = gather_emb(&self.emb);
        v.extend_from_slice(self.model.normals.as_slice());
        v
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let (emb, model) = self.rebuild(params);
        (self.margin - model.score_triple(&emb, self.pos) + model.score_triple(&emb, self.neg))
            .max(0.0)
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let (emb, model) = self.rebuild(params);
        let dim = emb.dim();
        let np = emb.num_parameters();
        let ne = emb.entity.as_slice().len();
        let mut grad = vec![0.0f32; params.len()];
        let mut g = TransHGrads::new(dim);
        for (triple, sign) in [(self.pos, 1.0f32), (self.neg, -1.0f32)] {
            model.distance_grads(&emb, triple, &mut g);
            for k in 0..dim {
                grad[triple.head as usize * dim + k] += sign * g.head[k];
                grad[triple.tail as usize * dim + k] += sign * g.tail[k];
                grad[ne + triple.rel as usize * dim + k] += sign * g.rel[k];
                grad[np + triple.rel as usize * dim + k] += sign * g.normal[k];
            }
        }
        grad
    }
}

struct RotatECase {
    emb: Embeddings,
    pos: Triple,
    neg: Triple,
    margin: f32,
}

impl RotatECase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(14);
        RotatECase {
            emb: Embeddings::init(6, 2, 6, &mut rng),
            pos: Triple::new(2, 1, 0),
            neg: Triple::new(2, 1, 5),
            margin: 10.0,
        }
    }
}

impl GradCase for RotatECase {
    fn name(&self) -> &str {
        "rotate"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        gather_emb(&self.emb)
    }

    /// Hinge with the margin constant subtracted back out: same
    /// gradient, but the loss stays O(1) so f32 roundoff in the finite
    /// difference stays an order of magnitude below the tolerance.
    fn loss(&self, params: &[f32]) -> f32 {
        let emb = scatter_emb(&self.emb, params);
        let model = RotatE::new(&emb, MarginConfig::default());
        (self.margin - model.score_triple(&emb, self.pos) + model.score_triple(&emb, self.neg))
            .max(0.0)
            - self.margin
    }

    fn eps(&self) -> f32 {
        // The |z| distance has high curvature near small moduli; a
        // smaller step keeps the O(ε²) truncation term under tolerance.
        4e-3
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let emb = scatter_emb(&self.emb, params);
        let mut grad = vec![0.0f32; params.len()];
        let mut g = TripleGrads::new(emb.dim());
        RotatE::distance_grads(&emb, self.pos, &mut g);
        scatter_triple_grads(&mut grad, &emb, self.pos, &g, 1.0);
        RotatE::distance_grads(&emb, self.neg, &mut g);
        scatter_triple_grads(&mut grad, &emb, self.neg, &g, -1.0);
        grad
    }
}

// ---------------------------------------------------------------------------
// TuckER
// ---------------------------------------------------------------------------

struct TuckErCase {
    emb: Embeddings,
    model: TuckEr,
    triple: Triple,
}

impl TuckErCase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(15);
        let emb = Embeddings::init(6, 2, 4, &mut rng);
        let model = TuckEr::new(&emb, 0.05, &mut rng);
        TuckErCase {
            emb,
            model,
            triple: Triple::new(3, 0, 1),
        }
    }

    fn rebuild(&self, params: &[f32]) -> (Embeddings, TuckEr) {
        let emb = scatter_emb(&self.emb, params);
        let mut model = self.model.clone();
        let np = emb.num_parameters();
        let core_len = model.core().len();
        model.core_mut().copy_from_slice(&params[np..np + core_len]);
        (emb, model)
    }
}

impl GradCase for TuckErCase {
    fn name(&self) -> &str {
        "tucker"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
            ("core", self.model.core().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        let mut v = gather_emb(&self.emb);
        v.extend_from_slice(self.model.core());
        v
    }

    /// The full-softmax tail-prediction loss via the production query
    /// path (`score_all_tails` = `E · (W ×₁ h ×₂ r)`).
    fn loss(&self, params: &[f32]) -> f32 {
        let (emb, model) = self.rebuild(params);
        let mut scores = vec![0.0f32; emb.num_entities()];
        model.score_all_tails(&emb, self.triple.head, self.triple.rel, &mut scores);
        log_loss_and_residual(&mut scores, self.triple.tail as usize)
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let (emb, model) = self.rebuild(params);
        let dim = emb.dim();
        let ne_len = emb.entity.as_slice().len();
        let np = emb.num_parameters();
        let mut g = TuckErGrads::new(dim, emb.num_entities());
        model.step_grads(&emb, self.triple, &mut g);
        let mut grad = vec![0.0f32; params.len()];
        for (c, &resid) in g.resid.iter().enumerate() {
            for k in 0..dim {
                grad[c * dim + k] += resid * g.v[k];
            }
        }
        for k in 0..dim {
            grad[self.triple.head as usize * dim + k] += g.head[k];
            grad[ne_len + self.triple.rel as usize * dim + k] += g.rel[k];
        }
        grad[np..].copy_from_slice(&g.core);
        grad
    }
}

// ---------------------------------------------------------------------------
// HolE / QuatE (query-vector models sharing `SideGrads`)
// ---------------------------------------------------------------------------

enum QueryKind {
    HolE,
    QuatE,
}

struct QueryModelCase {
    emb: Embeddings,
    kind: QueryKind,
    tail_side: bool,
    anchor: u32,
    rel: u32,
    candidates: Vec<u32>,
}

impl QueryModelCase {
    fn with_kind(kind: QueryKind, tail_side: bool, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let emb = Embeddings::init(6, 2, 4, &mut rng);
        // Deterministic 1-vs-all: the target first, then every other
        // entity (brute-force "full softmax" through the sampled path).
        let target = 2u32;
        let mut candidates = vec![target];
        candidates.extend((0..6u32).filter(|&c| c != target));
        QueryModelCase {
            emb,
            kind,
            tail_side,
            anchor: 1,
            rel: 0,
            candidates,
        }
    }

    fn hole(tail_side: bool) -> Self {
        Self::with_kind(QueryKind::HolE, tail_side, 16)
    }

    fn quate(tail_side: bool) -> Self {
        Self::with_kind(QueryKind::QuatE, tail_side, 17)
    }

    fn side_grads(&self, emb: &Embeddings, g: &mut SideGrads) {
        match self.kind {
            QueryKind::HolE => HolE::side_grads(
                emb,
                self.anchor,
                self.rel,
                &self.candidates,
                self.tail_side,
                g,
            ),
            QueryKind::QuatE => QuatE::side_grads(
                emb,
                self.anchor,
                self.rel,
                &self.candidates,
                self.tail_side,
                g,
            ),
        }
    }
}

impl GradCase for QueryModelCase {
    fn name(&self) -> &str {
        match (&self.kind, self.tail_side) {
            (QueryKind::HolE, true) => "hole-tail",
            (QueryKind::HolE, false) => "hole-head",
            (QueryKind::QuatE, true) => "quate-tail",
            (QueryKind::QuatE, false) => "quate-head",
        }
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        gather_emb(&self.emb)
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let emb = scatter_emb(&self.emb, params);
        let mut g = SideGrads::new(emb.dim());
        self.side_grads(&emb, &mut g);
        g.loss
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let emb = scatter_emb(&self.emb, params);
        let dim = emb.dim();
        let ne_len = emb.entity.as_slice().len();
        let mut g = SideGrads::new(dim);
        self.side_grads(&emb, &mut g);
        let mut grad = vec![0.0f32; params.len()];
        for (slot, &c) in self.candidates.iter().enumerate() {
            for k in 0..dim {
                grad[c as usize * dim + k] += g.resid[slot] * g.q[k];
            }
        }
        for k in 0..dim {
            grad[self.anchor as usize * dim + k] += g.anchor[k];
            grad[ne_len + self.rel as usize * dim + k] += g.rel[k];
        }
        grad
    }
}

// ---------------------------------------------------------------------------
// MlpE
// ---------------------------------------------------------------------------

struct MlpECase {
    emb: Embeddings,
    model: MlpE,
    anchor: u32,
    rel: u32,
    candidates: Vec<u32>,
}

impl MlpECase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(18);
        let emb = Embeddings::init(6, 2, 4, &mut rng);
        let mut model = MlpE::new(&emb, 3, 0.05, 3, &mut rng);
        // Push the hidden pre-activations away from the ReLU kink so the
        // finite-difference step cannot cross it.
        let mut net = model.net_param_vec();
        let w1_len = 3 * 2 * 4;
        for b in net[w1_len..w1_len + 3].iter_mut() {
            *b = 0.3;
        }
        model.set_net_params(&net);
        let target = 4u32;
        let mut candidates = vec![target];
        candidates.extend((0..6u32).filter(|&c| c != target));
        MlpECase {
            emb,
            model,
            anchor: 0,
            rel: 1,
            candidates,
        }
    }

    fn rebuild(&self, params: &[f32]) -> (Embeddings, MlpE) {
        let emb = scatter_emb(&self.emb, params);
        let mut model = self.model.clone();
        let np = emb.num_parameters();
        model.set_net_params(&params[np..]);
        (emb, model)
    }
}

impl GradCase for MlpECase {
    fn name(&self) -> &str {
        "mlpe"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        let d = self.emb.dim();
        let h = self.model.hidden();
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
            ("w1", h * 2 * d),
            ("b1", h),
            ("w2", d * h),
            ("b2", d),
        ]
    }

    fn params(&self) -> Vec<f32> {
        let mut v = gather_emb(&self.emb);
        v.extend_from_slice(&self.model.net_param_vec());
        v
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let (emb, model) = self.rebuild(params);
        let mut g = MlpSideGrads::new(emb.dim(), model.hidden());
        model.side_grads(&emb, self.anchor, self.rel, &self.candidates, &mut g);
        g.loss
    }

    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let (emb, model) = self.rebuild(params);
        let d = emb.dim();
        let h = model.hidden();
        let ne_len = emb.entity.as_slice().len();
        let np = emb.num_parameters();
        let mut g = MlpSideGrads::new(d, h);
        model.side_grads(&emb, self.anchor, self.rel, &self.candidates, &mut g);

        let mut grad = vec![0.0f32; params.len()];
        for (slot, &c) in self.candidates.iter().enumerate() {
            for k in 0..d {
                grad[c as usize * d + k] += g.resid[slot] * g.q[k];
            }
        }
        let anchor_row: Vec<f32> = emb.entity.row(self.anchor as usize).to_vec();
        let rel_row: Vec<f32> = emb.relation.row(self.rel as usize).to_vec();
        for k in 0..d {
            grad[self.anchor as usize * d + k] += g.anchor[k];
            grad[ne_len + self.rel as usize * d + k] += g.rel[k];
        }
        // Network layers: W1 rows = d_hid[j]·[h ; r], b1 = d_hid,
        // W2 rows = g_q[i]·hid, b2 = g_q.
        let w1_off = np;
        for j in 0..h {
            let gz = g.d_hid[j];
            for k in 0..d {
                grad[w1_off + j * 2 * d + k] = gz * anchor_row[k];
                grad[w1_off + j * 2 * d + d + k] = gz * rel_row[k];
            }
        }
        let b1_off = w1_off + h * 2 * d;
        grad[b1_off..b1_off + h].copy_from_slice(&g.d_hid);
        let w2_off = b1_off + h;
        for i in 0..d {
            for j in 0..h {
                grad[w2_off + i * h + j] = g.g_q[i] * g.hid[j];
            }
        }
        let b2_off = w2_off + d * h;
        grad[b2_off..b2_off + d].copy_from_slice(&g.g_q);
        grad
    }
}

// ---------------------------------------------------------------------------
// Loss kernels
// ---------------------------------------------------------------------------

struct LogLossCase {
    scores: Vec<f32>,
    target: usize,
}

impl LogLossCase {
    fn new() -> Self {
        LogLossCase {
            scores: vec![0.3, -0.7, 1.2, 0.1, -0.4],
            target: 2,
        }
    }
}

impl GradCase for LogLossCase {
    fn name(&self) -> &str {
        "log-loss-residual"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![("scores", self.scores.len())]
    }

    fn params(&self) -> Vec<f32> {
        self.scores.clone()
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let mut work = params.to_vec();
        log_loss_and_residual(&mut work, self.target)
    }

    /// The residual `softmax − onehot` the kernel leaves in place *is*
    /// the gradient — that identity is the contract under test.
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let mut work = params.to_vec();
        let _ = log_loss_and_residual(&mut work, self.target);
        work
    }
}

struct SoftplusCase {
    xs: Vec<f32>,
}

impl SoftplusCase {
    fn new() -> Self {
        SoftplusCase {
            xs: vec![-3.0, -0.5, 0.0, 0.8, 4.0],
        }
    }
}

impl GradCase for SoftplusCase {
    fn name(&self) -> &str {
        "softplus-sigmoid"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![("x", self.xs.len())]
    }

    fn params(&self) -> Vec<f32> {
        self.xs.clone()
    }

    fn loss(&self, params: &[f32]) -> f32 {
        params
            .iter()
            .map(|&x| eras_linalg::softmax::softplus(x))
            .sum()
    }

    /// `softplus'(x) = sigmoid(x)` — the identity the RotatE
    /// self-adversarial loss relies on.
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        params.iter().map(|&x| sigmoid(x)).collect()
    }
}

struct LogSumExpCase {
    xs: Vec<f32>,
}

impl LogSumExpCase {
    fn new() -> Self {
        LogSumExpCase {
            xs: vec![0.2, -1.1, 0.9, 2.0],
        }
    }
}

impl GradCase for LogSumExpCase {
    fn name(&self) -> &str {
        "log-sum-exp-softmax"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![("x", self.xs.len())]
    }

    fn params(&self) -> Vec<f32> {
        self.xs.clone()
    }

    fn loss(&self, params: &[f32]) -> f32 {
        log_sum_exp(params)
    }

    /// `∇ log Σ exp = softmax`.
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let mut work = params.to_vec();
        softmax_inplace(&mut work);
        work
    }
}

/// The negative-sampling loss kernel: `softplus(−(γ+s₀)) + Σᵢ wᵢ ·
/// softplus(γ+sᵢ)`. Segments split the positive slot from the negative
/// block so a wrong sign on either term is pinned to its tensor.
///
/// The adversarial weights `wᵢ = softmax(α·sᵢ)` are *detached* in the
/// production kernel (self-adversarial sampling differentiates through
/// the softplus terms only, never through the weights). The `loss`
/// below therefore freezes the weights at the base point — that frozen
/// surrogate is exactly the function whose gradient the kernel's
/// in-place residual claims to be, and `check_case` only ever asks for
/// the analytic gradient at the base point, where the kernel's weights
/// and the frozen ones coincide.
struct NegSamplingKernelCase {
    name: &'static str,
    scores: Vec<f32>, // slot 0 = positive, rest = negatives
    gamma: f32,
    adv_temp: f32,
    frozen_weights: Vec<f32>, // per negative, at the base point
}

impl NegSamplingKernelCase {
    fn with_temp(name: &'static str, adv_temp: f32) -> Self {
        let scores = vec![0.4f32, -0.3, 0.9, 0.1, -1.2];
        let negs = &scores[1..];
        let frozen_weights: Vec<f32> = if adv_temp > 0.0 {
            let mut w: Vec<f32> = negs.iter().map(|&s| adv_temp * s).collect();
            softmax_inplace(&mut w);
            w
        } else {
            vec![1.0 / negs.len() as f32; negs.len()]
        };
        NegSamplingKernelCase {
            name,
            scores,
            // Mid-range gamma: both sigmoids well away from saturation,
            // so every residual coordinate is O(0.1) and FD-checkable.
            gamma: 0.5,
            adv_temp,
            frozen_weights,
        }
    }

    fn uniform() -> Self {
        Self::with_temp("neg-sampling-uniform", 0.0)
    }

    fn adversarial() -> Self {
        Self::with_temp("neg-sampling-adversarial", 1.5)
    }
}

impl GradCase for NegSamplingKernelCase {
    fn name(&self) -> &str {
        self.name
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![("positive", 1), ("negatives", self.scores.len() - 1)]
    }

    fn params(&self) -> Vec<f32> {
        self.scores.clone()
    }

    fn loss(&self, params: &[f32]) -> f32 {
        let mut l = softplus(-(self.gamma + params[0]));
        for (w, &s) in self.frozen_weights.iter().zip(&params[1..]) {
            l += w * softplus(self.gamma + s);
        }
        l
    }

    /// The in-place residual the production kernel leaves behind *is*
    /// the gradient of the frozen-weight loss — that identity is the
    /// contract under test.
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let mut work = params.to_vec();
        let _ = neg_sampling_loss_and_residual(&mut work, self.gamma, self.adv_temp);
        work
    }
}

// ---------------------------------------------------------------------------
// Block model under negative sampling (the million-entity training path)
// ---------------------------------------------------------------------------

/// End-to-end contract for `train_side` in `LossMode::NegSampling`:
/// seeded candidate sampling, the fused query/scatter gradient path, and
/// the logsigmoid kernel, differentiated against a loss rebuilt from the
/// production forward scorer over the *same* seeded candidates.
struct BlockNegSamplingCase {
    emb: Embeddings,
    model: BlockModel,
    triple: Triple,
    negatives: usize,
    gamma: f32,
}

impl BlockNegSamplingCase {
    fn new() -> Self {
        let mut rng = Rng::seed_from_u64(19);
        BlockNegSamplingCase {
            emb: Embeddings::init(6, 2, 8, &mut rng),
            model: BlockModel::universal(zoo::complex(), 2),
            triple: Triple::new(1, 0, 2),
            negatives: 3,
            gamma: 0.5,
        }
    }

    /// The two prediction sides with the per-side RNG seed `train_side`
    /// will be handed: the candidate stream is a pure function of it.
    fn sides(&self) -> [(bool, u32, u32, u64); 2] {
        [
            (false, self.triple.head, self.triple.tail, 21),
            (true, self.triple.tail, self.triple.head, 22),
        ]
    }

    fn mode(&self) -> LossMode {
        LossMode::NegSampling {
            negatives: self.negatives,
            gamma: self.gamma,
            // Zero temperature: uniform weights, so the true gradient
            // and the detached-weight gradient coincide and plain FD
            // applies. The adversarial weight path has its own kernel
            // case above.
            adversarial_temp: 0.0,
            corruption: crate::loss::Corruption::Uniform,
        }
    }
}

impl GradCase for BlockNegSamplingCase {
    fn name(&self) -> &str {
        "block-neg-sampling"
    }

    fn segments(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("entity", self.emb.entity.as_slice().len()),
            ("relation", self.emb.relation.as_slice().len()),
        ]
    }

    fn params(&self) -> Vec<f32> {
        gather_emb(&self.emb)
    }

    /// Rebuild the loss from production pieces: the same seeded
    /// negative draws (`sample_neg_block` is all `train_side` uses its
    /// RNG for in this mode), the production triple scorer, and the
    /// production loss kernel.
    fn loss(&self, params: &[f32]) -> f32 {
        let emb = scatter_emb(&self.emb, params);
        let mut total = 0.0f32;
        for (transposed, anchor, target, seed) in self.sides() {
            let mut rng = Rng::seed_from_u64(seed);
            let mut candidates = vec![target; 1];
            candidates.resize(1 + self.negatives, 0);
            sample_neg_block(
                anchor,
                self.triple.rel,
                target,
                !transposed,
                emb.num_entities(),
                None,
                &mut rng,
                &mut candidates[1..],
            );
            let mut scores: Vec<f32> = candidates
                .iter()
                .map(|&c| {
                    let t = if transposed {
                        Triple::new(c, self.triple.rel, anchor)
                    } else {
                        Triple::new(anchor, self.triple.rel, c)
                    };
                    self.model.score_triple(&emb, t)
                })
                .collect();
            total += neg_sampling_loss_and_residual(&mut scores, self.gamma, 0.0);
        }
        total
    }

    /// SGD(lr=1) parameter diff of one production `train_side` step per
    /// side, each from the same point with the same per-side RNG seed
    /// as `loss` — see [`BlockCase::grad`] for why the sides sum.
    fn grad(&self, params: &[f32]) -> Vec<f32> {
        let emb = scatter_emb(&self.emb, params);
        let base = gather_emb(&emb);
        let mut grad = vec![0.0f32; base.len()];
        let mut scratch = BlockScratch::new();
        for (transposed, anchor, target, seed) in self.sides() {
            let mut rng = Rng::seed_from_u64(seed);
            let mut stepped = emb.clone();
            let mut opt_e = Sgd::new(1.0, 0.0);
            let mut opt_r = Sgd::new(1.0, 0.0);
            crate::block::train_side(
                &self.model,
                transposed,
                &mut stepped,
                &mut opt_e,
                &mut opt_r,
                anchor,
                self.triple.rel,
                target,
                self.mode(),
                None,
                &mut rng,
                &mut scratch,
            );
            for ((g, before), after) in grad.iter_mut().zip(&base).zip(gather_emb(&stepped)) {
                *g += before - after;
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: every model in the crate passes the
    /// finite-difference contract at f32 with rel err < 1e-3.
    #[test]
    fn every_contract_holds() {
        for report in run_all_contracts() {
            eprintln!(
                "contract {:<22} {:>5} params  max rel err {:.2e}",
                report.model, report.params_checked, report.max_rel_err
            );
            assert!(
                report.passes(DEFAULT_TOLERANCE),
                "{}: max rel err {:.2e} (worst tensor: {:?})",
                report.model,
                report.max_rel_err,
                report
                    .tensors
                    .iter()
                    .max_by(|a, b| a.max_rel_err.total_cmp(&b.max_rel_err))
            );
        }
    }

    #[test]
    fn contract_covers_every_model_family() {
        let names: Vec<String> = all_cases().iter().map(|c| c.name().to_string()).collect();
        for expected in [
            "block-complex",
            "transe",
            "transh",
            "rotate",
            "tucker",
            "hole-tail",
            "hole-head",
            "quate-tail",
            "quate-head",
            "mlpe",
            "log-loss-residual",
            "softplus-sigmoid",
            "log-sum-exp-softmax",
            "neg-sampling-uniform",
            "neg-sampling-adversarial",
            "block-neg-sampling",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing case {expected}"
            );
        }
    }

    /// A deliberately corrupted gradient must be caught — the seeded
    /// violation of the audit acceptance criteria.
    struct Perturbed(TransECase);

    impl GradCase for Perturbed {
        fn name(&self) -> &str {
            "transe-perturbed"
        }
        fn segments(&self) -> Vec<(&'static str, usize)> {
            self.0.segments()
        }
        fn params(&self) -> Vec<f32> {
            self.0.params()
        }
        fn loss(&self, params: &[f32]) -> f32 {
            self.0.loss(params)
        }
        fn grad(&self, params: &[f32]) -> Vec<f32> {
            let mut g = self.0.grad(params);
            // A sign slip on one coordinate — the classic hand-derived
            // gradient bug.
            g[3] = -g[3] + 0.2;
            g
        }
    }

    #[test]
    fn perturbed_gradient_is_detected() {
        let report = check_case(&Perturbed(TransECase::new()));
        assert!(
            !report.passes(DEFAULT_TOLERANCE),
            "perturbed gradient slipped through: max rel err {:.2e}",
            report.max_rel_err
        );
    }

    /// A corrupted negative-sampling gradient (halved residuals — the
    /// classic missing-weight bug) must fail the contract on both the
    /// kernel case and the end-to-end block case.
    struct ScaledNegGrad<C: GradCase>(C);

    impl<C: GradCase> GradCase for ScaledNegGrad<C> {
        fn name(&self) -> &str {
            "neg-sampling-scaled"
        }
        fn segments(&self) -> Vec<(&'static str, usize)> {
            self.0.segments()
        }
        fn params(&self) -> Vec<f32> {
            self.0.params()
        }
        fn loss(&self, params: &[f32]) -> f32 {
            self.0.loss(params)
        }
        fn grad(&self, params: &[f32]) -> Vec<f32> {
            let mut g = self.0.grad(params);
            for x in &mut g {
                *x *= 0.5;
            }
            g
        }
    }

    #[test]
    fn corrupted_neg_sampling_gradient_is_detected() {
        for report in [
            check_case(&ScaledNegGrad(NegSamplingKernelCase::uniform())),
            check_case(&ScaledNegGrad(NegSamplingKernelCase::adversarial())),
            check_case(&ScaledNegGrad(BlockNegSamplingCase::new())),
        ] {
            assert!(
                !report.passes(DEFAULT_TOLERANCE),
                "halved neg-sampling gradient slipped through: max rel err {:.2e}",
                report.max_rel_err
            );
        }
    }

    #[test]
    fn report_segments_cover_all_params() {
        for case in all_cases() {
            let total: usize = case.segments().iter().map(|(_, l)| l).sum();
            assert_eq!(total, case.params().len(), "{}", case.name());
        }
    }
}
