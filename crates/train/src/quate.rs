//! QuatE (Zhang et al., 2019) — quaternion knowledge-graph embeddings.
//!
//! One of the tensor-based comparators in the paper's Table VI. Entities
//! are quaternion vectors (`d/4` quaternions per embedding row,
//! interleaved `[w, x, y, z]`); each relation component is normalised to a
//! unit quaternion and applied by the Hamilton product:
//!
//! ```text
//! score(h, r, t) = Σ_k ⟨ h_k ⊗ r̂_k , t_k ⟩
//! ```
//!
//! Rotation by a unit quaternion generalises RotatE's 2-D rotation to
//! 4-D, covering symmetry / anti-symmetry / inversion / composition while
//! staying `O(d)` per candidate. Training uses the same 1-vs-all sampled
//! softmax as the bilinear models; all gradients are closed-form (the
//! Hamilton product is linear in each argument) and finite-difference
//! checked in the tests.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::grads::SideGrads;
use eras_data::Triple;
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::softmax::log_loss_and_residual;
use eras_linalg::vecops;
use eras_linalg::Rng;

/// One quaternion as `[w, x, y, z]`.
type Quat = [f32; 4];

/// Hamilton product `a ⊗ b`.
#[inline]
fn hamilton(a: Quat, b: Quat) -> Quat {
    let [aw, ax, ay, az] = a;
    let [bw, bx, by, bz] = b;
    [
        aw * bw - ax * bx - ay * by - az * bz,
        aw * bx + ax * bw + ay * bz - az * by,
        aw * by - ax * bz + ay * bw + az * bx,
        aw * bz + ax * by - ay * bx + az * bw,
    ]
}

/// Quaternion conjugate.
// audit:allow(E701): literal indices into a fixed [f32; 4]
#[inline]
fn conjugate(a: Quat) -> Quat {
    [a[0], -a[1], -a[2], -a[3]]
}

/// Normalise to a unit quaternion; the zero quaternion maps to identity.
// audit:allow(E701): literal indices into a fixed [f32; 4]
#[inline]
fn normalize(a: Quat) -> (Quat, f32) {
    let n = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2] + a[3] * a[3]).sqrt();
    if n < 1e-12 {
        ([1.0, 0.0, 0.0, 0.0], 1e-12)
    } else {
        ([a[0] / n, a[1] / n, a[2] / n, a[3] / n], n)
    }
}

// audit:allow(E701): callers iterate k in 0..dim/4 over rows of length
// dim (a multiple of 4, validated at model construction)
#[inline]
fn quat_at(row: &[f32], k: usize) -> Quat {
    [row[4 * k], row[4 * k + 1], row[4 * k + 2], row[4 * k + 3]]
}

/// `∂(h ⊗ r)/∂r` as the 4×4 left-multiplication matrix `H(h)`, applied
/// transposed to a cotangent: returns `H(h)ᵀ g`.
#[inline]
fn lmul_transpose(h: Quat, g: Quat) -> Quat {
    // Column j of H(h) is h ⊗ e_j; H(h)ᵀ g has entries ⟨h ⊗ e_j, g⟩ with
    //   h ⊗ 1 = [hw,  hx,  hy,  hz]
    //   h ⊗ i = [−hx, hw,  hz, −hy]
    //   h ⊗ j = [−hy, −hz, hw,  hx]
    //   h ⊗ k = [−hz, hy, −hx,  hw]
    let [hw, hx, hy, hz] = h;
    [
        hw * g[0] + hx * g[1] + hy * g[2] + hz * g[3],
        -hx * g[0] + hw * g[1] + hz * g[2] - hy * g[3],
        -hy * g[0] - hz * g[1] + hw * g[2] + hx * g[3],
        -hz * g[0] + hy * g[1] - hx * g[2] + hw * g[3],
    ]
}

/// QuatE trainer with its own Adagrad state.
#[derive(Debug, Clone)]
pub struct QuatE {
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    /// Negatives per positive in the sampled softmax.
    pub negatives: usize,
}

impl QuatE {
    /// Create for the given embedding shapes; `dim % 4 == 0` required.
    pub fn new(emb: &Embeddings, lr: f32, negatives: usize) -> Self {
        assert_eq!(emb.dim() % 4, 0, "QuatE needs dim divisible by 4");
        QuatE {
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), lr, 1e-5),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), lr, 1e-5),
            negatives,
        }
    }

    /// Tail-side query vector `q = h ⊗ r̂` (so `score(t') = ⟨q, t'⟩`).
    // audit:allow(E701): q has length dim and k < dim/4, so every
    // 4k..4k+4 window is in bounds
    fn tail_query(emb: &Embeddings, h: u32, r: u32, q: &mut [f32]) {
        let dim = emb.dim();
        let hrow = emb.entity.row(h as usize);
        let rrow = emb.relation.row(r as usize);
        for k in 0..dim / 4 {
            let (rhat, _) = normalize(quat_at(rrow, k));
            let out = hamilton(quat_at(hrow, k), rhat);
            q[4 * k..4 * k + 4].copy_from_slice(&out);
        }
    }

    /// Head-side query vector `q = t ⊗ r̂*` — from
    /// `⟨h ⊗ r̂, t⟩ = ⟨h, t ⊗ r̂*⟩` for unit `r̂`.
    // audit:allow(E701): same bounds argument as tail_query
    fn head_query(emb: &Embeddings, t: u32, r: u32, q: &mut [f32]) {
        let dim = emb.dim();
        let trow = emb.entity.row(t as usize);
        let rrow = emb.relation.row(r as usize);
        for k in 0..dim / 4 {
            let (rhat, _) = normalize(quat_at(rrow, k));
            let out = hamilton(quat_at(trow, k), conjugate(rhat));
            q[4 * k..4 * k + 4].copy_from_slice(&out);
        }
    }

    /// Pure gradients of one 1-vs-all step over an explicit candidate
    /// list (`candidates[0]` is the target; `tail_side` picks the query
    /// direction). Reads `emb`, writes only `g`; the sampled-softmax
    /// trainer and the gradient contract checker share this kernel.
    pub fn side_grads(
        emb: &Embeddings,
        anchor: u32,
        rel: u32,
        candidates: &[u32],
        tail_side: bool,
        g: &mut SideGrads,
    ) {
        let dim = emb.dim();
        if tail_side {
            Self::tail_query(emb, anchor, rel, &mut g.q);
        } else {
            Self::head_query(emb, anchor, rel, &mut g.q);
        }
        g.resid.clear();
        g.resid.extend(
            candidates
                .iter()
                .map(|&c| vecops::dot(&g.q, emb.entity.row(c as usize))),
        );
        g.loss = log_loss_and_residual(&mut g.resid, 0);

        let anchor_row = emb.entity.row(anchor as usize);
        let rel_row = emb.relation.row(rel as usize);
        let mut g_q = vec![0.0f32; dim];
        for (slot, &c) in candidates.iter().enumerate() {
            vecops::axpy(g.resid[slot], emb.entity.row(c as usize), &mut g_q);
        }

        // Back through the Hamilton product into anchor and relation.
        for k in 0..dim / 4 {
            let gq = quat_at(&g_q, k);
            let r_raw = quat_at(rel_row, k);
            let (rhat, rnorm) = normalize(r_raw);
            let a = quat_at(anchor_row, k);
            let (ga, g_rhat): (Quat, Quat) = if tail_side {
                // q_k = a ⊗ r̂ : ∂/∂a = g ⊗ r̂*, ∂/∂r̂ = H(a)ᵀ g.
                (hamilton(gq, conjugate(rhat)), lmul_transpose(a, gq))
            } else {
                // q_k = a ⊗ r̂* : ∂/∂a = g ⊗ r̂ (conj of conj),
                // ∂/∂r̂* = H(a)ᵀ g, then ∂/∂r̂ = conj of that.
                (hamilton(gq, rhat), conjugate(lmul_transpose(a, gq)))
            };
            g.anchor[4 * k..4 * k + 4].copy_from_slice(&ga);
            // Through the normalisation: ∂r̂/∂r = (I − r̂ r̂ᵀ) / ‖r‖.
            let dot_rg: f32 = (0..4).map(|i| rhat[i] * g_rhat[i]).sum();
            for i in 0..4 {
                g.rel[4 * k + i] = (g_rhat[i] - dot_rg * rhat[i]) / rnorm;
            }
        }
    }

    /// One 1-vs-all step predicting `target` from `(anchor, rel)` on the
    /// given side. Returns the loss.
    #[allow(clippy::too_many_arguments)]
    fn train_side(
        &mut self,
        emb: &mut Embeddings,
        anchor: u32,
        rel: u32,
        target: u32,
        tail_side: bool,
        rng: &mut Rng,
        g: &mut SideGrads,
    ) -> f32 {
        let dim = emb.dim();
        let ne = emb.num_entities();
        // Candidates: target + negatives.
        let mut candidates = Vec::with_capacity(self.negatives + 1);
        candidates.push(target);
        for _ in 0..self.negatives {
            let mut c = rng.next_below(ne) as u32;
            if c == target {
                c = (c + 1) % ne as u32;
            }
            candidates.push(c);
        }
        Self::side_grads(emb, anchor, rel, &candidates, tail_side, g);

        let mut row_grad = vec![0.0f32; dim];
        for (slot, &c) in candidates.iter().enumerate() {
            let resid = g.resid[slot];
            for (gr, &qv) in row_grad.iter_mut().zip(&g.q) {
                *gr = resid * qv;
            }
            self.opt_entity
                .step_at(emb.entity.as_mut_slice(), c as usize * dim, &row_grad);
        }
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), anchor as usize * dim, &g.anchor);
        self.opt_relation
            .step_at(emb.relation.as_mut_slice(), rel as usize * dim, &g.rel);
        g.loss
    }

    /// One pass over the training set (both prediction directions).
    /// Returns the mean per-side loss.
    pub fn train_epoch(&mut self, emb: &mut Embeddings, train: &[Triple], rng: &mut Rng) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let mut g = SideGrads::new(emb.dim());
        let mut total = 0.0f32;
        for &t in train {
            total += self.train_side(emb, t.head, t.rel, t.tail, true, rng, &mut g);
            total += self.train_side(emb, t.tail, t.rel, t.head, false, rng, &mut g);
        }
        total / (2.0 * train.len() as f32)
    }
}

impl ScoreModel for QuatE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0f32; emb.dim()];
        Self::tail_query(emb, h, r, &mut q);
        emb.entity.matvec(&q, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0f32; emb.dim()];
        Self::head_query(emb, t, r, &mut q);
        emb.entity.matvec(&q, out);
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        let mut q = vec![0.0f32; emb.dim()];
        Self::tail_query(emb, t.head, t.rel, &mut q);
        vecops::dot(&q, emb.entity.row(t.tail as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamilton_identities() {
        let i: Quat = [0.0, 1.0, 0.0, 0.0];
        let j: Quat = [0.0, 0.0, 1.0, 0.0];
        let k: Quat = [0.0, 0.0, 0.0, 1.0];
        // i ⊗ j = k, j ⊗ i = −k (non-commutative).
        assert_eq!(hamilton(i, j), k);
        assert_eq!(hamilton(j, i), [0.0, 0.0, 0.0, -1.0]);
        // i² = −1.
        assert_eq!(hamilton(i, i), [-1.0, 0.0, 0.0, 0.0]);
        // Identity.
        let e: Quat = [1.0, 0.0, 0.0, 0.0];
        let q: Quat = [0.3, -0.5, 0.7, 0.2];
        assert_eq!(hamilton(e, q), q);
        assert_eq!(hamilton(q, e), q);
    }

    #[test]
    fn rotation_preserves_norm() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..20 {
            let a: Quat = [rng.normal(), rng.normal(), rng.normal(), rng.normal()];
            let r: Quat = [rng.normal(), rng.normal(), rng.normal(), rng.normal()];
            let (rhat, _) = normalize(r);
            let rotated = hamilton(a, rhat);
            let na: f32 = a.iter().map(|v| v * v).sum();
            let nr: f32 = rotated.iter().map(|v| v * v).sum();
            assert!((na - nr).abs() < 1e-4 * (1.0 + na), "{na} vs {nr}");
        }
    }

    #[test]
    fn head_query_identity() {
        // ⟨h ⊗ r̂, t⟩ == ⟨h, t ⊗ r̂*⟩.
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(6, 2, 8, &mut rng);
        let mut q_tail = vec![0.0f32; 8];
        let mut q_head = vec![0.0f32; 8];
        QuatE::tail_query(&emb, 1, 0, &mut q_tail);
        QuatE::head_query(&emb, 3, 0, &mut q_head);
        let lhs = vecops::dot(&q_tail, emb.entity.row(3));
        let rhs = vecops::dot(emb.entity.row(1), &q_head);
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn score_consistency() {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(10, 2, 8, &mut rng);
        let model = QuatE::new(&emb, 0.05, 4);
        let mut out = vec![0.0f32; 10];
        model.score_all_tails(&emb, 2, 1, &mut out);
        for t in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(2, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        model.score_all_heads(&emb, 4, 0, &mut out);
        for h in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(h, 0, 4));
            assert!((out[h as usize] - s).abs() < 1e-4, "head {h}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check ∂loss/∂relation through normalisation + Hamilton product.
        let mut rng = Rng::seed_from_u64(4);
        let emb = Embeddings::init(8, 1, 4, &mut rng);
        let (h, r, t) = (1u32, 0u32, 2u32);

        // Deterministic candidate set: all entities (emulate full softmax
        // by brute force for the check).
        let loss_of = |emb: &Embeddings| -> f32 {
            let mut q = vec![0.0f32; 4];
            QuatE::tail_query(emb, h, r, &mut q);
            let mut scores: Vec<f32> = (0..8).map(|c| vecops::dot(&q, emb.entity.row(c))).collect();
            log_loss_and_residual(&mut scores, t as usize)
        };

        // Analytic gradient extracted via an SGD(1.0) step on a QuatE
        // trainer variant with full candidates: emulate by calling the
        // internals manually.
        let base = emb.clone();
        let mut q = vec![0.0f32; 4];
        QuatE::tail_query(&base, h, r, &mut q);
        let mut scores: Vec<f32> = (0..8)
            .map(|c| vecops::dot(&q, base.entity.row(c)))
            .collect();
        let _ = log_loss_and_residual(&mut scores, t as usize);
        let mut g_q = vec![0.0f32; 4];
        for (c, &resid) in scores.iter().enumerate() {
            vecops::axpy(resid, base.entity.row(c), &mut g_q);
        }
        let rel_row = base.relation.row(0);
        let (rhat, rnorm) = normalize(quat_at(rel_row, 0));
        let a = quat_at(base.entity.row(h as usize), 0);
        let g_rhat = lmul_transpose(a, quat_at(&g_q, 0));
        let dot_rg: f32 = (0..4).map(|i| rhat[i] * g_rhat[i]).sum();
        let grad_rel: Vec<f32> = (0..4)
            .map(|i| (g_rhat[i] - dot_rg * rhat[i]) / rnorm)
            .collect();

        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = base.clone();
            plus.relation.as_mut_slice()[i] += eps;
            let mut minus = base.clone();
            minus.relation.as_mut_slice()[i] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad_rel[i]).abs() < 2e-2,
                "rel grad [{i}]: fd {fd} vs analytic {}",
                grad_rel[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from_u64(5);
        let mut emb = Embeddings::init(12, 2, 8, &mut rng);
        let train: Vec<Triple> = (0..10u32)
            .map(|i| Triple::new(i, i % 2, (i + 2) % 12))
            .collect();
        let mut model = QuatE::new(&emb, 0.1, 6);
        let first = model.train_epoch(&mut emb, &train, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&mut emb, &train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic]
    fn requires_dim_divisible_by_four() {
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(4, 1, 6, &mut rng);
        let _ = QuatE::new(&emb, 0.1, 2);
    }
}
