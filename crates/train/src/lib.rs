//! # eras-train
//!
//! The KG-embedding training and evaluation engine.
//!
//! The paper's experiments sit on a standard KGE stack: embeddings trained
//! with the multiclass log-loss of Lacroix et al. (1-vs-all over entities,
//! Section IV-C2), evaluated with filtered MRR / Hit@k link prediction and
//! triplet classification. This crate implements that stack on the CPU
//! with *exact analytic gradients* — every model in scope is a shallow
//! multilinear form, so no autodiff engine is required, and every gradient
//! is verified against finite differences in the test suite.
//!
//! Contents:
//!
//! - [`embeddings`] — the `ω = {E, R}` parameter tables;
//! - [`block`] — the workhorse: the (relation-aware) block bilinear model
//!   `f_n(h,r,t) = Σ ⟨h_i, o, t_j⟩` with full- and sampled-softmax training
//!   steps. AutoSF, ERAS and the bilinear zoo (DistMult, ComplEx, SimplE,
//!   Analogy) are all instances;
//! - [`baselines`] — the non-bilinear comparators of Table VI implemented
//!   from scratch: TransE, TransH, RotatE (margin loss + negative
//!   sampling) and TuckER (multiclass loss, trained core tensor);
//! - [`quate`] — QuatE, quaternion rotations (Table VI's strongest TBM
//!   besides the searched functions);
//! - [`mlpe`] — a learned-projection neural scorer standing in for the
//!   ConvE/HypER family (substitution documented in DESIGN.md §2);
//! - [`hole`] — HolE, circular-correlation embeddings (the HolEX family's
//!   base model);
//! - [`loss`] — loss-mode configuration shared by the trainers;
//! - [`trainer`] — the stand-alone training loop with validation-based
//!   early stopping (the paper's "train to convergence" protocol);
//! - [`eval`] — filtered link-prediction metrics (MRR, Hit@1/3/10), with
//!   per-relation and per-pattern slicing (Tables III, VI, VIII);
//! - [`classify`] — triplet classification with relation-specific
//!   thresholds fitted on validation (Table X);
//! - [`negative`] — filtered negative sampling;
//! - [`parallel`] — deterministic data-parallel minibatch training on
//!   the shared thread pool (bit-identical for every thread count);
//! - [`grads`] — the gradient containers the trainers' pure gradient
//!   kernels fill (gradient math separated from optimizer application);
//! - [`contract`] — the gradient contract: every analytic gradient above
//!   checked against central finite differences (`eras audit` runs it).

// Indexed loops are the clearer idiom in the numeric kernels below
// (parallel arrays, strided block views); the iterator forms clippy
// suggests would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod baselines;
pub mod block;
pub mod checkpoint;
pub mod classify;
pub mod contract;
pub mod embeddings;
pub mod eval;
pub mod grads;
pub mod hole;
pub mod io;
pub mod loss;
pub mod mlpe;
pub mod negative;
pub mod parallel;
pub mod quate;
pub mod trainer;

pub use block::BlockModel;
pub use contract::{check_case, run_all_contracts, GradCase, GradReport};
pub use embeddings::Embeddings;
pub use eval::{CandidateSet, LinkPredictionMetrics, RankingMode, ScoreModel};
pub use loss::{Corruption, LossMode};
pub use negative::NegCtx;
