//! Triplet classification (Section V-B2, Table X of the paper).
//!
//! A triple `(h, r, t)` is predicted positive when `f(h,r,t) > θ_r`, with
//! the relation-specific threshold `θ_r` chosen to maximise accuracy on
//! the validation split. The benchmarks' published classification sets
//! ship fixed negatives; here negatives are sampled (filtered) alongside
//! each positive, which reproduces the published construction.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::negative::negatives_for;
use eras_data::{Dataset, FilterIndex, Triple};
use eras_linalg::cmp::nan_last_asc_f32;
use eras_linalg::Rng;

/// A labelled classification set: positives paired with filtered negatives.
#[derive(Debug, Clone)]
pub struct ClassificationSet {
    /// True triples.
    pub positives: Vec<Triple>,
    /// Sampled non-triples, one per positive.
    pub negatives: Vec<Triple>,
}

impl ClassificationSet {
    /// Build from a triple list by sampling one filtered negative each.
    pub fn from_positives(
        positives: &[Triple],
        num_entities: usize,
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> Self {
        ClassificationSet {
            positives: positives.to_vec(),
            negatives: negatives_for(positives, num_entities, filter, rng),
        }
    }
}

/// Relation-specific decision thresholds.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// `θ_r` per relation; relations unseen in validation fall back to
    /// the global threshold.
    pub per_relation: Vec<f32>,
    /// Global threshold over all validation scores.
    pub global: f32,
}

/// Best-accuracy threshold for a set of (score, is_positive) pairs: the
/// midpoint between consecutive distinct scores maximising accuracy.
fn best_threshold(mut scored: Vec<(f32, bool)>) -> (f32, usize) {
    if scored.is_empty() {
        return (0.0, 0);
    }
    scored.sort_by(|a, b| nan_last_asc_f32(a.0, b.0));
    let total_pos = scored.iter().filter(|(_, p)| *p).count();
    // Threshold below everything: all predicted positive.
    let mut best_correct = total_pos; // negatives all wrong
    let mut best_thr = scored[0].0 - 1.0;
    // Sweep: threshold after position i ⇒ items ≤ i predicted negative.
    let mut neg_below = 0usize;
    let mut pos_below = 0usize;
    for i in 0..scored.len() {
        if scored[i].1 {
            pos_below += 1;
        } else {
            neg_below += 1;
        }
        let correct = neg_below + (total_pos - pos_below);
        if correct > best_correct && (i + 1 == scored.len() || scored[i + 1].0 > scored[i].0) {
            best_correct = correct;
            best_thr = if i + 1 == scored.len() {
                scored[i].0 + 1.0
            } else {
                (scored[i].0 + scored[i + 1].0) / 2.0
            };
        }
    }
    (best_thr, best_correct)
}

/// Fit `θ_r` per relation (and a global fallback) on a validation set.
pub fn fit_thresholds<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    valid: &ClassificationSet,
    num_relations: usize,
) -> Thresholds {
    let mut per_rel: Vec<Vec<(f32, bool)>> = vec![Vec::new(); num_relations];
    let mut all: Vec<(f32, bool)> = Vec::new();
    for (&pos, &neg) in valid.positives.iter().zip(&valid.negatives) {
        let sp = model.score_triple(emb, pos);
        let sn = model.score_triple(emb, neg);
        per_rel[pos.rel as usize].push((sp, true));
        per_rel[neg.rel as usize].push((sn, false));
        all.push((sp, true));
        all.push((sn, false));
    }
    let (global, _) = best_threshold(all);
    let per_relation = per_rel
        .into_iter()
        .map(|scored| {
            if scored.is_empty() {
                global
            } else {
                best_threshold(scored).0
            }
        })
        .collect();
    Thresholds {
        per_relation,
        global,
    }
}

/// Classification accuracy on a test set under fitted thresholds.
pub fn accuracy<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    test: &ClassificationSet,
    thresholds: &Thresholds,
) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    let thr = |rel: u32| -> f32 {
        thresholds
            .per_relation
            .get(rel as usize)
            .copied()
            .unwrap_or(thresholds.global)
    };
    for &t in &test.positives {
        if model.score_triple(emb, t) > thr(t.rel) {
            correct += 1;
        }
        total += 1;
    }
    for &t in &test.negatives {
        if model.score_triple(emb, t) <= thr(t.rel) {
            correct += 1;
        }
        total += 1;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// End-to-end harness: build valid/test classification sets from the
/// dataset splits, fit thresholds on valid, return test accuracy.
pub fn classify_dataset<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    dataset: &Dataset,
    filter: &FilterIndex,
    seed: u64,
) -> f64 {
    let mut rng = Rng::seed_from_u64(seed);
    let valid =
        ClassificationSet::from_positives(&dataset.valid, dataset.num_entities(), filter, &mut rng);
    let test =
        ClassificationSet::from_positives(&dataset.test, dataset.num_entities(), filter, &mut rng);
    let thresholds = fit_thresholds(model, emb, &valid, dataset.num_relations());
    accuracy(model, emb, &test, &thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockModel;
    use eras_sf::zoo;

    struct OracleModel {
        truth: FilterIndex,
    }

    impl ScoreModel for OracleModel {
        fn score_all_tails(&self, _e: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
            for (t, o) in out.iter_mut().enumerate() {
                *o = if self.truth.contains(Triple::new(h, r, t as u32)) {
                    1.0
                } else {
                    -1.0
                };
            }
        }
        fn score_all_heads(&self, _e: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
            for (h, o) in out.iter_mut().enumerate() {
                *o = if self.truth.contains(Triple::new(h as u32, r, t)) {
                    1.0
                } else {
                    -1.0
                };
            }
        }
        fn score_triple(&self, _e: &Embeddings, t: Triple) -> f32 {
            if self.truth.contains(t) {
                1.0
            } else {
                -1.0
            }
        }
    }

    #[test]
    fn best_threshold_separable() {
        let scored = vec![(0.1, false), (0.2, false), (0.8, true), (0.9, true)];
        let (thr, correct) = best_threshold(scored);
        assert_eq!(correct, 4);
        assert!(thr > 0.2 && thr < 0.8);
    }

    #[test]
    fn best_threshold_all_positive() {
        let scored = vec![(0.5, true), (0.6, true)];
        let (thr, correct) = best_threshold(scored);
        assert_eq!(correct, 2);
        assert!(thr < 0.5);
    }

    #[test]
    fn best_threshold_empty() {
        assert_eq!(best_threshold(vec![]), (0.0, 0));
    }

    #[test]
    fn oracle_model_achieves_perfect_accuracy() {
        let dataset = eras_data::Preset::Tiny.build(6);
        let filter = FilterIndex::build(&dataset);
        let model = OracleModel {
            truth: filter.clone(),
        };
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(dataset.num_entities(), dataset.num_relations(), 4, &mut rng);
        let acc = classify_dataset(&model, &emb, &dataset, &filter, 1);
        assert!(acc > 0.999, "oracle accuracy {acc}");
    }

    #[test]
    fn untrained_model_is_near_chance() {
        let dataset = eras_data::Preset::Tiny.build(6);
        let filter = FilterIndex::build(&dataset);
        let model = BlockModel::universal(zoo::distmult(4), dataset.num_relations());
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let acc = classify_dataset(&model, &emb, &dataset, &filter, 1);
        assert!(
            (0.3..0.75).contains(&acc),
            "untrained accuracy should hover near 0.5, got {acc}"
        );
    }

    #[test]
    fn thresholds_fall_back_to_global_for_unseen_relations() {
        let dataset = eras_data::Preset::Tiny.build(6);
        let filter = FilterIndex::build(&dataset);
        let model = OracleModel {
            truth: filter.clone(),
        };
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(dataset.num_entities(), dataset.num_relations(), 4, &mut rng);
        let valid = ClassificationSet {
            positives: vec![dataset.valid[0]],
            negatives: vec![Triple::new(0, dataset.valid[0].rel, 0)],
        };
        let thr = fit_thresholds(&model, &emb, &valid, dataset.num_relations() + 5);
        assert_eq!(thr.per_relation.len(), dataset.num_relations() + 5);
        // Relations with no validation data use the global threshold.
        let unseen = thr.per_relation.last().unwrap();
        assert_eq!(*unseen, thr.global);
    }
}
