//! Training checkpoints: periodic snapshots of the *complete* training
//! state, written atomically, from which a crashed run resumes
//! **bit-identically** — the resumed run produces exactly the
//! embeddings, metrics and early-stopping decisions the uninterrupted
//! run would have.
//!
//! "Complete state" is the whole closure of
//! [`crate::trainer::train_standalone_on`]'s epoch loop: the RNG state,
//! the cumulative shuffle order (the trainer re-shuffles the *previous*
//! epoch's order, so the permutation is history-dependent and must be
//! saved, not recomputed), both embedding tables, both Adagrad
//! accumulators with their decayed learning rates, the best validation
//! metrics, the patience counter, and the last epoch's mean loss.
//!
//! A checkpoint that does not match the run's configuration fingerprint
//! is rejected; a torn or corrupt checkpoint loads as a clean
//! [`IoError::Format`] and is treated by the trainer as "no checkpoint"
//! — restarting from scratch is still bit-identical to the
//! uninterrupted run, just slower.
//!
//! Format: magic `b"ERCK"`, version 1, little-endian throughout, saved
//! via the same atomic temp-file/fsync/rename path as model snapshots
//! (and therefore subject to the same fault-injection sites).

use crate::embeddings::Embeddings;
use crate::eval::LinkPredictionMetrics;
use crate::io::{self, IoError};
use crate::trainer::TrainConfig;
use eras_data::Triple;
use std::path::Path;

const MAGIC: &[u8; 4] = b"ERCK";
const VERSION: u32 = 1;

/// Everything the epoch loop needs to continue as if never interrupted.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Fingerprint of the configuration + dataset shape that produced
    /// this checkpoint; resume refuses a mismatch.
    pub fingerprint: u64,
    /// Epochs fully completed (the resumed loop starts at `epoch + 1`).
    pub epoch: usize,
    /// Xoshiro state after `epoch` epochs of shuffling and sampling.
    pub rng_state: [u64; 4],
    /// The training order as last shuffled (history-dependent).
    pub order: Vec<Triple>,
    /// Embedding tables after `epoch` epochs.
    pub embeddings: Embeddings,
    /// Adagrad squared-gradient accumulator for the entity table.
    pub ent_accum: Vec<f32>,
    /// Adagrad squared-gradient accumulator for the relation table.
    pub rel_accum: Vec<f32>,
    /// Entity-table learning rate after decay.
    pub lr_entity: f32,
    /// Relation-table learning rate after decay.
    pub lr_relation: f32,
    /// Best validation metrics observed so far.
    pub best_valid: LinkPredictionMetrics,
    /// Consecutive validations without improvement.
    pub strikes: usize,
    /// Mean training loss of the last completed epoch.
    pub final_loss: f32,
}

/// Fingerprint of a training configuration plus the dataset shape it
/// runs on. Two runs with equal fingerprints walk identical epoch
/// sequences, so a checkpoint from one can seed the other.
pub fn config_fingerprint(
    cfg: &TrainConfig,
    num_entities: usize,
    num_relations: usize,
    num_train: usize,
) -> u64 {
    let mut h = Fnv::new();
    h.usize(cfg.dim);
    h.u32(cfg.lr.to_bits());
    h.u32(cfg.l2.to_bits());
    h.u32(cfg.n3.to_bits());
    h.u32(cfg.decay_rate.to_bits());
    h.usize(cfg.batch_size);
    h.usize(cfg.max_epochs);
    h.usize(cfg.eval_every);
    h.usize(cfg.patience);
    match cfg.loss {
        crate::loss::LossMode::Full => h.usize(1),
        crate::loss::LossMode::Sampled { negatives } => {
            h.usize(2);
            h.usize(negatives);
        }
        crate::loss::LossMode::NegSampling {
            negatives,
            gamma,
            adversarial_temp,
            corruption,
        } => {
            h.usize(3);
            h.usize(negatives);
            h.u32(gamma.to_bits());
            h.u32(adversarial_temp.to_bits());
            h.usize(match corruption {
                crate::loss::Corruption::Uniform => 1,
                crate::loss::Corruption::Bernoulli => 2,
            });
        }
    }
    match cfg.ranking {
        crate::eval::RankingMode::Full => h.usize(1),
        crate::eval::RankingMode::Sampled { candidates, seed } => {
            h.usize(2);
            h.usize(candidates);
            h.u64(seed);
        }
    }
    h.u64(cfg.seed);
    // cfg.bounds is deliberately absent: the declared norm bounds feed
    // only the static certifier, never the update sequence, so a
    // re-declared contract must still resume an existing run.
    h.usize(match cfg.execution {
        crate::trainer::Execution::Sequential => 1,
        crate::trainer::Execution::DataParallel => 2,
    });
    h.usize(num_entities);
    h.usize(num_relations);
    h.usize(num_train);
    h.0
}

/// FNV-1a, field-at-a-time. Stability across runs of one binary is all
/// resume needs; this is not a persistent wire format.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

impl TrainCheckpoint {
    /// Save atomically (temp sibling + fsync + rename). Subject to the
    /// `IoWrite` and `TornWrite` fault-injection sites, like every
    /// persistence path.
    pub fn save(&self, path: &Path) -> Result<(), IoError> {
        io::atomic_write(path, |w| self.write(w))
    }

    fn write<W: std::io::Write>(&self, w: &mut W) -> Result<(), IoError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&self.fingerprint.to_le_bytes())?;
        w.write_all(&(self.epoch as u64).to_le_bytes())?;
        for s in self.rng_state {
            w.write_all(&s.to_le_bytes())?;
        }
        for bits in [
            self.lr_entity.to_bits(),
            self.lr_relation.to_bits(),
            self.final_loss.to_bits(),
        ] {
            w.write_all(&bits.to_le_bytes())?;
        }
        w.write_all(&(self.strikes as u64).to_le_bytes())?;
        for v in [
            self.best_valid.mrr,
            self.best_valid.hits1,
            self.best_valid.hits3,
            self.best_valid.hits10,
        ] {
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        w.write_all(&(self.best_valid.count as u64).to_le_bytes())?;
        for v in [
            self.embeddings.num_entities() as u64,
            self.embeddings.num_relations() as u64,
            self.embeddings.dim() as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        io::write_f32_table(w, &self.embeddings.entity)?;
        io::write_f32_table(w, &self.embeddings.relation)?;
        for accum in [&self.ent_accum, &self.rel_accum] {
            let mut buf = Vec::with_capacity(accum.len() * 4);
            for &x in accum.iter() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
        w.write_all(&(self.order.len() as u64).to_le_bytes())?;
        for t in &self.order {
            for v in [t.head, t.rel, t.tail] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load a checkpoint. Truncation and corruption surface as
    /// [`IoError::Format`]; a missing file as [`IoError::Io`]. Subject
    /// to the `SnapshotOpen` and `IoRead` injection sites.
    pub fn load(path: &Path) -> Result<TrainCheckpoint, IoError> {
        use eras_linalg::faults;
        if faults::check(faults::Site::SnapshotOpen).is_some() {
            return Err(IoError::Io(faults::injected_io_error(
                faults::Site::SnapshotOpen,
            )));
        }
        let file = std::fs::File::open(path)?;
        Self::read(std::io::BufReader::new(file))
    }

    // audit:allow(E701): m[0..4] indexes a fixed [f64; 4] with literal
    // indices — statically in bounds
    fn read<R: std::io::Read>(r: R) -> Result<TrainCheckpoint, IoError> {
        let mut r = io::FormatReader { inner: r };
        let magic = r.bytes::<4>()?;
        if &magic != MAGIC {
            return Err(IoError::Format(
                "bad magic; not an ERAS checkpoint file".into(),
            ));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(IoError::Format(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let fingerprint = u64::from_le_bytes(r.bytes::<8>()?);
        let epoch = r.len_u64("epoch")? as usize;
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = u64::from_le_bytes(r.bytes::<8>()?);
        }
        let lr_entity = f32::from_le_bytes(r.bytes::<4>()?);
        let lr_relation = f32::from_le_bytes(r.bytes::<4>()?);
        let final_loss = f32::from_le_bytes(r.bytes::<4>()?);
        let strikes = r.len_u64("strike count")? as usize;
        let mut m = [0f64; 4];
        for v in &mut m {
            *v = f64::from_bits(u64::from_le_bytes(r.bytes::<8>()?));
        }
        let count = r.len_u64("metric count")? as usize;
        let best_valid = LinkPredictionMetrics {
            mrr: m[0],
            hits1: m[1],
            hits3: m[2],
            hits10: m[3],
            count,
        };
        let ne = r.len_u64("entity count")? as usize;
        let nr = r.len_u64("relation count")? as usize;
        let dim = r.len_u64("dim")? as usize;
        if ne == 0 || nr == 0 || dim == 0 {
            return Err(IoError::Format("degenerate checkpoint shape".into()));
        }
        let entity = r.f32_table(ne, dim)?;
        let relation = r.f32_table(nr, dim)?;
        let ent_accum = r.f32_table(ne, dim)?.as_slice().to_vec();
        let rel_accum = r.f32_table(nr, dim)?.as_slice().to_vec();
        let n_order = r.len_u64("order length")? as usize;
        let mut order = Vec::with_capacity(n_order.min(1 << 20));
        for _ in 0..n_order {
            let (head, rel, tail) = (r.u32()?, r.u32()?, r.u32()?);
            order.push(Triple { head, rel, tail });
        }
        Ok(TrainCheckpoint {
            fingerprint,
            epoch,
            rng_state,
            order,
            embeddings: Embeddings { entity, relation },
            ent_accum,
            rel_accum,
            lr_entity,
            lr_relation,
            best_valid,
            strikes,
            final_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::Rng;

    fn sample() -> TrainCheckpoint {
        let mut rng = Rng::seed_from_u64(5);
        let embeddings = Embeddings::init(6, 3, 4, &mut rng);
        TrainCheckpoint {
            fingerprint: 0xDEAD_BEEF,
            epoch: 7,
            rng_state: [1, 2, 3, 4],
            order: vec![Triple::new(0, 1, 2), Triple::new(3, 0, 5)],
            ent_accum: (0..24).map(|i| i as f32).collect(),
            rel_accum: (0..12).map(|i| i as f32 * 0.5).collect(),
            embeddings,
            lr_entity: 0.09,
            lr_relation: 0.07,
            best_valid: LinkPredictionMetrics {
                mrr: 0.31,
                hits1: 0.2,
                hits3: 0.35,
                hits10: 0.5,
                count: 40,
            },
            strikes: 1,
            final_loss: 2.5,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        let back = TrainCheckpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back.fingerprint, ck.fingerprint);
        assert_eq!(back.epoch, ck.epoch);
        assert_eq!(back.rng_state, ck.rng_state);
        assert_eq!(back.order, ck.order);
        assert_eq!(
            back.embeddings.entity.as_slice(),
            ck.embeddings.entity.as_slice()
        );
        assert_eq!(back.ent_accum, ck.ent_accum);
        assert_eq!(back.rel_accum, ck.rel_accum);
        assert_eq!(back.lr_entity, ck.lr_entity);
        assert_eq!(back.lr_relation, ck.lr_relation);
        assert_eq!(back.best_valid, ck.best_valid);
        assert_eq!(back.strikes, ck.strikes);
        assert_eq!(back.final_loss, ck.final_loss);
    }

    #[test]
    fn every_truncation_is_a_clean_format_error() {
        let ck = sample();
        let mut buf = Vec::new();
        ck.write(&mut buf).unwrap();
        for cut in 0..buf.len() {
            match TrainCheckpoint::read(&buf[..cut]) {
                Err(IoError::Format(_)) => {}
                other => panic!("prefix of {cut} bytes: expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let ck = sample();
        let dir = std::env::temp_dir().join(format!("eras_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        ck.save(&path).unwrap();
        // No temp residue: the only file is the destination.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["train.ckpt".to_string()]);
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back.epoch, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let cfg = TrainConfig::default();
        let base = config_fingerprint(&cfg, 10, 3, 100);
        assert_eq!(base, config_fingerprint(&cfg, 10, 3, 100));
        let mut other = cfg.clone();
        other.seed = 1;
        assert_ne!(base, config_fingerprint(&other, 10, 3, 100));
        let mut lr = cfg.clone();
        lr.lr += 0.01;
        assert_ne!(base, config_fingerprint(&lr, 10, 3, 100));
        assert_ne!(base, config_fingerprint(&cfg, 11, 3, 100));
    }
}
