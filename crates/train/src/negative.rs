//! Filtered negative sampling for margin-based trainers and the
//! triplet-classification harness.
//!
//! Two corruption strategies: uniform head-or-tail (TransE) and the
//! cardinality-aware *Bernoulli* sampling of TransH, which corrupts the
//! side less likely to produce a false negative (for a 1-N relation,
//! corrupting the head risks hitting another true head, so the tail side
//! is preferred, and vice versa).

use eras_data::analysis::relation_cardinalities;
use eras_data::{FilterIndex, Triple};
use eras_linalg::Rng;

/// Corrupt `triple` into a negative by replacing the head or the tail
/// (chosen uniformly) with a random entity, rejecting corruptions that are
/// themselves known true triples. Gives up after a bounded number of
/// rejections and returns the last candidate (which can only happen in
/// pathologically dense graphs).
pub fn corrupt(triple: Triple, num_entities: usize, filter: &FilterIndex, rng: &mut Rng) -> Triple {
    corrupt_with_tail_prob(triple, num_entities, filter, 0.5, rng)
}

/// TransH-style Bernoulli corruptor: per relation, the probability of
/// corrupting the tail is `tph / (tph + hpt)` (tails-per-head over the sum
/// with heads-per-tail), so many-valued sides are corrupted less often.
#[derive(Debug, Clone)]
pub struct BernoulliCorruptor {
    /// Per-relation probability of corrupting the tail.
    tail_prob: Vec<f64>,
}

impl BernoulliCorruptor {
    /// Fit the per-relation probabilities from training triples.
    pub fn fit(train: &[Triple], num_relations: usize) -> Self {
        let tail_prob = relation_cardinalities(train, num_relations)
            .into_iter()
            .map(|c| {
                let denom = c.tails_per_head + c.heads_per_tail;
                if denom <= 0.0 {
                    0.5
                } else {
                    c.tails_per_head / denom
                }
            })
            .collect();
        BernoulliCorruptor { tail_prob }
    }

    /// Probability of corrupting the tail for `rel`.
    pub fn tail_prob(&self, rel: u32) -> f64 {
        self.tail_prob.get(rel as usize).copied().unwrap_or(0.5)
    }

    /// Sample a filtered negative for `triple`.
    pub fn corrupt(
        &self,
        triple: Triple,
        num_entities: usize,
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> Triple {
        corrupt_with_tail_prob(
            triple,
            num_entities,
            filter,
            self.tail_prob(triple.rel),
            rng,
        )
    }
}

/// Shared corruption core with an explicit tail-corruption probability.
fn corrupt_with_tail_prob(
    triple: Triple,
    num_entities: usize,
    filter: &FilterIndex,
    tail_prob: f64,
    rng: &mut Rng,
) -> Triple {
    debug_assert!(num_entities > 1);
    let corrupt_tail = rng.bernoulli(tail_prob);
    let mut candidate = triple;
    for _ in 0..64 {
        let e = rng.next_below(num_entities) as u32;
        candidate = if corrupt_tail {
            Triple::new(triple.head, triple.rel, e)
        } else {
            Triple::new(e, triple.rel, triple.tail)
        };
        if candidate != triple && !filter.contains(candidate) {
            return candidate;
        }
    }
    candidate
}

/// Produce one filtered negative per input triple (for classification
/// test sets, mirroring how the benchmarks' published negatives were
/// constructed).
pub fn negatives_for(
    triples: &[Triple],
    num_entities: usize,
    filter: &FilterIndex,
    rng: &mut Rng,
) -> Vec<Triple> {
    triples
        .iter()
        .map(|&t| corrupt(t, num_entities, filter, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_of(triples: &[Triple]) -> FilterIndex {
        FilterIndex::from_triples(triples.iter().copied())
    }

    #[test]
    fn negatives_are_not_known_positives() {
        let pos: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 1) % 21)).collect();
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(1);
        for &t in &pos {
            for _ in 0..10 {
                let neg = corrupt(t, 21, &filter, &mut rng);
                assert!(!filter.contains(neg), "sampled a positive {neg:?}");
                assert_ne!(neg, t);
            }
        }
    }

    #[test]
    fn negative_shares_relation_and_one_endpoint() {
        let pos = [Triple::new(0, 3, 1)];
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..20 {
            let neg = corrupt(pos[0], 50, &filter, &mut rng);
            assert_eq!(neg.rel, 3);
            assert!(neg.head == 0 || neg.tail == 1);
        }
    }

    #[test]
    fn bernoulli_prefers_safer_side() {
        // 1-N relation: head 0 points at many tails. tph ≈ 10, hpt = 1 →
        // tail corruption probability ≈ 10/11: corrupting the tail rarely
        // produces a false negative, corrupting the (single) head often
        // would.
        let pos: Vec<Triple> = (0..10).map(|t| Triple::new(0, 0, t + 1)).collect();
        let corruptor = BernoulliCorruptor::fit(&pos, 1);
        assert!(
            corruptor.tail_prob(0) > 0.85,
            "1-N relation should corrupt tails, p = {}",
            corruptor.tail_prob(0)
        );
        // Empirically, most sampled negatives replace the tail.
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(5);
        let mut tail_corruptions = 0;
        for _ in 0..200 {
            let neg = corruptor.corrupt(pos[0], 50, &filter, &mut rng);
            if neg.head == pos[0].head {
                tail_corruptions += 1;
            }
            assert!(!filter.contains(neg));
        }
        assert!(tail_corruptions > 160, "{tail_corruptions}/200");
    }

    #[test]
    fn bernoulli_unknown_relation_falls_back_to_half() {
        let corruptor = BernoulliCorruptor::fit(&[], 0);
        assert_eq!(corruptor.tail_prob(7), 0.5);
    }

    #[test]
    fn negatives_for_produces_one_per_triple() {
        let pos: Vec<Triple> = (0..5).map(|i| Triple::new(i, 0, i + 10)).collect();
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(3);
        let negs = negatives_for(&pos, 30, &filter, &mut rng);
        assert_eq!(negs.len(), 5);
    }
}
