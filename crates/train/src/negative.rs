//! Filtered negative sampling for margin-based trainers and the
//! triplet-classification harness.
//!
//! Two corruption strategies: uniform head-or-tail (TransE) and the
//! cardinality-aware *Bernoulli* sampling of TransH, which corrupts the
//! side less likely to produce a false negative (for a 1-N relation,
//! corrupting the head risks hitting another true head, so the tail side
//! is preferred, and vice versa).

use eras_data::analysis::relation_cardinalities;
use eras_data::{FilterIndex, Triple};
use eras_linalg::Rng;

/// Corrupt `triple` into a negative by replacing the head or the tail
/// (chosen uniformly) with a random entity, rejecting corruptions that are
/// themselves known true triples. Gives up after a bounded number of
/// rejections and returns the last candidate (which can only happen in
/// pathologically dense graphs).
pub fn corrupt(triple: Triple, num_entities: usize, filter: &FilterIndex, rng: &mut Rng) -> Triple {
    corrupt_with_tail_prob(triple, num_entities, filter, 0.5, rng)
}

/// TransH-style Bernoulli corruptor: per relation, the probability of
/// corrupting the tail is `tph / (tph + hpt)` (tails-per-head over the sum
/// with heads-per-tail), so many-valued sides are corrupted less often.
#[derive(Debug, Clone)]
pub struct BernoulliCorruptor {
    /// Per-relation probability of corrupting the tail.
    tail_prob: Vec<f64>,
}

impl BernoulliCorruptor {
    /// Fit the per-relation probabilities from training triples.
    pub fn fit(train: &[Triple], num_relations: usize) -> Self {
        let tail_prob = relation_cardinalities(train, num_relations)
            .into_iter()
            .map(|c| {
                let denom = c.tails_per_head + c.heads_per_tail;
                if denom <= 0.0 {
                    0.5
                } else {
                    c.tails_per_head / denom
                }
            })
            .collect();
        BernoulliCorruptor { tail_prob }
    }

    /// Probability of corrupting the tail for `rel`.
    pub fn tail_prob(&self, rel: u32) -> f64 {
        self.tail_prob.get(rel as usize).copied().unwrap_or(0.5)
    }

    /// Sample a filtered negative for `triple`.
    pub fn corrupt(
        &self,
        triple: Triple,
        num_entities: usize,
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> Triple {
        corrupt_with_tail_prob(
            triple,
            num_entities,
            filter,
            self.tail_prob(triple.rel),
            rng,
        )
    }
}

/// Shared corruption core with an explicit tail-corruption probability.
fn corrupt_with_tail_prob(
    triple: Triple,
    num_entities: usize,
    filter: &FilterIndex,
    tail_prob: f64,
    rng: &mut Rng,
) -> Triple {
    debug_assert!(num_entities > 1);
    let corrupt_tail = rng.bernoulli(tail_prob);
    let mut candidate = triple;
    for _ in 0..64 {
        let e = rng.next_below(num_entities) as u32;
        candidate = if corrupt_tail {
            Triple::new(triple.head, triple.rel, e)
        } else {
            Triple::new(e, triple.rel, triple.tail)
        };
        if candidate != triple && !filter.contains(candidate) {
            return candidate;
        }
    }
    candidate
}

/// Redraw bound for one negative slot: after this many filtered
/// rejections the last draw is kept even if it is a known positive.
/// Only pathologically dense `(anchor, rel)` pairs — where almost every
/// entity forms a true triple — can hit it; the corruptor property
/// tests document the bound.
pub const NEG_GIVE_UP: usize = 64;

/// Per-run context for the [`crate::loss::LossMode::NegSampling`]
/// training path: the filtered-ranking index negatives are rejected
/// against, plus the fitted Bernoulli corruptor when the corruption
/// policy asks for cardinality-aware side selection.
#[derive(Debug, Clone)]
pub struct NegCtx<'a> {
    /// Known-true triples; sampled negatives are rejected against it.
    pub filter: &'a FilterIndex,
    /// Per-relation tail-corruption probabilities
    /// ([`crate::loss::Corruption::Bernoulli`] only).
    pub bernoulli: Option<BernoulliCorruptor>,
}

impl<'a> NegCtx<'a> {
    /// Context for uniform both-sides corruption.
    pub fn uniform(filter: &'a FilterIndex) -> Self {
        NegCtx {
            filter,
            bernoulli: None,
        }
    }

    /// Context for Bernoulli one-side corruption, fitting the
    /// per-relation probabilities from the training triples.
    pub fn bernoulli(filter: &'a FilterIndex, train: &[Triple], num_relations: usize) -> Self {
        NegCtx {
            filter,
            bernoulli: Some(BernoulliCorruptor::fit(train, num_relations)),
        }
    }
}

/// Fill `out` with filtered negative entity ids for one side of a
/// positive triple: `tail_side = true` corrupts the tail of
/// `(anchor, rel, ·)`, `false` the head of `(·, rel, anchor)`.
///
/// Each slot redraws uniformly until the candidate neither reproduces
/// `target` nor forms a known-true triple, keeping the last draw after
/// [`NEG_GIVE_UP`] rejections. With `filter = None` only the target is
/// excluded (the unfiltered fallback for callers without an index).
/// Deterministic in `rng`: the same seed produces the same block.
#[allow(clippy::too_many_arguments)]
pub fn sample_neg_block(
    anchor: u32,
    rel: u32,
    target: u32,
    tail_side: bool,
    num_entities: usize,
    filter: Option<&FilterIndex>,
    rng: &mut Rng,
    out: &mut [u32],
) {
    debug_assert!(num_entities > 1);
    // The known-true entities for this (anchor, rel) side, sorted
    // ascending — one lookup per block, one binary search per draw.
    let known: &[u32] = match filter {
        Some(f) => {
            if tail_side {
                f.tails(anchor, rel)
            } else {
                f.heads(anchor, rel)
            }
        }
        None => &[],
    };
    for slot in out.iter_mut() {
        let mut e = target;
        for _ in 0..NEG_GIVE_UP {
            e = rng.next_below(num_entities) as u32;
            if e != target && known.binary_search(&e).is_err() {
                break;
            }
        }
        *slot = e;
    }
}

/// Produce one filtered negative per input triple (for classification
/// test sets, mirroring how the benchmarks' published negatives were
/// constructed).
pub fn negatives_for(
    triples: &[Triple],
    num_entities: usize,
    filter: &FilterIndex,
    rng: &mut Rng,
) -> Vec<Triple> {
    triples
        .iter()
        .map(|&t| corrupt(t, num_entities, filter, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_of(triples: &[Triple]) -> FilterIndex {
        FilterIndex::from_triples(triples.iter().copied())
    }

    #[test]
    fn negatives_are_not_known_positives() {
        let pos: Vec<Triple> = (0..20).map(|i| Triple::new(i, 0, (i + 1) % 21)).collect();
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(1);
        for &t in &pos {
            for _ in 0..10 {
                let neg = corrupt(t, 21, &filter, &mut rng);
                assert!(!filter.contains(neg), "sampled a positive {neg:?}");
                assert_ne!(neg, t);
            }
        }
    }

    #[test]
    fn negative_shares_relation_and_one_endpoint() {
        let pos = [Triple::new(0, 3, 1)];
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..20 {
            let neg = corrupt(pos[0], 50, &filter, &mut rng);
            assert_eq!(neg.rel, 3);
            assert!(neg.head == 0 || neg.tail == 1);
        }
    }

    #[test]
    fn bernoulli_prefers_safer_side() {
        // 1-N relation: head 0 points at many tails. tph ≈ 10, hpt = 1 →
        // tail corruption probability ≈ 10/11: corrupting the tail rarely
        // produces a false negative, corrupting the (single) head often
        // would.
        let pos: Vec<Triple> = (0..10).map(|t| Triple::new(0, 0, t + 1)).collect();
        let corruptor = BernoulliCorruptor::fit(&pos, 1);
        assert!(
            corruptor.tail_prob(0) > 0.85,
            "1-N relation should corrupt tails, p = {}",
            corruptor.tail_prob(0)
        );
        // Empirically, most sampled negatives replace the tail.
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(5);
        let mut tail_corruptions = 0;
        for _ in 0..200 {
            let neg = corruptor.corrupt(pos[0], 50, &filter, &mut rng);
            if neg.head == pos[0].head {
                tail_corruptions += 1;
            }
            assert!(!filter.contains(neg));
        }
        assert!(tail_corruptions > 160, "{tail_corruptions}/200");
    }

    #[test]
    fn bernoulli_unknown_relation_falls_back_to_half() {
        let corruptor = BernoulliCorruptor::fit(&[], 0);
        assert_eq!(corruptor.tail_prob(7), 0.5);
    }

    /// Property: across many seeds, block negatives are never known-true
    /// triples and never the target — the give-up bound is unreachable
    /// on any graph that is not near-complete.
    #[test]
    fn neg_blocks_are_never_known_true() {
        let pos: Vec<Triple> = (0..30u32)
            .map(|i| Triple::new(i % 6, i % 3, (i * 5 + 2) % 40))
            .collect();
        let filter = filter_of(&pos);
        let mut block = [0u32; 8];
        for seed in 0..50u64 {
            let mut rng = Rng::seed_from_u64(seed);
            for &t in &pos {
                sample_neg_block(
                    t.head,
                    t.rel,
                    t.tail,
                    true,
                    40,
                    Some(&filter),
                    &mut rng,
                    &mut block,
                );
                for &e in &block {
                    assert_ne!(e, t.tail);
                    assert!(
                        !filter.contains(Triple::new(t.head, t.rel, e)),
                        "tail block sampled a positive ({}, {}, {e})",
                        t.head,
                        t.rel
                    );
                }
                sample_neg_block(
                    t.tail,
                    t.rel,
                    t.head,
                    false,
                    40,
                    Some(&filter),
                    &mut rng,
                    &mut block,
                );
                for &e in &block {
                    assert_ne!(e, t.head);
                    assert!(
                        !filter.contains(Triple::new(e, t.rel, t.tail)),
                        "head block sampled a positive ({e}, {}, {})",
                        t.rel,
                        t.tail
                    );
                }
            }
        }
    }

    /// The give-up bound in action: on a near-complete (anchor, rel)
    /// side the sampler terminates and returns *something* rather than
    /// spinning — the documented escape hatch.
    #[test]
    fn neg_block_gives_up_on_near_complete_side() {
        // Entity 0 relates to every entity but itself: no valid tail
        // negative exists except 0, which equals... head, not target.
        let pos: Vec<Triple> = (1..8u32).map(|t| Triple::new(0, 0, t)).collect();
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(9);
        let mut block = [u32::MAX; 4];
        sample_neg_block(0, 0, 3, true, 8, Some(&filter), &mut rng, &mut block);
        // Terminates; every slot holds a real entity id.
        assert!(block.iter().all(|&e| (e as usize) < 8), "{block:?}");
    }

    /// Bernoulli tail probabilities against hand-computed cardinalities:
    /// rel 0 is 1-N (one head, five tails → tph = 5, hpt = 1), rel 1 is
    /// N-1 (four heads, one tail → tph = 1, hpt = 4).
    #[test]
    fn bernoulli_matches_hand_computed_cardinalities() {
        let mut pos: Vec<Triple> = (1..=5u32).map(|t| Triple::new(0, 0, t)).collect();
        pos.extend((10..14u32).map(|h| Triple::new(h, 1, 20)));
        let corruptor = BernoulliCorruptor::fit(&pos, 2);
        assert!(
            (corruptor.tail_prob(0) - 5.0 / 6.0).abs() < 1e-12,
            "rel 0: {} vs 5/6",
            corruptor.tail_prob(0)
        );
        assert!(
            (corruptor.tail_prob(1) - 1.0 / 5.0).abs() < 1e-12,
            "rel 1: {} vs 1/5",
            corruptor.tail_prob(1)
        );
    }

    /// Block sampling is a pure function of the seed: same seed, same
    /// block, on both sides; different seeds diverge.
    #[test]
    fn neg_blocks_are_seed_stable() {
        let pos: Vec<Triple> = (0..10u32).map(|i| Triple::new(i, 0, i + 10)).collect();
        let filter = filter_of(&pos);
        for tail_side in [true, false] {
            let mut a = [0u32; 16];
            let mut b = [0u32; 16];
            let mut c = [0u32; 16];
            sample_neg_block(
                3,
                0,
                13,
                tail_side,
                30,
                Some(&filter),
                &mut Rng::seed_from_u64(42),
                &mut a,
            );
            sample_neg_block(
                3,
                0,
                13,
                tail_side,
                30,
                Some(&filter),
                &mut Rng::seed_from_u64(42),
                &mut b,
            );
            sample_neg_block(
                3,
                0,
                13,
                tail_side,
                30,
                Some(&filter),
                &mut Rng::seed_from_u64(43),
                &mut c,
            );
            assert_eq!(a, b, "same seed must reproduce the block");
            assert_ne!(a, c, "different seeds should diverge");
        }
    }

    /// Unfiltered fallback: only the target is excluded.
    #[test]
    fn neg_block_without_filter_excludes_only_target() {
        let mut rng = Rng::seed_from_u64(7);
        let mut block = [0u32; 64];
        sample_neg_block(0, 0, 2, true, 3, None, &mut rng, &mut block);
        assert!(block.iter().all(|&e| e != 2 && e < 3), "{block:?}");
        // Both remaining entities appear: nothing else is excluded.
        assert!(block.contains(&0) && block.contains(&1));
    }

    #[test]
    fn negatives_for_produces_one_per_triple() {
        let pos: Vec<Triple> = (0..5).map(|i| Triple::new(i, 0, i + 10)).collect();
        let filter = filter_of(&pos);
        let mut rng = Rng::seed_from_u64(3);
        let negs = negatives_for(&pos, 30, &filter, &mut rng);
        assert_eq!(negs.len(), 5);
    }
}
