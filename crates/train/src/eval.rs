//! Filtered link-prediction evaluation (Section V-B1 of the paper).
//!
//! For every evaluation triple `(h, r, t)` the model ranks `t` against all
//! entities as the answer to `(h, r, ?)` and `h` against all entities as
//! the answer to `(?, r, t)`. Candidates that form *other* known true
//! triples are filtered out; ties are resolved to the average rank so an
//! untrained constant scorer gets chance-level MRR rather than an
//! optimistic 1.0.

use crate::embeddings::Embeddings;
use eras_data::patterns::RelationPattern;
use eras_data::{Dataset, FilterIndex, Triple};
use eras_linalg::pool::ThreadPool;
use eras_linalg::{Matrix, Rng};

/// How ranking candidates are materialised during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankingMode {
    /// Rank against every entity — the exact filtered protocol.
    #[default]
    Full,
    /// Rank against a seeded sample of `candidates` entities plus the
    /// true answer (filtered the same way). `O(candidates)` per query
    /// instead of `O(N_e)`, which is what makes million-entity
    /// validation-during-training affordable. With `candidates ≥ N_e`
    /// the sample is the full entity set and the metrics reproduce the
    /// exact protocol bit for bit.
    Sampled {
        /// Number of candidate entities to draw (without replacement).
        candidates: usize,
        /// Seed for the candidate draw; fixed seed → fixed candidate
        /// set → reproducible metrics.
        seed: u64,
    },
}

/// A seeded, sorted candidate sample shared by every query of one
/// sampled evaluation: the ids (ascending, distinct) plus their
/// gathered entity rows, so the fused scan can stream candidate scores
/// with the same kernel it uses for the full table.
pub struct CandidateSet {
    ids: Vec<u32>,
    rows: Matrix,
}

impl CandidateSet {
    /// Draw `candidates` distinct entities with `seed` and gather their
    /// embedding rows. `candidates ≥ num_entities` selects every entity
    /// in ascending order — the sampled evaluator then reproduces the
    /// full filtered ranking exactly.
    pub fn draw(emb: &Embeddings, candidates: usize, seed: u64) -> Self {
        assert!(candidates > 0, "need at least one ranking candidate");
        let n = emb.num_entities();
        let ids: Vec<u32> = if candidates >= n {
            (0..n as u32).collect()
        } else {
            let mut rng = Rng::seed_from_u64(seed);
            let mut ids: Vec<u32> = rng
                .sample_distinct(n, candidates)
                .into_iter()
                .map(|i| i as u32)
                .collect();
            ids.sort_unstable();
            ids
        };
        let dim = emb.dim();
        let mut rows = Matrix::zeros(ids.len(), dim);
        for (slot, &id) in ids.iter().enumerate() {
            rows.row_mut(slot)
                .copy_from_slice(emb.entity.row(id as usize));
        }
        CandidateSet { ids, rows }
    }

    /// The sampled entity ids, ascending and distinct.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The gathered candidate embedding rows (`len() × dim`), in the
    /// same order as [`CandidateSet::ids`].
    pub fn rows(&self) -> &Matrix {
        &self.rows
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty (it never is — `draw` asserts).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Local slot of entity `id` in the sample, if drawn.
    pub fn local_of(&self, id: u32) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }
}

/// Anything that can score candidates for both query directions.
///
/// Implemented by [`crate::BlockModel`] and every baseline in
/// [`crate::baselines`]; the evaluator and the classification harness are
/// generic over it.
pub trait ScoreModel {
    /// Scores of `(h, r, t')` for every entity `t'` into `out`.
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]);
    /// Scores of `(h', r, t)` for every entity `h'` into `out`.
    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]);
    /// Score of one triple.
    fn score_triple(&self, emb: &Embeddings, triple: Triple) -> f32;

    /// Filtered average-tie rank of `target` as the answer to
    /// `(h, r, ?)`. `scores` is an `num_entities`-sized scratch buffer
    /// for the default dense path (score everything, then
    /// [`filtered_rank`]); implementations with a streaming scoring
    /// path — [`crate::BlockModel`] uses the fused entity-table scan —
    /// may override and ignore it. Overrides must return exactly what
    /// the default computes.
    fn tail_rank(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        scores: &mut [f32],
    ) -> f64 {
        self.score_all_tails(emb, h, r, scores);
        filtered_rank(scores, target, filtered)
    }

    /// Filtered average-tie rank of `target` as the answer to
    /// `(?, r, t)` — see [`ScoreModel::tail_rank`].
    fn head_rank(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        scores: &mut [f32],
    ) -> f64 {
        self.score_all_heads(emb, t, r, scores);
        filtered_rank(scores, target, filtered)
    }

    /// Filtered average-tie rank of `target` as the answer to
    /// `(h, r, ?)` among `cand ∪ {target}` — the sampled protocol. The
    /// default scores everything and ranks over the sample;
    /// implementations with a streaming path (BlockModel scans the
    /// gathered candidate rows) may override. Overrides must return
    /// exactly what the default computes.
    #[allow(clippy::too_many_arguments)]
    fn tail_rank_sampled(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        scores: &mut [f32],
    ) -> f64 {
        self.score_all_tails(emb, h, r, scores);
        sampled_filtered_rank(scores, cand.ids(), target, filtered)
    }

    /// Sampled counterpart of [`ScoreModel::head_rank`] — see
    /// [`ScoreModel::tail_rank_sampled`].
    #[allow(clippy::too_many_arguments)]
    fn head_rank_sampled(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        scores: &mut [f32],
    ) -> f64 {
        self.score_all_heads(emb, t, r, scores);
        sampled_filtered_rank(scores, cand.ids(), target, filtered)
    }
}

impl ScoreModel for Box<dyn ScoreModel> {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        self.as_ref().score_all_tails(emb, h, r, out)
    }
    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        self.as_ref().score_all_heads(emb, t, r, out)
    }
    fn score_triple(&self, emb: &Embeddings, triple: Triple) -> f32 {
        self.as_ref().score_triple(emb, triple)
    }
    // Forward the rank methods too, so a boxed BlockModel keeps its
    // fused-scan override instead of falling back to the dense default.
    fn tail_rank(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        scores: &mut [f32],
    ) -> f64 {
        self.as_ref().tail_rank(emb, h, r, target, filtered, scores)
    }
    fn head_rank(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        scores: &mut [f32],
    ) -> f64 {
        self.as_ref().head_rank(emb, t, r, target, filtered, scores)
    }
    fn tail_rank_sampled(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        scores: &mut [f32],
    ) -> f64 {
        self.as_ref()
            .tail_rank_sampled(emb, h, r, target, filtered, cand, scores)
    }
    fn head_rank_sampled(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        scores: &mut [f32],
    ) -> f64 {
        self.as_ref()
            .head_rank_sampled(emb, t, r, target, filtered, cand, scores)
    }
}

/// Aggregated ranking metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkPredictionMetrics {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Fraction of queries ranked 1 (the paper reports this in %).
    pub hits1: f64,
    /// Fraction ranked ≤ 3.
    pub hits3: f64,
    /// Fraction ranked ≤ 10.
    pub hits10: f64,
    /// Number of ranking queries aggregated (2 per triple).
    pub count: usize,
}

/// Triples per evaluation shard. Both the sequential and the pooled
/// evaluator cut the triple set into shards of this size and merge the
/// per-shard partials with the same fixed reduction tree, so the two
/// paths produce bit-identical metrics (see [`reduce_counts`]).
const EVAL_SHARD_TRIPLES: usize = 64;

/// Per-shard metric partials: integer hit counts (exact under any
/// merge order) plus the reciprocal-rank sum as the one floating-point
/// accumulator whose merge order the reduction tree pins down.
#[derive(Debug, Clone, Copy, Default)]
struct RankCounts {
    mrr: f64,
    hits1: u64,
    hits3: u64,
    hits10: u64,
    count: u64,
}

impl RankCounts {
    fn accumulate(&mut self, rank: f64) {
        self.mrr += 1.0 / rank;
        if rank <= 1.0 {
            self.hits1 += 1;
        }
        if rank <= 3.0 {
            self.hits3 += 1;
        }
        if rank <= 10.0 {
            self.hits10 += 1;
        }
        self.count += 1;
    }

    fn merge(&mut self, other: &RankCounts) {
        self.mrr += other.mrr;
        self.hits1 += other.hits1;
        self.hits3 += other.hits3;
        self.hits10 += other.hits10;
        self.count += other.count;
    }

    fn finalise(self) -> LinkPredictionMetrics {
        if self.count == 0 {
            return LinkPredictionMetrics::default();
        }
        let n = self.count as f64;
        LinkPredictionMetrics {
            mrr: self.mrr / n,
            hits1: self.hits1 as f64 / n,
            hits3: self.hits3 as f64 / n,
            hits10: self.hits10 as f64 / n,
            count: self.count as usize,
        }
    }
}

/// Rank both directions of every triple in one shard. A pure function
/// of the shard's triples — which worker runs it cannot matter.
fn eval_shard<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    scores: &mut [f32],
) -> RankCounts {
    let mut counts = RankCounts::default();
    for &t in triples {
        counts.accumulate(model.tail_rank(
            emb,
            t.head,
            t.rel,
            t.tail,
            filter.tails(t.head, t.rel),
            scores,
        ));
        counts.accumulate(model.head_rank(
            emb,
            t.tail,
            t.rel,
            t.head,
            filter.heads(t.tail, t.rel),
            scores,
        ));
    }
    counts
}

/// Merge shard partials with stride doubling (`p[i] += p[i + stride]`,
/// stride 1, 2, 4, …). The tree shape depends only on the shard count,
/// so the reciprocal-rank sums come out bit-identical whether the
/// shards were evaluated inline or scattered across a pool.
fn reduce_counts(mut parts: Vec<RankCounts>) -> RankCounts {
    let n = parts.len();
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let src = parts[i + stride];
            parts[i].merge(&src);
            i += 2 * stride;
        }
        stride *= 2;
    }
    parts.into_iter().next().unwrap_or_default()
}

/// Filtered average-tie rank of `target` among `scores`, excluding the
/// `filtered` entities (other known-true answers).
///
/// `rank = 1 + #{strictly better} + #{ties}/2`, counted over non-filtered
/// candidates only.
pub fn filtered_rank(scores: &[f32], target: u32, filtered: &[u32]) -> f64 {
    let target_score = scores[target as usize];
    let mut better = 0usize;
    let mut ties = 0usize;
    let mut filt_iter = filtered.iter().peekable();
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        // `filtered` is sorted; advance the cursor and skip matches
        // (the target itself is always kept).
        while let Some(&&f) = filt_iter.peek() {
            if f < i {
                filt_iter.next();
            } else {
                break;
            }
        }
        if i != target {
            if let Some(&&f) = filt_iter.peek() {
                if f == i {
                    continue;
                }
            }
            if s > target_score {
                better += 1;
            } else if s == target_score {
                ties += 1;
            }
        }
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

/// Filtered average-tie rank of `target` among the candidate ids in
/// `ids` (sorted ascending) — the sampled form of [`filtered_rank`].
/// The target always competes (rank starts at 1 whether or not it was
/// drawn) and is never filtered out; other known-true answers in
/// `filtered` (sorted ascending) are skipped. With `ids = 0..N_e` this
/// computes exactly what [`filtered_rank`] computes.
pub fn sampled_filtered_rank(scores: &[f32], ids: &[u32], target: u32, filtered: &[u32]) -> f64 {
    let target_score = scores[target as usize];
    let mut better = 0usize;
    let mut ties = 0usize;
    let mut filt_iter = filtered.iter().peekable();
    for &i in ids {
        // `ids` and `filtered` are both sorted; one forward cursor.
        while let Some(&&f) = filt_iter.peek() {
            if f < i {
                filt_iter.next();
            } else {
                break;
            }
        }
        if i == target {
            continue;
        }
        if let Some(&&f) = filt_iter.peek() {
            if f == i {
                continue;
            }
        }
        let s = scores[i as usize];
        if s > target_score {
            better += 1;
        } else if s == target_score {
            ties += 1;
        }
    }
    1.0 + better as f64 + ties as f64 / 2.0
}

/// Rank both directions of every triple in one shard against the
/// shared candidate sample. A pure function of the shard's triples.
fn eval_shard_sampled<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    cand: &CandidateSet,
    scores: &mut [f32],
) -> RankCounts {
    let mut counts = RankCounts::default();
    for &t in triples {
        counts.accumulate(model.tail_rank_sampled(
            emb,
            t.head,
            t.rel,
            t.tail,
            filter.tails(t.head, t.rel),
            cand,
            scores,
        ));
        counts.accumulate(model.head_rank_sampled(
            emb,
            t.tail,
            t.rel,
            t.head,
            filter.heads(t.tail, t.rel),
            cand,
            scores,
        ));
    }
    counts
}

/// Evaluate sampled filtered link prediction: every query ranks its
/// true answer against one shared seeded candidate sample (see
/// [`RankingMode::Sampled`]). Sharded and tree-reduced exactly like
/// [`link_prediction`], so the sequential and pooled sampled paths
/// agree to the last bit; with `candidates ≥ N_e` the result equals
/// [`link_prediction`] bit for bit.
pub fn link_prediction_sampled<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    candidates: usize,
    seed: u64,
) -> LinkPredictionMetrics {
    let cand = CandidateSet::draw(emb, candidates, seed);
    let mut scores = vec![0.0f32; emb.num_entities()];
    let parts: Vec<RankCounts> = triples
        .chunks(EVAL_SHARD_TRIPLES)
        .map(|shard| eval_shard_sampled(model, emb, shard, filter, &cand, &mut scores))
        .collect();
    reduce_counts(parts).finalise()
}

/// Pooled [`link_prediction_sampled`]: the candidate sample is drawn
/// once, shards run on the shared pool, and the partials merge with
/// the same fixed tree as the sequential path — bit-identical metrics
/// for every pool size.
pub fn link_prediction_sampled_pool<M: ScoreModel + Sync + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    candidates: usize,
    seed: u64,
    pool: &ThreadPool,
) -> LinkPredictionMetrics {
    let cand = CandidateSet::draw(emb, candidates, seed);
    let shards: Vec<&[Triple]> = triples.chunks(EVAL_SHARD_TRIPLES).collect();
    let _span = eras_obs::span!(
        "train.eval.sampled",
        shards = shards.len(),
        triples = triples.len(),
        candidates = cand.len(),
    );
    let cand_ref = &cand;
    let parts = pool.map(shards.len(), |s| {
        let _shard_span = eras_obs::span!("train.eval.shard", shard = s);
        let mut scores = vec![0.0f32; emb.num_entities()];
        eval_shard_sampled(model, emb, shards[s], filter, cand_ref, &mut scores)
    });
    reduce_counts(parts).finalise()
}

/// Dispatch an evaluation over `mode`: the exact pooled evaluator for
/// [`RankingMode::Full`], the sampled one otherwise.
pub fn link_prediction_with<M: ScoreModel + Sync + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    mode: RankingMode,
    pool: &ThreadPool,
) -> LinkPredictionMetrics {
    match mode {
        RankingMode::Full => link_prediction_pool(model, emb, triples, filter, pool),
        RankingMode::Sampled { candidates, seed } => {
            link_prediction_sampled_pool(model, emb, triples, filter, candidates, seed, pool)
        }
    }
}

/// Evaluate filtered link prediction over a triple set.
///
/// Internally sharded and tree-reduced exactly like
/// [`link_prediction_pool`], so the sequential and pooled evaluators
/// agree to the last bit.
pub fn link_prediction<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
) -> LinkPredictionMetrics {
    let mut scores = vec![0.0f32; emb.num_entities()];
    let parts: Vec<RankCounts> = triples
        .chunks(EVAL_SHARD_TRIPLES)
        .map(|shard| eval_shard(model, emb, shard, filter, &mut scores))
        .collect();
    reduce_counts(parts).finalise()
}

/// Pooled [`link_prediction`]: shards the triple set on the shared
/// thread pool. Every query is independent and the per-shard partials
/// are merged with the same fixed tree as the sequential path, so the
/// metrics are bit-identical to [`link_prediction`] for every pool
/// size — including a pool of 1 and more workers than shards.
pub fn link_prediction_pool<M: ScoreModel + Sync + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    pool: &ThreadPool,
) -> LinkPredictionMetrics {
    let shards: Vec<&[Triple]> = triples.chunks(EVAL_SHARD_TRIPLES).collect();
    let _span = eras_obs::span!(
        "train.eval.pooled",
        shards = shards.len(),
        triples = triples.len(),
    );
    let parts = pool.map(shards.len(), |s| {
        // Shard spans run on whichever executor claims the index, so a
        // trace shows the actual work distribution across threads.
        let _shard_span = eras_obs::span!("train.eval.shard", shard = s);
        let mut scores = vec![0.0f32; emb.num_entities()];
        eval_shard(model, emb, shards[s], filter, &mut scores)
    });
    reduce_counts(parts).finalise()
}

/// Multi-threaded [`link_prediction`] with an explicit thread count —
/// a compatibility wrapper over [`link_prediction_pool`] that sizes a
/// dedicated pool. Prefer passing [`ThreadPool::global`] to
/// `link_prediction_pool` so evaluation shares the process-wide worker
/// set. Results are bit-identical to the sequential version for every
/// `threads` value.
pub fn link_prediction_parallel<M: ScoreModel + Sync + ?Sized>(
    model: &M,
    emb: &Embeddings,
    triples: &[Triple],
    filter: &FilterIndex,
    threads: usize,
) -> LinkPredictionMetrics {
    let threads = threads.max(1).min(triples.len().max(1));
    if threads == 1 {
        return link_prediction(model, emb, triples, filter);
    }
    let pool = ThreadPool::new(threads);
    link_prediction_pool(model, emb, triples, filter, &pool)
}

/// Per-pattern link prediction on the test split (Tables III and VIII).
/// Returns one entry per pattern that has at least one test triple.
pub fn link_prediction_by_pattern<M: ScoreModel + ?Sized>(
    model: &M,
    emb: &Embeddings,
    dataset: &Dataset,
    filter: &FilterIndex,
) -> Vec<(RelationPattern, LinkPredictionMetrics)> {
    RelationPattern::all()
        .iter()
        .filter_map(|&p| {
            let triples = dataset.test_triples_with_pattern(p);
            if triples.is_empty() {
                None
            } else {
                Some((p, link_prediction(model, emb, &triples, filter)))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockModel;
    use eras_data::vocab::Vocab;
    use eras_linalg::Rng;
    use eras_sf::zoo;

    /// A model that scores candidate `e` as a fixed table lookup, with
    /// separate tables per query direction.
    struct TableModel {
        tail_scores: Vec<f32>,
        head_scores: Vec<f32>,
    }

    impl TableModel {
        fn symmetric(scores: Vec<f32>) -> Self {
            TableModel {
                head_scores: scores.clone(),
                tail_scores: scores,
            }
        }
    }

    impl ScoreModel for TableModel {
        fn score_all_tails(&self, _e: &Embeddings, _h: u32, _r: u32, out: &mut [f32]) {
            out.copy_from_slice(&self.tail_scores);
        }
        fn score_all_heads(&self, _e: &Embeddings, _t: u32, _r: u32, out: &mut [f32]) {
            out.copy_from_slice(&self.head_scores);
        }
        fn score_triple(&self, _e: &Embeddings, t: Triple) -> f32 {
            self.tail_scores[t.tail as usize]
        }
    }

    fn tiny_dataset() -> (Dataset, FilterIndex, Embeddings) {
        let mut entities = Vocab::new();
        let mut relations = Vocab::new();
        for i in 0..5 {
            entities.intern(&format!("e{i}"));
        }
        relations.intern("r");
        let d = Dataset {
            name: "t".into(),
            entities,
            relations,
            train: vec![Triple::new(0, 0, 1), Triple::new(0, 0, 2)],
            valid: vec![],
            test: vec![Triple::new(0, 0, 3)],
            pattern_labels: vec![RelationPattern::GeneralAsymmetric],
        };
        let f = FilterIndex::build(&d);
        let mut rng = Rng::seed_from_u64(0);
        let e = Embeddings::init(5, 1, 4, &mut rng);
        (d, f, e)
    }

    #[test]
    fn filtered_rank_basic() {
        // scores: e0..e4; target e3 (score 5.0); e1 better, e2 filtered.
        let scores = [1.0, 9.0, 7.0, 5.0, 2.0];
        let rank = filtered_rank(&scores, 3, &[1, 2, 3]);
        // e1 is filtered too? No: filtered = known-true answers {1,2,3};
        // both e1 and e2 are removed; target kept. Only e0, e4 compete,
        // both worse → rank 1.
        assert_eq!(rank, 1.0);
        // Without filtering, e1 and e2 are better → rank 3.
        assert_eq!(filtered_rank(&scores, 3, &[3]), 3.0);
    }

    #[test]
    fn constant_scores_give_average_rank() {
        let scores = [0.5f32; 10];
        let rank = filtered_rank(&scores, 4, &[4]);
        assert_eq!(rank, 1.0 + 9.0 / 2.0);
    }

    #[test]
    fn perfect_model_gets_mrr_one() {
        let (d, f, e) = tiny_dataset();
        // Target of the only test triple is e3 for tails and e0 for heads.
        // A table scoring e3 and e0 highest ranks both first.
        let mut tail_scores = vec![0.0; 5];
        tail_scores[3] = 10.0;
        let mut head_scores = vec![0.0; 5];
        head_scores[0] = 10.0;
        let model = TableModel {
            tail_scores,
            head_scores,
        };
        let m = link_prediction(&model, &e, &d.test, &f);
        assert_eq!(m.count, 2);
        assert!((m.mrr - 1.0).abs() < 1e-12, "mrr {}", m.mrr);
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.hits10, 1.0);
    }

    #[test]
    fn filtering_removes_known_positives() {
        let (_d, f, e) = tiny_dataset();
        // e1, e2 are known tails of (0, r); give them the highest scores.
        // With filtering the target e3 still ranks 1st among {e0, e3, e4}.
        let model = TableModel::symmetric(vec![0.0, 10.0, 9.0, 5.0, 1.0]);
        let mut scores = vec![0.0; 5];
        model.score_all_tails(&e, 0, 0, &mut scores);
        let rank = filtered_rank(&scores, 3, f.tails(0, 0));
        assert_eq!(rank, 1.0);
    }

    #[test]
    fn untrained_block_model_is_near_chance() {
        let (d, f, e) = tiny_dataset();
        let model = BlockModel::universal(zoo::distmult(4), 1);
        let m = link_prediction(&model, &e, &d.test, &f);
        // 5 entities: chance MRR with mild filtering is well below 0.9.
        assert!(m.mrr < 0.9);
        assert!(m.mrr > 0.0);
    }

    #[test]
    fn pattern_slicing_covers_only_present_patterns() {
        let (d, f, e) = tiny_dataset();
        let model = BlockModel::universal(zoo::distmult(4), 1);
        let per = link_prediction_by_pattern(&model, &e, &d, &f);
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].0, RelationPattern::GeneralAsymmetric);
    }

    #[test]
    fn link_prediction_parallel_is_bit_identical_to_sequential() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(1);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let seq = link_prediction(&model, &emb, &dataset.test, &filter);
        for threads in [1usize, 2, 3, 4] {
            let par = link_prediction_parallel(&model, &emb, &dataset.test, &filter, threads);
            assert_eq!(par, seq, "threads {threads}");
        }
        // More workers than shards (and than triples).
        let two = &dataset.test[..2.min(dataset.test.len())];
        let seq_two = link_prediction(&model, &emb, two, &filter);
        let par_two = link_prediction_parallel(&model, &emb, two, &filter, 16);
        assert_eq!(par_two, seq_two);
        // Empty triple set: zero metrics on every path.
        let empty = link_prediction_parallel(&model, &emb, &[], &filter, 4);
        assert_eq!(empty, LinkPredictionMetrics::default());
        assert_eq!(empty, link_prediction(&model, &emb, &[], &filter));
    }

    #[test]
    fn pooled_evaluator_matches_sequential_for_every_pool_size() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let seq = link_prediction(&model, &emb, &dataset.test, &filter);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let pooled = link_prediction_pool(&model, &emb, &dataset.test, &filter, &pool);
            assert_eq!(pooled, seq, "pool size {threads}");
        }
    }

    /// Strips a model's rank overrides, forcing the default dense path
    /// (materialize scores, then [`filtered_rank`]).
    struct DenseOnly<'a, M: ScoreModel>(&'a M);

    impl<M: ScoreModel> ScoreModel for DenseOnly<'_, M> {
        fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
            self.0.score_all_tails(emb, h, r, out)
        }
        fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
            self.0.score_all_heads(emb, t, r, out)
        }
        fn score_triple(&self, emb: &Embeddings, triple: Triple) -> f32 {
            self.0.score_triple(emb, triple)
        }
        // No tail_rank/head_rank overrides: the defaults run.
    }

    /// The fused-scan rank path of BlockModel must agree with the
    /// dense score-everything default to the last bit — every score it
    /// streams is bit-identical to the matvec the default ranks over.
    #[test]
    fn fused_rank_path_matches_dense_default_exactly() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let fused = link_prediction(&model, &emb, &dataset.test, &filter);
        let dense = link_prediction(&DenseOnly(&model), &emb, &dataset.test, &filter);
        assert_eq!(fused, dense);
        // And per-query, on a few triples, through the trait methods.
        let mut scores = vec![0.0f32; dataset.num_entities()];
        for &t in dataset.test.iter().take(8) {
            let f = model.tail_rank(
                &emb,
                t.head,
                t.rel,
                t.tail,
                filter.tails(t.head, t.rel),
                &mut scores,
            );
            let d = DenseOnly(&model).tail_rank(
                &emb,
                t.head,
                t.rel,
                t.tail,
                filter.tails(t.head, t.rel),
                &mut scores,
            );
            assert_eq!(f.to_bits(), d.to_bits(), "{t:?}");
        }
    }

    /// With `candidates ≥ num_entities` the sampled evaluator must
    /// reproduce the full filtered ranking **bit for bit** — same
    /// candidate order, same scores, same tie handling — on both the
    /// fused BlockModel path and the dense default path.
    #[test]
    fn sampled_with_all_candidates_matches_full_exactly() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(5);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let full = link_prediction(&model, &emb, &dataset.test, &filter);
        for candidates in [dataset.num_entities(), dataset.num_entities() * 3] {
            let sampled =
                link_prediction_sampled(&model, &emb, &dataset.test, &filter, candidates, 42);
            assert_eq!(sampled.mrr.to_bits(), full.mrr.to_bits(), "{candidates}");
            assert_eq!(sampled, full, "{candidates}");
            let dense = link_prediction_sampled(
                &DenseOnly(&model),
                &emb,
                &dataset.test,
                &filter,
                candidates,
                42,
            );
            assert_eq!(dense, full, "dense default, {candidates}");
        }
    }

    /// The fused sampled path (scan over gathered candidate rows) and
    /// the dense default (score all, rank over the sample) must agree
    /// bit for bit for candidate sets smaller than the entity count.
    #[test]
    fn sampled_fused_path_matches_dense_default_exactly() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(6);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        for seed in [0u64, 7, 99] {
            let fused = link_prediction_sampled(&model, &emb, &dataset.test, &filter, 40, seed);
            let dense =
                link_prediction_sampled(&DenseOnly(&model), &emb, &dataset.test, &filter, 40, seed);
            assert_eq!(fused, dense, "seed {seed}");
        }
    }

    /// Sampled evaluation is a pure function of `(embeddings, seed)`:
    /// repeated runs and every pool size produce identical metrics, and
    /// the sampled MRR stays pinned for a fixed seed (regression).
    #[test]
    fn sampled_mrr_is_deterministic_and_pool_size_independent() {
        let dataset = eras_data::Preset::Tiny.build(60);
        let filter = FilterIndex::build(&dataset);
        let mut rng = Rng::seed_from_u64(7);
        let emb = Embeddings::init(
            dataset.num_entities(),
            dataset.num_relations(),
            16,
            &mut rng,
        );
        let model = BlockModel::universal(zoo::complex(), dataset.num_relations());
        let a = link_prediction_sampled(&model, &emb, &dataset.test, &filter, 50, 123);
        let b = link_prediction_sampled(&model, &emb, &dataset.test, &filter, 50, 123);
        assert_eq!(a.mrr.to_bits(), b.mrr.to_bits());
        // Pinned regression: the sampled protocol is part of the public
        // contract — candidate draws, filtering, and tie handling must
        // not drift across refactors. Bits of the seed-123 MRR above.
        assert_eq!(a.mrr.to_bits(), 0x3fb9_327a_3c24_4d8a, "mrr {}", a.mrr);
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let pooled =
                link_prediction_sampled_pool(&model, &emb, &dataset.test, &filter, 50, 123, &pool);
            assert_eq!(pooled, a, "pool size {threads}");
        }
        // A different candidate seed is allowed to (and here does)
        // move the metric — the seed is part of the protocol.
        let c = link_prediction_sampled(&model, &emb, &dataset.test, &filter, 50, 124);
        assert!(c.count == a.count);
    }

    /// Protocol properties of the sampled rank: the true entity always
    /// competes (even when it was not drawn) and is never filtered
    /// out, and known-true candidates never outrank it spuriously.
    #[test]
    fn sampled_rank_always_ranks_the_target_and_never_filters_it() {
        let n = 12usize;
        let mut rng = Rng::seed_from_u64(8);
        let emb = Embeddings::init(n, 1, 4, &mut rng);
        for seed in 0..20u64 {
            let cand = CandidateSet::draw(&emb, 5, seed);
            assert_eq!(cand.len(), 5);
            let target = (seed % n as u64) as u32;
            // Target scored best: rank 1 whether or not it was drawn,
            // even when the target id itself appears in `filtered`.
            let mut scores = vec![0.0f32; n];
            scores[target as usize] = 10.0;
            let rank = sampled_filtered_rank(&scores, cand.ids(), target, &[target]);
            assert_eq!(rank, 1.0, "seed {seed}");
            // Target scored worst: rank = 1 + #unfiltered competitors.
            let mut scores = vec![5.0f32; n];
            scores[target as usize] = -10.0;
            let filtered: Vec<u32> = (0..n as u32).filter(|&e| e % 3 == 0).collect();
            let competitors = cand
                .ids()
                .iter()
                .filter(|&&c| c != target && c % 3 != 0)
                .count();
            let rank = sampled_filtered_rank(&scores, cand.ids(), target, &filtered);
            assert_eq!(rank, 1.0 + competitors as f64, "seed {seed}");
        }
    }

    /// Candidate sets are seeded draws: same seed → same ids, distinct
    /// and sorted; `candidates ≥ n` → all entities.
    #[test]
    fn candidate_sets_are_seed_stable_sorted_and_distinct() {
        let mut rng = Rng::seed_from_u64(9);
        let emb = Embeddings::init(30, 1, 4, &mut rng);
        for seed in 0..10u64 {
            let a = CandidateSet::draw(&emb, 8, seed);
            let b = CandidateSet::draw(&emb, 8, seed);
            assert_eq!(a.ids(), b.ids());
            assert!(a.ids().windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            assert_eq!(a.rows().rows(), 8);
        }
        let all = CandidateSet::draw(&emb, 30, 3);
        assert_eq!(all.ids(), (0..30u32).collect::<Vec<_>>().as_slice());
        let more = CandidateSet::draw(&emb, 1000, 3);
        assert_eq!(more.ids(), all.ids());
    }

    #[test]
    fn metrics_monotonicity() {
        // hits1 <= hits3 <= hits10 and mrr in (0, 1].
        let (d, f, e) = tiny_dataset();
        let model = TableModel::symmetric(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        let m = link_prediction(&model, &e, &d.test, &f);
        assert!(m.hits1 <= m.hits3);
        assert!(m.hits3 <= m.hits10);
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
    }
}
