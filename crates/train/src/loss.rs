//! Loss-mode configuration shared by the trainers.

/// How the 1-vs-all multiclass log-loss is materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossMode {
    /// Softmax over every entity — the paper's training objective
    /// (Lacroix et al. multiclass log-loss). `O(N_e d)` per example.
    Full,
    /// Softmax over the target plus `negatives` uniform negatives.
    /// `O(k d)` per example; used inside search loops where thousands of
    /// candidate structures must be trained a little rather than one
    /// structure a lot.
    Sampled {
        /// Number of uniform negative candidates.
        negatives: usize,
    },
}

impl LossMode {
    /// A reasonable sampled default used by the search loops.
    pub fn sampled_default() -> Self {
        LossMode::Sampled { negatives: 32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_default_has_negatives() {
        match LossMode::sampled_default() {
            LossMode::Sampled { negatives } => assert!(negatives > 0),
            LossMode::Full => panic!("default should be sampled"),
        }
    }
}
