//! Loss-mode configuration shared by the trainers.

/// How the training objective is materialised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossMode {
    /// Softmax over every entity — the paper's training objective
    /// (Lacroix et al. multiclass log-loss). `O(N_e d)` per example.
    Full,
    /// Softmax over the target plus `negatives` uniform negatives.
    /// `O(k d)` per example; used inside search loops where thousands of
    /// candidate structures must be trained a little rather than one
    /// structure a lot.
    Sampled {
        /// Number of uniform negative candidates.
        negatives: usize,
    },
    /// Gamma-margin logsigmoid loss over a per-triple block of sampled
    /// negatives (the RotatE objective), optionally self-adversarially
    /// weighted. `O(k d)` per example *and* filtered against known-true
    /// triples, so it trains million-entity graphs where even the
    /// sampled softmax's unfiltered negatives are too noisy.
    NegSampling {
        /// Negatives per (triple, side) block.
        negatives: usize,
        /// Margin γ added to every score inside the logsigmoid.
        gamma: f32,
        /// Self-adversarial softmax temperature over negative scores;
        /// `0.0` selects uniform `1/k` weights.
        adversarial_temp: f32,
        /// Which side(s) of each triple get a negative block.
        corruption: Corruption,
    },
}

/// Corruption-side policy for [`LossMode::NegSampling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Corrupt both sides of every triple: one tail-batch and one
    /// head-batch negative block each (two loss terms per triple).
    Uniform,
    /// Bernoulli side selection (Wang et al.): corrupt exactly one
    /// side per triple, choosing the tail with the relation's fitted
    /// `tph/(tph+hpt)` probability — fewer false negatives on skewed
    /// relations, one loss term per triple.
    Bernoulli,
}

impl LossMode {
    /// A reasonable sampled default used by the search loops.
    pub fn sampled_default() -> Self {
        LossMode::Sampled { negatives: 32 }
    }

    /// The default negative-sampling objective (RotatE-style): 16
    /// filtered negatives per side, γ = 12, self-adversarial α = 1.
    pub fn neg_sampling_default() -> Self {
        LossMode::NegSampling {
            negatives: 16,
            gamma: 12.0,
            adversarial_temp: 1.0,
            corruption: Corruption::Uniform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_default_has_negatives() {
        match LossMode::sampled_default() {
            LossMode::Sampled { negatives } => assert!(negatives > 0),
            other => panic!("default should be sampled, got {other:?}"),
        }
    }

    #[test]
    fn neg_sampling_default_is_self_adversarial() {
        match LossMode::neg_sampling_default() {
            LossMode::NegSampling {
                negatives,
                gamma,
                adversarial_temp,
                corruption,
            } => {
                assert!(negatives > 0);
                assert!(gamma > 0.0);
                assert!(adversarial_temp > 0.0);
                assert_eq!(corruption, Corruption::Uniform);
            }
            other => panic!("expected NegSampling, got {other:?}"),
        }
    }
}
