//! HolE — holographic embeddings (Nickel et al., 2016).
//!
//! The base model of the HolEX row in the paper's Table VI. The score is
//! the relation's projection of the *circular correlation* of head and
//! tail:
//!
//! ```text
//! score(h, r, t) = ⟨ r , h ⋆ t ⟩,   (h ⋆ t)_k = Σ_i h_i · t_{(i+k) mod d}
//! ```
//!
//! Rearranging gives the 1-vs-all query forms used here:
//! `score = ⟨ t , r ∗ h ⟩` (circular convolution) for tail queries and
//! `score = ⟨ h , r ⋆ t ⟩` for head queries, so scoring all candidates is
//! one `O(d²)` query-vector build plus a mat-vec — the same pattern as the
//! bilinear models. (Nickel et al. use FFTs for the `O(d log d)` version;
//! at `d ≤ 64` the direct form is simpler and comparably fast.)
//!
//! Interesting aside the tests pin down: HolE is equivalent to ComplEx up
//! to a constant factor (Hayashi & Shimbo, 2017), which is why its scores
//! can model all four relation patterns.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::grads::SideGrads;
use eras_data::Triple;
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::softmax::log_loss_and_residual;
use eras_linalg::vecops;
use eras_linalg::Rng;

/// Circular correlation `(a ⋆ b)_k = Σ_i a_i b_{(i+k) mod d}`.
fn correlate(a: &[f32], b: &[f32], out: &mut [f32]) {
    let d = a.len();
    for k in 0..d {
        let mut acc = 0.0f32;
        for i in 0..d {
            acc += a[i] * b[(i + k) % d];
        }
        out[k] = acc;
    }
}

/// Circular convolution `(a ∗ b)_k = Σ_i a_i b_{(k−i) mod d}`.
fn convolve(a: &[f32], b: &[f32], out: &mut [f32]) {
    let d = a.len();
    for k in 0..d {
        let mut acc = 0.0f32;
        for i in 0..d {
            acc += a[i] * b[(k + d - i) % d];
        }
        out[k] = acc;
    }
}

/// HolE trainer (sampled-softmax 1-vs-all, analytic gradients).
#[derive(Debug, Clone)]
pub struct HolE {
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    /// Negatives per positive.
    pub negatives: usize,
}

impl HolE {
    /// Create for the given embedding shapes.
    pub fn new(emb: &Embeddings, lr: f32, negatives: usize) -> Self {
        HolE {
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), lr, 1e-5),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), lr, 1e-5),
            negatives,
        }
    }

    /// Pure gradients of one 1-vs-all step over an explicit candidate
    /// list (`candidates[0]` is the target; `tail_side` picks the query
    /// direction). Reads `emb`, writes only `g`; the sampled-softmax
    /// trainer and the gradient contract checker share this kernel.
    pub fn side_grads(
        emb: &Embeddings,
        anchor: u32,
        rel: u32,
        candidates: &[u32],
        tail_side: bool,
        g: &mut SideGrads,
    ) {
        let d = emb.dim();
        let a_row = emb.entity.row(anchor as usize);
        let r_row = emb.relation.row(rel as usize);
        if tail_side {
            // score(t) = ⟨t, r ∗ h⟩.
            convolve(r_row, a_row, &mut g.q);
        } else {
            // score(h) = ⟨h, r ⋆ t⟩.
            correlate(r_row, a_row, &mut g.q);
        }

        g.resid.clear();
        g.resid.extend(
            candidates
                .iter()
                .map(|&c| vecops::dot(&g.q, emb.entity.row(c as usize))),
        );
        g.loss = log_loss_and_residual(&mut g.resid, 0);

        let mut g_q = vec![0.0f32; d];
        for (slot, &c) in candidates.iter().enumerate() {
            vecops::axpy(g.resid[slot], emb.entity.row(c as usize), &mut g_q);
        }

        // Back through the correlation/convolution. Both are bilinear:
        // tail side, q = r ∗ a:  ∂⟨g,q⟩/∂r = g ⋆ a ;  ∂/∂a = r ⋆ g.
        // head side, q = r ⋆ a:  direct index forms, finite-difference
        // checked by the gradient contract.
        if tail_side {
            // q_k = Σ_i r_i a_{(k−i)}: ∂/∂r_i = Σ_k g_k a_{(k−i)}.
            for i in 0..d {
                let mut acc_r = 0.0f32;
                let mut acc_a = 0.0f32;
                for k in 0..d {
                    acc_r += g_q[k] * a_row[(k + d - i) % d];
                    acc_a += g_q[k] * r_row[(k + d - i) % d];
                }
                g.rel[i] = acc_r;
                g.anchor[i] = acc_a;
            }
        } else {
            // q_k = Σ_i r_i a_{(i+k)}: ∂/∂r_i = Σ_k g_k a_{(i+k)};
            //                          ∂/∂a_j = Σ_k g_k r_{(j−k)}.
            for i in 0..d {
                let mut acc_r = 0.0f32;
                for k in 0..d {
                    acc_r += g_q[k] * a_row[(i + k) % d];
                }
                g.rel[i] = acc_r;
            }
            for j in 0..d {
                let mut acc_a = 0.0f32;
                for k in 0..d {
                    acc_a += g_q[k] * r_row[(j + d - k) % d];
                }
                g.anchor[j] = acc_a;
            }
        }
    }

    /// One 1-vs-all step. `tail_side` picks the query direction.
    #[allow(clippy::too_many_arguments)]
    fn train_side(
        &mut self,
        emb: &mut Embeddings,
        anchor: u32,
        rel: u32,
        target: u32,
        tail_side: bool,
        rng: &mut Rng,
        g: &mut SideGrads,
    ) -> f32 {
        let d = emb.dim();
        let ne = emb.num_entities();
        let mut candidates = Vec::with_capacity(self.negatives + 1);
        candidates.push(target);
        for _ in 0..self.negatives {
            let mut c = rng.next_below(ne) as u32;
            if c == target {
                c = (c + 1) % ne as u32;
            }
            candidates.push(c);
        }
        Self::side_grads(emb, anchor, rel, &candidates, tail_side, g);

        let mut row_grad = vec![0.0f32; d];
        for (slot, &c) in candidates.iter().enumerate() {
            let resid = g.resid[slot];
            for (gr, &qv) in row_grad.iter_mut().zip(&g.q) {
                *gr = resid * qv;
            }
            self.opt_entity
                .step_at(emb.entity.as_mut_slice(), c as usize * d, &row_grad);
        }
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), anchor as usize * d, &g.anchor);
        self.opt_relation
            .step_at(emb.relation.as_mut_slice(), rel as usize * d, &g.rel);
        g.loss
    }

    /// One pass over the training set (both directions). Returns mean loss.
    pub fn train_epoch(&mut self, emb: &mut Embeddings, train: &[Triple], rng: &mut Rng) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let mut g = SideGrads::new(emb.dim());
        let mut total = 0.0f32;
        for &t in train {
            total += self.train_side(emb, t.head, t.rel, t.tail, true, rng, &mut g);
            total += self.train_side(emb, t.tail, t.rel, t.head, false, rng, &mut g);
        }
        total / (2.0 * train.len() as f32)
    }
}

impl ScoreModel for HolE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0f32; emb.dim()];
        convolve(
            emb.relation.row(r as usize),
            emb.entity.row(h as usize),
            &mut q,
        );
        emb.entity.matvec(&q, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0f32; emb.dim()];
        correlate(
            emb.relation.row(r as usize),
            emb.entity.row(t as usize),
            &mut q,
        );
        emb.entity.matvec(&q, out);
    }

    fn score_triple(&self, emb: &Embeddings, tr: Triple) -> f32 {
        let mut q = vec![0.0f32; emb.dim()];
        convolve(
            emb.relation.row(tr.rel as usize),
            emb.entity.row(tr.head as usize),
            &mut q,
        );
        vecops::dot(&q, emb.entity.row(tr.tail as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_and_convolution_identities() {
        // Correlation with the identity impulse reproduces the input.
        let e0 = [1.0f32, 0.0, 0.0, 0.0];
        let x = [0.5f32, -1.0, 2.0, 0.25];
        let mut out = [0.0f32; 4];
        correlate(&e0, &x, &mut out);
        assert_eq!(out, x);
        convolve(&e0, &x, &mut out);
        assert_eq!(out, x);
        // ⟨r, h ⋆ t⟩ = ⟨t, r ∗ h⟩ (the tail-query identity).
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..10 {
            let h: Vec<f32> = (0..6).map(|_| rng.normal()).collect();
            let r: Vec<f32> = (0..6).map(|_| rng.normal()).collect();
            let t: Vec<f32> = (0..6).map(|_| rng.normal()).collect();
            let mut ht = vec![0.0f32; 6];
            correlate(&h, &t, &mut ht);
            let lhs = vecops::dot(&r, &ht);
            let mut rh = vec![0.0f32; 6];
            convolve(&r, &h, &mut rh);
            let rhs = vecops::dot(&t, &rh);
            assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn score_consistency_both_directions() {
        let mut rng = Rng::seed_from_u64(2);
        let emb = Embeddings::init(9, 2, 8, &mut rng);
        let model = HolE::new(&emb, 0.05, 4);
        let mut out = vec![0.0f32; 9];
        model.score_all_tails(&emb, 3, 1, &mut out);
        for t in 0..9u32 {
            let s = model.score_triple(&emb, Triple::new(3, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        model.score_all_heads(&emb, 5, 0, &mut out);
        for h in 0..9u32 {
            let s = model.score_triple(&emb, Triple::new(h, 0, 5));
            assert!((out[h as usize] - s).abs() < 1e-3, "head {h}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(3);
        let emb = Embeddings::init(6, 1, 4, &mut rng);
        let (h, _r, t) = (1u32, 0u32, 2u32);
        let loss_of = |e: &Embeddings| -> f32 {
            let mut q = vec![0.0f32; 4];
            convolve(e.relation.row(0), e.entity.row(h as usize), &mut q);
            let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, e.entity.row(c))).collect();
            log_loss_and_residual(&mut scores, t as usize)
        };
        // Analytic relation gradient from the training math (full
        // candidates).
        let mut q = vec![0.0f32; 4];
        convolve(emb.relation.row(0), emb.entity.row(1), &mut q);
        let mut scores: Vec<f32> = (0..6).map(|c| vecops::dot(&q, emb.entity.row(c))).collect();
        let _ = log_loss_and_residual(&mut scores, t as usize);
        let mut g_q = vec![0.0f32; 4];
        for (c, &resid) in scores.iter().enumerate() {
            vecops::axpy(resid, emb.entity.row(c), &mut g_q);
        }
        let a_row = emb.entity.row(1);
        let mut grad_r = [0.0f32; 4];
        for i in 0..4 {
            for k in 0..4 {
                grad_r[i] += g_q[k] * a_row[(k + 4 - i) % 4];
            }
        }
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut plus = emb.clone();
            plus.relation.as_mut_slice()[i] += eps;
            let mut minus = emb.clone();
            minus.relation.as_mut_slice()[i] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad_r[i]).abs() < 2e-2,
                "grad_r[{i}]: fd {fd} vs analytic {}",
                grad_r[i]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from_u64(4);
        let mut emb = Embeddings::init(12, 2, 8, &mut rng);
        let train: Vec<Triple> = (0..10u32)
            .map(|i| Triple::new(i, i % 2, (i + 5) % 12))
            .collect();
        let mut model = HolE::new(&emb, 0.1, 6);
        let first = model.train_epoch(&mut emb, &train, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&mut emb, &train, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }
}
