//! Non-bilinear comparators from Table VI, implemented from scratch.
//!
//! - [`TransE`], [`TransH`]: translational models with margin ranking loss
//!   and filtered negative sampling;
//! - [`RotatE`]: rotation in the complex plane, margin loss;
//! - [`TuckEr`]: full three-way core tensor trained with the multiclass
//!   log-loss.
//!
//! All gradients are closed-form; the test suite checks each against
//! finite differences. The remaining Table VI rows (ConvE, HypER, NTN,
//! HolEX, QuatE, AnyBURL) are reported from the literature only — see
//! DESIGN.md §2 for the substitution rationale.

use crate::embeddings::Embeddings;
use crate::eval::ScoreModel;
use crate::grads::{TransHGrads, TripleGrads, TuckErGrads};
use crate::negative::corrupt;
use eras_data::{FilterIndex, Triple};
use eras_linalg::optim::{Adagrad, Optimizer};
use eras_linalg::vecops;
use eras_linalg::Rng;

/// Shared hyperparameters for the margin-based translational trainers.
#[derive(Debug, Clone)]
pub struct MarginConfig {
    /// Learning rate.
    pub lr: f32,
    /// Ranking margin γ.
    pub margin: f32,
    /// Negatives sampled per positive.
    pub negatives: usize,
}

impl Default for MarginConfig {
    fn default() -> Self {
        MarginConfig {
            lr: 0.05,
            margin: 2.0,
            negatives: 2,
        }
    }
}

// ---------------------------------------------------------------------------
// TransE
// ---------------------------------------------------------------------------

/// TransE (Bordes et al., 2013): `score = −‖h + r − t‖²`.
#[derive(Debug, Clone)]
pub struct TransE {
    cfg: MarginConfig,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
}

impl TransE {
    /// Create a trainer for the given embedding shapes.
    pub fn new(emb: &Embeddings, cfg: MarginConfig) -> Self {
        TransE {
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), cfg.lr, 0.0),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), cfg.lr, 0.0),
            cfg,
        }
    }

    fn score_raw(emb: &Embeddings, t: Triple) -> f32 {
        let h = emb.entity.row(t.head as usize);
        let r = emb.relation.row(t.rel as usize);
        let tl = emb.entity.row(t.tail as usize);
        let mut acc = 0.0;
        for k in 0..h.len() {
            let d = h[k] + r[k] - tl[k];
            acc += d * d;
        }
        -acc
    }

    /// Gradient of the squared translational distance `‖h + r − t‖²`
    /// (= −score) with respect to the triple's three rows. Pure: reads
    /// `emb`, writes only `g`.
    pub fn distance_grads(emb: &Embeddings, t: Triple, g: &mut TripleGrads) {
        let dim = emb.dim();
        let h = emb.entity.row(t.head as usize);
        let r = emb.relation.row(t.rel as usize);
        let tl = emb.entity.row(t.tail as usize);
        for k in 0..dim {
            let d = h[k] + r[k] - tl[k];
            g.head[k] = 2.0 * d;
            g.rel[k] = 2.0 * d;
            g.tail[k] = -2.0 * d;
        }
    }

    /// One pass over `train` with margin loss `max(0, γ − s⁺ + s⁻)`.
    /// Returns the mean loss.
    pub fn train_epoch(
        &mut self,
        emb: &mut Embeddings,
        train: &[Triple],
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> f32 {
        let dim = emb.dim();
        let num_entities = emb.num_entities();
        let mut total = 0.0f32;
        let mut count = 0usize;
        let mut g = TripleGrads::new(dim);
        let mut grad = vec![0.0f32; dim];
        for &pos in train {
            for _ in 0..self.cfg.negatives {
                let neg = corrupt(pos, num_entities, filter, rng);
                let s_pos = Self::score_raw(emb, pos);
                let s_neg = Self::score_raw(emb, neg);
                let loss = (self.cfg.margin - s_pos + s_neg).max(0.0);
                total += loss;
                count += 1;
                if loss <= 0.0 {
                    continue;
                }
                // ∂loss/∂(h,r,t) for positive: −∂s⁺ = +∂dist⁺; for the
                // negative: +∂s⁻ = −∂dist⁻.
                for (triple, sign) in [(pos, 1.0f32), (neg, -1.0f32)] {
                    let (h, r, t) = (triple.head, triple.rel, triple.tail);
                    Self::distance_grads(emb, triple, &mut g);
                    for k in 0..dim {
                        grad[k] = sign * g.head[k];
                    }
                    self.opt_entity
                        .step_at(emb.entity.as_mut_slice(), h as usize * dim, &grad);
                    for k in 0..dim {
                        grad[k] = sign * g.rel[k];
                    }
                    self.opt_relation
                        .step_at(emb.relation.as_mut_slice(), r as usize * dim, &grad);
                    for k in 0..dim {
                        grad[k] = sign * g.tail[k];
                    }
                    self.opt_entity
                        .step_at(emb.entity.as_mut_slice(), t as usize * dim, &grad);
                }
                // Entity norm constraint from the TransE paper.
                for e in [pos.head, pos.tail, neg.head, neg.tail] {
                    vecops::project_unit_ball(emb.entity.row_mut(e as usize));
                }
            }
        }
        if count > 0 {
            total / count as f32
        } else {
            0.0
        }
    }
}

impl ScoreModel for TransE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let hr: Vec<f32> = emb
            .entity
            .row(h as usize)
            .iter()
            .zip(emb.relation.row(r as usize))
            .map(|(a, b)| a + b)
            .collect();
        for (e, o) in out.iter_mut().enumerate() {
            *o = -vecops::dist_sq(&hr, emb.entity.row(e));
        }
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let tr: Vec<f32> = emb
            .entity
            .row(t as usize)
            .iter()
            .zip(emb.relation.row(r as usize))
            .map(|(a, b)| a - b)
            .collect();
        for (e, o) in out.iter_mut().enumerate() {
            *o = -vecops::dist_sq(emb.entity.row(e), &tr);
        }
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        Self::score_raw(emb, t)
    }
}

// ---------------------------------------------------------------------------
// TransH
// ---------------------------------------------------------------------------

/// TransH (Wang et al., 2014): translation on a relation-specific
/// hyperplane, `score = −‖h⊥ + r − t⊥‖²` with `x⊥ = x − (wᵀx)w`.
///
/// The hyperplane normals `w_r` are extra per-relation parameters owned by
/// this struct (kept approximately unit-norm by projection).
#[derive(Debug, Clone)]
pub struct TransH {
    cfg: MarginConfig,
    /// Hyperplane normals, `N_r × d`.
    pub normals: eras_linalg::Matrix,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    opt_normals: Adagrad,
}

impl TransH {
    /// Create a trainer; normals start as random unit-ish vectors.
    pub fn new(emb: &Embeddings, cfg: MarginConfig, rng: &mut Rng) -> Self {
        let mut normals =
            eras_linalg::Matrix::uniform_init(emb.num_relations(), emb.dim(), 0.5, rng);
        for r in 0..normals.rows() {
            let row = normals.row_mut(r);
            let n = vecops::norm(row);
            if n > 0.0 {
                vecops::scale(1.0 / n, row);
            }
        }
        TransH {
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), cfg.lr, 0.0),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), cfg.lr, 0.0),
            opt_normals: Adagrad::new(normals.as_slice().len(), cfg.lr * 0.5, 0.0),
            normals,
            cfg,
        }
    }

    fn project(x: &[f32], w: &[f32], out: &mut [f32]) {
        let wx = vecops::dot(w, x);
        for k in 0..x.len() {
            out[k] = x[k] - wx * w[k];
        }
    }

    fn score_raw(&self, emb: &Embeddings, t: Triple) -> f32 {
        let dim = emb.dim();
        let w = self.normals.row(t.rel as usize);
        let mut hp = vec![0.0; dim];
        let mut tp = vec![0.0; dim];
        Self::project(emb.entity.row(t.head as usize), w, &mut hp);
        Self::project(emb.entity.row(t.tail as usize), w, &mut tp);
        let r = emb.relation.row(t.rel as usize);
        let mut acc = 0.0;
        for k in 0..dim {
            let d = hp[k] + r[k] - tp[k];
            acc += d * d;
        }
        -acc
    }

    /// Gradient of the hyperplane distance `‖h⊥ + r − t⊥‖²` (= −score)
    /// with respect to the triple's rows and the normal `w_r`. Pure:
    /// reads `emb` and `self.normals`, writes only `g`.
    pub fn distance_grads(&self, emb: &Embeddings, t: Triple, g: &mut TransHGrads) {
        let dim = emb.dim();
        let (hid, rid, tid) = (t.head as usize, t.rel as usize, t.tail as usize);
        let w = self.normals.row(rid);
        let h_row = emb.entity.row(hid);
        let t_row = emb.entity.row(tid);
        let mut hp = vec![0.0f32; dim];
        let mut tp = vec![0.0f32; dim];
        let mut d_vec = vec![0.0f32; dim];
        Self::project(h_row, w, &mut hp);
        Self::project(t_row, w, &mut tp);
        for k in 0..dim {
            d_vec[k] = hp[k] + emb.relation.get(rid, k) - tp[k];
        }
        // ∂dist/∂h = 2 P d where P = I − wwᵀ (P is symmetric); ∂/∂t = −∂/∂h.
        let wd = vecops::dot(w, &d_vec);
        for k in 0..dim {
            g.head[k] = 2.0 * (d_vec[k] - wd * w[k]);
            g.tail[k] = -g.head[k];
            // ∂dist/∂r = 2 d.
            g.rel[k] = 2.0 * d_vec[k];
        }
        // With x = h − t: d = x + r − (wᵀx)w, so
        // ∂dist/∂w = −2[(wᵀd)·x + (wᵀx)·d].
        let wh = vecops::dot(w, h_row);
        let wt = vecops::dot(w, t_row);
        for k in 0..dim {
            g.normal[k] = -2.0 * (wd * (h_row[k] - t_row[k]) + (wh - wt) * d_vec[k]);
        }
    }

    /// One margin-loss epoch. Returns the mean loss.
    pub fn train_epoch(
        &mut self,
        emb: &mut Embeddings,
        train: &[Triple],
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> f32 {
        let dim = emb.dim();
        let num_entities = emb.num_entities();
        let mut total = 0.0f32;
        let mut count = 0usize;
        let mut g = TransHGrads::new(dim);
        let mut grad = vec![0.0f32; dim];
        for &pos in train {
            for _ in 0..self.cfg.negatives {
                let neg = corrupt(pos, num_entities, filter, rng);
                let s_pos = self.score_raw(emb, pos);
                let s_neg = self.score_raw(emb, neg);
                let loss = (self.cfg.margin - s_pos + s_neg).max(0.0);
                total += loss;
                count += 1;
                if loss <= 0.0 {
                    continue;
                }
                for (triple, sign) in [(pos, 1.0f32), (neg, -1.0f32)] {
                    let (hid, rid, tid) = (
                        triple.head as usize,
                        triple.rel as usize,
                        triple.tail as usize,
                    );
                    self.distance_grads(emb, triple, &mut g);
                    for k in 0..dim {
                        grad[k] = sign * g.head[k];
                    }
                    self.opt_entity
                        .step_at(emb.entity.as_mut_slice(), hid * dim, &grad);
                    for k in 0..dim {
                        grad[k] = sign * g.tail[k];
                    }
                    self.opt_entity
                        .step_at(emb.entity.as_mut_slice(), tid * dim, &grad);
                    for k in 0..dim {
                        grad[k] = sign * g.rel[k];
                    }
                    self.opt_relation
                        .step_at(emb.relation.as_mut_slice(), rid * dim, &grad);
                    for k in 0..dim {
                        grad[k] = sign * g.normal[k];
                    }
                    self.opt_normals
                        .step_at(self.normals.as_mut_slice(), rid * dim, &grad);
                    // Re-normalise the hyperplane normal.
                    let row = self.normals.row_mut(rid);
                    let n = vecops::norm(row);
                    if n > 0.0 {
                        vecops::scale(1.0 / n, row);
                    }
                }
                for e in [pos.head, pos.tail, neg.head, neg.tail] {
                    vecops::project_unit_ball(emb.entity.row_mut(e as usize));
                }
            }
        }
        if count > 0 {
            total / count as f32
        } else {
            0.0
        }
    }
}

impl ScoreModel for TransH {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let dim = emb.dim();
        let w = self.normals.row(r as usize);
        let mut hp = vec![0.0; dim];
        Self::project(emb.entity.row(h as usize), w, &mut hp);
        let rel = emb.relation.row(r as usize);
        let base: Vec<f32> = hp.iter().zip(rel).map(|(a, b)| a + b).collect();
        let mut tp = vec![0.0; dim];
        for (e, o) in out.iter_mut().enumerate() {
            Self::project(emb.entity.row(e), w, &mut tp);
            *o = -vecops::dist_sq(&base, &tp);
        }
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let dim = emb.dim();
        let w = self.normals.row(r as usize);
        let mut tp = vec![0.0; dim];
        Self::project(emb.entity.row(t as usize), w, &mut tp);
        let rel = emb.relation.row(r as usize);
        let target: Vec<f32> = tp.iter().zip(rel).map(|(a, b)| a - b).collect();
        let mut hp = vec![0.0; dim];
        for (e, o) in out.iter_mut().enumerate() {
            Self::project(emb.entity.row(e), w, &mut hp);
            *o = -vecops::dist_sq(&hp, &target);
        }
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        self.score_raw(emb, t)
    }
}

// ---------------------------------------------------------------------------
// RotatE
// ---------------------------------------------------------------------------

/// RotatE (Sun et al., 2019): entities are complex vectors (`d/2` pairs,
/// interleaved re/im in the embedding row), relations are rotations
/// parameterised by `d/2` phases stored in the first half of the relation
/// row. `score = −Σ_k |h_k · e^{iθ_k} − t_k|`.
#[derive(Debug, Clone)]
pub struct RotatE {
    cfg: MarginConfig,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
}

impl RotatE {
    /// Create a trainer. Requires an even embedding dimension.
    pub fn new(emb: &Embeddings, cfg: MarginConfig) -> Self {
        assert_eq!(emb.dim() % 2, 0, "RotatE needs an even dimension");
        RotatE {
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), cfg.lr, 0.0),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), cfg.lr, 0.0),
            cfg,
        }
    }

    fn score_raw(emb: &Embeddings, t: Triple) -> f32 {
        let dim = emb.dim();
        let pairs = dim / 2;
        let h = emb.entity.row(t.head as usize);
        let r = emb.relation.row(t.rel as usize);
        let tl = emb.entity.row(t.tail as usize);
        let mut acc = 0.0f32;
        for k in 0..pairs {
            let (hr, hi) = (h[2 * k], h[2 * k + 1]);
            let (c, s) = (r[k].cos(), r[k].sin());
            let dr = hr * c - hi * s - tl[2 * k];
            let di = hr * s + hi * c - tl[2 * k + 1];
            acc += (dr * dr + di * di).sqrt();
        }
        -acc
    }

    /// Gradient of the rotation distance `Σ_k |h_k e^{iθ_k} − t_k|`
    /// (= −score) with respect to the triple's three rows. The relation
    /// gradient lives in the first `d/2` slots (the phases); the rest
    /// stays zero. Pure: reads `emb`, writes only `g`.
    pub fn distance_grads(emb: &Embeddings, t: Triple, g: &mut TripleGrads) {
        let dim = emb.dim();
        let pairs = dim / 2;
        let h = emb.entity.row(t.head as usize);
        let r = emb.relation.row(t.rel as usize);
        let tl = emb.entity.row(t.tail as usize);
        vecops::zero(&mut g.head);
        vecops::zero(&mut g.tail);
        vecops::zero(&mut g.rel);
        for k in 0..pairs {
            let (hr, hi) = (h[2 * k], h[2 * k + 1]);
            let (c, s) = (r[k].cos(), r[k].sin());
            let dr = hr * c - hi * s - tl[2 * k];
            let di = hr * s + hi * c - tl[2 * k + 1];
            let norm = (dr * dr + di * di).sqrt().max(1e-8);
            // Unit residual u = d/‖d‖.
            let (ur, ui) = (dr / norm, di / norm);
            // ∂d/∂hr = (c, s); ∂d/∂hi = (−s, c).
            g.head[2 * k] = ur * c + ui * s;
            g.head[2 * k + 1] = -ur * s + ui * c;
            // ∂d/∂t = −I.
            g.tail[2 * k] = -ur;
            g.tail[2 * k + 1] = -ui;
            // ∂d/∂θ = h · i e^{iθ} = (−hr s − hi c, hr c − hi s).
            g.rel[k] = ur * (-hr * s - hi * c) + ui * (hr * c - hi * s);
        }
    }

    /// Scale `g` by `weight` and hand the three rows to the optimizers.
    fn apply_weighted(
        &mut self,
        emb: &mut Embeddings,
        triple: Triple,
        weight: f32,
        g: &TripleGrads,
        grad: &mut [f32],
    ) {
        let dim = emb.dim();
        let (hid, rid, tid) = (
            triple.head as usize,
            triple.rel as usize,
            triple.tail as usize,
        );
        for k in 0..dim {
            grad[k] = weight * g.head[k];
        }
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), hid * dim, grad);
        for k in 0..dim {
            grad[k] = weight * g.tail[k];
        }
        self.opt_entity
            .step_at(emb.entity.as_mut_slice(), tid * dim, grad);
        for k in 0..dim {
            grad[k] = weight * g.rel[k];
        }
        self.opt_relation
            .step_at(emb.relation.as_mut_slice(), rid * dim, grad);
    }

    /// One margin-loss epoch. Returns the mean loss.
    pub fn train_epoch(
        &mut self,
        emb: &mut Embeddings,
        train: &[Triple],
        filter: &FilterIndex,
        rng: &mut Rng,
    ) -> f32 {
        let dim = emb.dim();
        let num_entities = emb.num_entities();
        let mut total = 0.0f32;
        let mut count = 0usize;
        let mut g = TripleGrads::new(dim);
        let mut grad = vec![0.0f32; dim];
        for &pos in train {
            for _ in 0..self.cfg.negatives {
                let neg = corrupt(pos, num_entities, filter, rng);
                let s_pos = Self::score_raw(emb, pos);
                let s_neg = Self::score_raw(emb, neg);
                let loss = (self.cfg.margin - s_pos + s_neg).max(0.0);
                total += loss;
                count += 1;
                if loss <= 0.0 {
                    continue;
                }
                for (triple, sign) in [(pos, 1.0f32), (neg, -1.0f32)] {
                    Self::distance_grads(emb, triple, &mut g);
                    self.apply_weighted(emb, triple, sign, &g, &mut grad);
                }
            }
        }
        if count > 0 {
            total / count as f32
        } else {
            0.0
        }
    }
}

impl RotatE {
    /// One epoch with RotatE's *self-adversarial* negative sampling
    /// (Sun et al. 2019): per positive, `k` negatives are drawn and their
    /// loss terms weighted by `softmax(alpha · score)` — hard negatives
    /// get more gradient. Loss per example:
    /// `−log σ(γ + s⁺) − Σ_i p_i log σ(−s⁻_i − γ)` with `s = −distance`
    /// and the weights `p_i` treated as constants.
    pub fn train_epoch_self_adversarial(
        &mut self,
        emb: &mut Embeddings,
        train: &[Triple],
        filter: &FilterIndex,
        k: usize,
        alpha: f32,
        rng: &mut Rng,
    ) -> f32 {
        use eras_linalg::softmax::{sigmoid, softmax_inplace, softplus};
        let dim = emb.dim();
        let num_entities = emb.num_entities();
        let gamma = self.cfg.margin;
        let mut total = 0.0f32;
        let mut count = 0usize;
        let mut g = TripleGrads::new(dim);
        let mut grad = vec![0.0f32; dim];

        for &pos in train {
            let d_pos = -Self::score_raw(emb, pos);
            // Positive term: −log σ(γ − d⁺); ∂/∂d⁺ = σ(d⁺ − γ).
            total += softplus(d_pos - gamma);
            Self::distance_grads(emb, pos, &mut g);
            self.apply_weighted(emb, pos, sigmoid(d_pos - gamma), &g, &mut grad);
            // Negatives with self-adversarial weights.
            let negs: Vec<Triple> = (0..k.max(1))
                .map(|_| corrupt(pos, num_entities, filter, rng))
                .collect();
            let dists: Vec<f32> = negs.iter().map(|&n| -Self::score_raw(emb, n)).collect();
            let mut weights: Vec<f32> = dists.iter().map(|&d| -alpha * d).collect();
            softmax_inplace(&mut weights);
            for ((&neg, &d_neg), &p) in negs.iter().zip(&dists).zip(&weights) {
                // Term: −p · log σ(d⁻ − γ); ∂/∂d⁻ = −p σ(γ − d⁻).
                total += p * softplus(gamma - d_neg);
                Self::distance_grads(emb, neg, &mut g);
                self.apply_weighted(emb, neg, -p * sigmoid(gamma - d_neg), &g, &mut grad);
            }
            count += 1;
        }
        if count > 0 {
            total / count as f32
        } else {
            0.0
        }
    }
}

impl ScoreModel for RotatE {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let dim = emb.dim();
        let pairs = dim / 2;
        let hrow = emb.entity.row(h as usize);
        let rrow = emb.relation.row(r as usize);
        // Rotated head, computed once.
        let mut rot = vec![0.0f32; dim];
        for k in 0..pairs {
            let (hr, hi) = (hrow[2 * k], hrow[2 * k + 1]);
            let (c, s) = (rrow[k].cos(), rrow[k].sin());
            rot[2 * k] = hr * c - hi * s;
            rot[2 * k + 1] = hr * s + hi * c;
        }
        for (e, o) in out.iter_mut().enumerate() {
            let t = emb.entity.row(e);
            let mut acc = 0.0f32;
            for k in 0..pairs {
                let dr = rot[2 * k] - t[2 * k];
                let di = rot[2 * k + 1] - t[2 * k + 1];
                acc += (dr * dr + di * di).sqrt();
            }
            *o = -acc;
        }
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let dim = emb.dim();
        let pairs = dim / 2;
        let trow = emb.entity.row(t as usize);
        let rrow = emb.relation.row(r as usize);
        // Inverse-rotated tail: h must equal t · e^{−iθ}.
        let mut rot = vec![0.0f32; dim];
        for k in 0..pairs {
            let (tr, ti) = (trow[2 * k], trow[2 * k + 1]);
            let (c, s) = (rrow[k].cos(), rrow[k].sin());
            rot[2 * k] = tr * c + ti * s;
            rot[2 * k + 1] = -tr * s + ti * c;
        }
        for (e, o) in out.iter_mut().enumerate() {
            let h = emb.entity.row(e);
            let mut acc = 0.0f32;
            for k in 0..pairs {
                let dr = h[2 * k] - rot[2 * k];
                let di = h[2 * k + 1] - rot[2 * k + 1];
                acc += (dr * dr + di * di).sqrt();
            }
            *o = -acc;
        }
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        Self::score_raw(emb, t)
    }
}

// ---------------------------------------------------------------------------
// TuckER
// ---------------------------------------------------------------------------

/// TuckER (Balazevic et al., 2019): `score = W ×₁ h ×₂ r ×₃ t` with a
/// trained core tensor `W ∈ R^{d × d × d}` (we tie `d_r = d_e = d`).
/// Trained with the multiclass log-loss like the bilinear models.
#[derive(Debug, Clone)]
pub struct TuckEr {
    dim: usize,
    /// Core tensor, index `[(i_h · d) + k_r] · d + j_t`.
    core: Vec<f32>,
    opt_core: Adagrad,
    opt_entity: Adagrad,
    opt_relation: Adagrad,
    lr: f32,
}

impl TuckEr {
    /// Create with a random core.
    pub fn new(emb: &Embeddings, lr: f32, rng: &mut Rng) -> Self {
        let d = emb.dim();
        let scale = (6.0 / (3 * d) as f32).sqrt();
        let core: Vec<f32> = (0..d * d * d).map(|_| rng.uniform(-scale, scale)).collect();
        TuckEr {
            dim: d,
            opt_core: Adagrad::new(core.len(), lr, 1e-5),
            opt_entity: Adagrad::new(emb.entity.as_slice().len(), lr, 1e-5),
            opt_relation: Adagrad::new(emb.relation.as_slice().len(), lr, 1e-5),
            core,
            lr,
        }
    }

    /// Learning rate in use (exposed for experiment logging).
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// `v_j = Σ_{i,k} h_i r_k W[i][k][j]` — the tail-side query vector.
    fn tail_vec(&self, h: &[f32], r: &[f32], v: &mut [f32]) {
        let d = self.dim;
        vecops::zero(v);
        for i in 0..d {
            let hi = h[i];
            if hi == 0.0 {
                continue;
            }
            for k in 0..d {
                let w = hi * r[k];
                if w == 0.0 {
                    continue;
                }
                let base = (i * d + k) * d;
                vecops::axpy(w, &self.core[base..base + d], v);
            }
        }
    }

    /// `u_i = Σ_{k,j} r_k t_j W[i][k][j]` — the head-side query vector.
    fn head_vec(&self, t: &[f32], r: &[f32], u: &mut [f32]) {
        let d = self.dim;
        vecops::zero(u);
        for i in 0..d {
            let mut acc = 0.0f32;
            for k in 0..d {
                let rk = r[k];
                if rk == 0.0 {
                    continue;
                }
                let base = (i * d + k) * d;
                acc += rk * vecops::dot(&self.core[base..base + d], t);
            }
            u[i] = acc;
        }
    }

    /// The trained core tensor (read access for checkpointing and the
    /// gradient contract checker).
    pub fn core(&self) -> &[f32] {
        &self.core
    }

    /// Mutable core access (used by the gradient contract checker to
    /// finite-difference through the core).
    pub fn core_mut(&mut self) -> &mut [f32] {
        &mut self.core
    }

    /// Gradients of the full-softmax tail step at the current
    /// parameters. Pure: reads `emb` and `self.core`, writes only `g`.
    ///
    /// The per-entity row gradient is `g.resid[c] · g.v`; head, relation
    /// and core gradients are dense in `g`.
    pub fn step_grads(&self, emb: &Embeddings, t: Triple, g: &mut TuckErGrads) {
        let d = self.dim;
        let h = emb.entity.row(t.head as usize);
        let r = emb.relation.row(t.rel as usize);
        self.tail_vec(h, r, &mut g.v);
        emb.entity.matvec(&g.v, &mut g.resid);
        g.loss = eras_linalg::softmax::log_loss_and_residual(&mut g.resid, t.tail as usize);
        // g_v = Eᵀ resid.
        let mut g_v = vec![0.0f32; d];
        emb.entity.matvec_transpose(&g.resid, &mut g_v);
        // ∂L/∂h_i = Σ_k r_k ⟨W[i][k][:], g_v⟩ ; ∂L/∂r_k symmetric;
        // ∂L/∂W[i][k][j] = h_i r_k g_v[j].
        vecops::zero(&mut g.head);
        vecops::zero(&mut g.rel);
        for i in 0..d {
            for k in 0..d {
                let base = (i * d + k) * d;
                let wg = vecops::dot(&self.core[base..base + d], &g_v);
                g.head[i] += r[k] * wg;
                g.rel[k] += h[i] * wg;
                let scale = h[i] * r[k];
                for j in 0..d {
                    g.core[base + j] = scale * g_v[j];
                }
            }
        }
    }

    /// One pass over `train` (tail-prediction side with full softmax).
    /// Returns the mean loss.
    pub fn train_epoch(&mut self, emb: &mut Embeddings, train: &[Triple]) -> f32 {
        let d = self.dim;
        let ne = emb.num_entities();
        let mut g = TuckErGrads::new(d, ne);
        let mut grad = vec![0.0f32; d];
        let mut total = 0.0f32;
        for &t in train {
            let h: Vec<f32> = emb.entity.row(t.head as usize).to_vec();
            let r: Vec<f32> = emb.relation.row(t.rel as usize).to_vec();
            self.step_grads(emb, t, &mut g);
            total += g.loss;
            // Entity rows += resid · v.
            for c in 0..ne {
                let resid = g.resid[c];
                if resid == 0.0 {
                    continue;
                }
                for (gr, &vv) in grad.iter_mut().zip(&g.v) {
                    *gr = resid * vv;
                }
                self.opt_entity
                    .step_at(emb.entity.as_mut_slice(), c * d, &grad);
            }
            for i in 0..d {
                for k in 0..d {
                    if h[i] * r[k] != 0.0 {
                        let base = (i * d + k) * d;
                        self.opt_core
                            .step_at(&mut self.core, base, &g.core[base..base + d]);
                    }
                }
            }
            self.opt_entity
                .step_at(emb.entity.as_mut_slice(), t.head as usize * d, &g.head);
            self.opt_relation
                .step_at(emb.relation.as_mut_slice(), t.rel as usize * d, &g.rel);
        }
        if train.is_empty() {
            0.0
        } else {
            total / train.len() as f32
        }
    }
}

impl ScoreModel for TuckEr {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let mut v = vec![0.0f32; self.dim];
        self.tail_vec(
            emb.entity.row(h as usize),
            emb.relation.row(r as usize),
            &mut v,
        );
        emb.entity.matvec(&v, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let mut u = vec![0.0f32; self.dim];
        self.head_vec(
            emb.entity.row(t as usize),
            emb.relation.row(r as usize),
            &mut u,
        );
        emb.entity.matvec(&u, out);
    }

    fn score_triple(&self, emb: &Embeddings, t: Triple) -> f32 {
        let mut v = vec![0.0f32; self.dim];
        self.tail_vec(
            emb.entity.row(t.head as usize),
            emb.relation.row(t.rel as usize),
            &mut v,
        );
        vecops::dot(&v, emb.entity.row(t.tail as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dim: usize) -> (Embeddings, FilterIndex, Vec<Triple>, Rng) {
        let mut rng = Rng::seed_from_u64(7);
        let emb = Embeddings::init(10, 2, dim, &mut rng);
        let train: Vec<Triple> = (0..8u32).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect();
        let filter = FilterIndex::from_triples(train.iter().copied());
        (emb, filter, train, rng)
    }

    #[test]
    fn transe_score_consistency() {
        let (emb, _, _, _) = setup(8);
        let model = TransE::new(&emb, MarginConfig::default());
        let mut out = vec![0.0; 10];
        model.score_all_tails(&emb, 2, 1, &mut out);
        for t in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(2, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        model.score_all_heads(&emb, 3, 0, &mut out);
        for h in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(h, 0, 3));
            assert!((out[h as usize] - s).abs() < 1e-4);
        }
    }

    #[test]
    fn transe_training_separates_positives_from_negatives() {
        let (mut emb, filter, train, mut rng) = setup(8);
        let mut model = TransE::new(&emb, MarginConfig::default());
        for _ in 0..60 {
            model.train_epoch(&mut emb, &train, &filter, &mut rng);
        }
        // Positives should now score better than random corruptions.
        let mut wins = 0;
        let trials = 100;
        for i in 0..trials {
            let pos = train[i % train.len()];
            let neg = corrupt(pos, 10, &filter, &mut rng);
            if model.score_triple(&emb, pos) > model.score_triple(&emb, neg) {
                wins += 1;
            }
        }
        assert!(wins > 75, "only {wins}/{trials} positives beat negatives");
    }

    #[test]
    fn transh_score_consistency() {
        let (emb, _, _, mut rng) = setup(8);
        let model = TransH::new(&emb, MarginConfig::default(), &mut rng);
        let mut out = vec![0.0; 10];
        model.score_all_tails(&emb, 1, 0, &mut out);
        for t in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(1, 0, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        model.score_all_heads(&emb, 4, 1, &mut out);
        for h in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(h, 1, 4));
            assert!((out[h as usize] - s).abs() < 1e-4);
        }
    }

    #[test]
    fn transh_training_learns() {
        let (mut emb, filter, train, mut rng) = setup(8);
        let mut model = TransH::new(&emb, MarginConfig::default(), &mut rng);
        let mut early = 0.0;
        let mut late = 0.0;
        for epoch in 0..60 {
            let loss = model.train_epoch(&mut emb, &train, &filter, &mut rng);
            if epoch < 5 {
                early += loss;
            }
            if epoch >= 55 {
                late += loss;
            }
        }
        assert!(late < early, "margin loss should shrink: {early} -> {late}");
    }

    #[test]
    fn rotate_score_consistency() {
        let (emb, _, _, _) = setup(8);
        let model = RotatE::new(&emb, MarginConfig::default());
        let mut out = vec![0.0; 10];
        model.score_all_tails(&emb, 0, 0, &mut out);
        for t in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(0, 0, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        model.score_all_heads(&emb, 2, 1, &mut out);
        for h in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(h, 1, 2));
            assert!(
                (out[h as usize] - s).abs() < 1e-3,
                "head {h}: {} vs {s}",
                out[h as usize]
            );
        }
    }

    #[test]
    fn rotate_gradient_matches_finite_difference() {
        let (emb, _, _, _) = setup(4);
        let t = Triple::new(1, 0, 2);
        // Numeric check of ∂(−score)/∂θ_0.
        let eps = 1e-3f32;
        let base = RotatE::score_raw(&emb, t);
        let mut emb_p = emb.clone();
        emb_p.relation.as_mut_slice()[0] += eps;
        let plus = RotatE::score_raw(&emb_p, t);
        let fd = (plus - base) / eps;
        // Analytic: reuse the epoch internals on a single triple by
        // running one positive-only step with SGD-like extraction. Here we
        // recompute the formula directly.
        let dim = 4usize;
        let _pairs = dim / 2;
        let h = emb.entity.row(1);
        let r = emb.relation.row(0);
        let tl = emb.entity.row(2);
        let analytic;
        {
            let k = 0;
            let (hr, hi) = (h[2 * k], h[2 * k + 1]);
            let (c, s) = (r[k].cos(), r[k].sin());
            let dr = hr * c - hi * s - tl[2 * k];
            let di = hr * s + hi * c - tl[2 * k + 1];
            let norm = (dr * dr + di * di).sqrt().max(1e-8);
            let (ur, ui) = (dr / norm, di / norm);
            analytic = ur * (-hr * s - hi * c) + ui * (hr * c - hi * s);
        }
        let _ = dim;
        // fd approximates ∂score/∂θ = −∂‖d‖/∂θ = −analytic.
        assert!(
            (fd + analytic).abs() < 1e-2,
            "fd {fd} vs -analytic {}",
            -analytic
        );
    }

    #[test]
    fn rotate_self_adversarial_training_learns() {
        let (mut emb, filter, train, mut rng) = setup(8);
        let mut model = RotatE::new(&emb, MarginConfig::default());
        let first = model.train_epoch_self_adversarial(&mut emb, &train, &filter, 4, 1.0, &mut rng);
        let mut last = first;
        for _ in 0..50 {
            last = model.train_epoch_self_adversarial(&mut emb, &train, &filter, 4, 1.0, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
        // Positives should outrank fresh corruptions.
        let mut wins = 0;
        for i in 0..60 {
            let pos = train[i % train.len()];
            let neg = corrupt(pos, 10, &filter, &mut rng);
            if model.score_triple(&emb, pos) > model.score_triple(&emb, neg) {
                wins += 1;
            }
        }
        assert!(wins > 40, "{wins}/60");
    }

    #[test]
    fn rotate_training_learns() {
        let (mut emb, filter, train, mut rng) = setup(8);
        let mut model = RotatE::new(&emb, MarginConfig::default());
        let first = model.train_epoch(&mut emb, &train, &filter, &mut rng);
        let mut last = first;
        for _ in 0..50 {
            last = model.train_epoch(&mut emb, &train, &filter, &mut rng);
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn tucker_score_consistency() {
        let (emb, _, _, mut rng) = setup(6);
        let model = TuckEr::new(&emb, 0.05, &mut rng);
        let mut out = vec![0.0; 10];
        model.score_all_tails(&emb, 3, 1, &mut out);
        for t in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(3, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-4);
        }
        // Head-side agreement: score_all_heads[h] must equal the triple
        // score with that head.
        model.score_all_heads(&emb, 5, 0, &mut out);
        for h in 0..10u32 {
            let s = model.score_triple(&emb, Triple::new(h, 0, 5));
            assert!(
                (out[h as usize] - s).abs() < 1e-3,
                "head {h}: {} vs {s}",
                out[h as usize]
            );
        }
    }

    #[test]
    fn tucker_training_reduces_loss() {
        let (mut emb, _, train, mut rng) = setup(6);
        let mut model = TuckEr::new(&emb, 0.1, &mut rng);
        let first = model.train_epoch(&mut emb, &train);
        let mut last = first;
        for _ in 0..25 {
            last = model.train_epoch(&mut emb, &train);
        }
        assert!(last < first * 0.9, "loss {first} -> {last}");
    }

    #[test]
    #[should_panic]
    fn rotate_requires_even_dim() {
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(4, 1, 5, &mut rng);
        let _ = RotatE::new(&emb, MarginConfig::default());
    }
}
