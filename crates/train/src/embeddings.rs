//! The embedding parameters `ω = {E, R}` (Table II of the paper).

use eras_linalg::{Matrix, Rng};

/// Entity and relation embedding tables.
///
/// `entity` is `N_e × d`, `relation` is `N_r × d`. Models that need extra
/// relation parameters (TransH normals, TuckER's core) keep them in their
/// own structs; these two tables are the parameters *shared through the
/// supernet* during ERAS search.
#[derive(Debug, Clone)]
pub struct Embeddings {
    /// Entity table `E ∈ R^{N_e × d}`.
    pub entity: Matrix,
    /// Relation table `R ∈ R^{N_r × d}`.
    pub relation: Matrix,
}

impl Embeddings {
    /// Initialise both tables with uniform `±scale` noise.
    pub fn init(num_entities: usize, num_relations: usize, dim: usize, rng: &mut Rng) -> Self {
        // AutoSF-style init: small uniform noise scaled by dimension.
        let scale = (6.0 / dim as f32).sqrt() / 3.0;
        Embeddings {
            entity: Matrix::uniform_init(num_entities, dim, scale, rng),
            relation: Matrix::uniform_init(num_relations, dim, scale, rng),
        }
    }

    /// Embedding dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.entity.cols()
    }

    /// Number of entities.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.entity.rows()
    }

    /// Number of relations.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.relation.rows()
    }

    /// Total parameter count (the model-complexity column of Table I:
    /// `O(N_e d + N_r d)` for every bilinear model).
    pub fn num_parameters(&self) -> usize {
        self.entity.rows() * self.entity.cols() + self.relation.rows() * self.relation.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = Rng::seed_from_u64(0);
        let e = Embeddings::init(10, 3, 8, &mut rng);
        assert_eq!(e.dim(), 8);
        assert_eq!(e.num_entities(), 10);
        assert_eq!(e.num_relations(), 3);
        assert_eq!(e.num_parameters(), 10 * 8 + 3 * 8);
    }

    #[test]
    fn init_is_seeded() {
        let mut a = Rng::seed_from_u64(5);
        let mut b = Rng::seed_from_u64(5);
        let ea = Embeddings::init(4, 2, 4, &mut a);
        let eb = Embeddings::init(4, 2, 4, &mut b);
        assert_eq!(ea.entity.as_slice(), eb.entity.as_slice());
        assert_eq!(ea.relation.as_slice(), eb.relation.as_slice());
    }

    #[test]
    fn init_is_nondegenerate() {
        let mut rng = Rng::seed_from_u64(1);
        let e = Embeddings::init(5, 2, 16, &mut rng);
        assert!(e.entity.frobenius_norm() > 0.0);
        assert!(e.relation.frobenius_norm() > 0.0);
    }
}
