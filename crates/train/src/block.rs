//! The (relation-aware) block bilinear model — the workhorse of the paper.
//!
//! A [`BlockModel`] carries one [`BlockSf`] structure per relation group
//! and an assignment of relations to groups (the paper's `B`). With one
//! group it is AutoSF's universal model (and subsumes DistMult, ComplEx,
//! SimplE, Analogy via `eras_sf::zoo`); with `N > 1` groups it is ERAS's
//! relation-aware model.
//!
//! ## Scoring
//!
//! Because `f(h,r,t) = Σ_{ij} sign·⟨h_i, r_b, t_j⟩` is linear in the tail,
//! a tail query `(h, r, ?)` reduces to one *query vector* `q ∈ R^d` with
//! `q_j += sign · (h_i ⊙ r_b)`, after which the scores of all entities are
//! the single mat-vec `E·q` — the same `O(N_e d)` cost profile as the
//! paper's GPU implementation, and the reason the inference column of
//! Table I reads `O(d)` per candidate. Head queries use the transposed
//! grid.
//!
//! ## Training
//!
//! One training example contributes two 1-vs-all classification problems
//! (predict the tail, predict the head) under the multiclass log-loss.
//! Gradients are exact and flow through three places: the candidate
//! entity rows (`resid[c] · q`), the head/tail entity row and the relation
//! row (chain rule through `q`). [`LossMode::Sampled`] replaces the full
//! candidate set with `k` uniform negatives plus the target, which
//! preserves the estimator's direction while cutting the per-example cost
//! from `O(N_e d)` to `O(k d)` — used inside search loops.
//! [`LossMode::NegSampling`] keeps the same `O(k d)` sampled-block shape
//! but swaps the softmax for the gamma-margin logsigmoid objective with
//! *filtered* negatives (rejected against the known-true index via
//! [`NegCtx`]) and optional self-adversarial weighting — the objective
//! that trains million-entity graphs, because no step ever touches more
//! than the positive + sampled rows.

use crate::embeddings::Embeddings;
use crate::eval::{CandidateSet, ScoreModel};
use crate::loss::{Corruption, LossMode};
use crate::negative::{sample_neg_block, NegCtx};
use eras_data::Triple;
use eras_linalg::optim::Optimizer;
use eras_linalg::scan::{scan_rows, RankTally};
use eras_linalg::softmax::{log_loss_and_residual, neg_sampling_loss_and_residual};
use eras_linalg::vecops;
use eras_linalg::Rng;
use eras_sf::BlockSf;

/// Relation-aware block bilinear model: `{f_n}` plus the assignment `B`.
#[derive(Debug, Clone)]
pub struct BlockModel {
    m: usize,
    sfs: Vec<BlockSf>,
    transposed: Vec<BlockSf>,
    assignment: Vec<u8>,
}

impl BlockModel {
    /// Universal (task-aware only) model: one structure for all relations.
    pub fn universal(sf: BlockSf, num_relations: usize) -> Self {
        let m = sf.m();
        BlockModel {
            m,
            transposed: vec![sf.transposed()],
            sfs: vec![sf],
            assignment: vec![0; num_relations],
        }
    }

    /// Relation-aware model: one structure per group plus the relation →
    /// group assignment. Panics if an assignment references a missing
    /// group or the structures disagree on `M`.
    // audit:allow(E701): snapshot/model validation at construction;
    // inconsistent groups fail at load time, never inside a request
    pub fn relation_aware(sfs: Vec<BlockSf>, assignment: Vec<u8>) -> Self {
        assert!(!sfs.is_empty(), "need at least one group");
        let m = sfs[0].m();
        assert!(sfs.iter().all(|sf| sf.m() == m), "inconsistent M");
        let n = sfs.len() as u8;
        assert!(
            assignment.iter().all(|&g| g < n),
            "assignment references group >= {n}"
        );
        BlockModel {
            m,
            transposed: sfs.iter().map(BlockSf::transposed).collect(),
            sfs,
            assignment,
        }
    }

    /// Number of blocks `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of relation groups `N`.
    pub fn num_groups(&self) -> usize {
        self.sfs.len()
    }

    /// The group structures `{f_n}`.
    pub fn sfs(&self) -> &[BlockSf] {
        &self.sfs
    }

    /// The relation → group assignment `B`.
    pub fn assignment(&self) -> &[u8] {
        &self.assignment
    }

    /// Replace the group structures (ERAS samples new ones every step).
    pub fn set_sfs(&mut self, sfs: Vec<BlockSf>) {
        assert_eq!(sfs.len(), self.sfs.len(), "group count is fixed");
        assert!(sfs.iter().all(|sf| sf.m() == self.m), "inconsistent M");
        self.transposed = sfs.iter().map(BlockSf::transposed).collect();
        self.sfs = sfs;
    }

    /// Replace the relation assignment (EM step of ERAS).
    pub fn set_assignment(&mut self, assignment: Vec<u8>) {
        assert_eq!(assignment.len(), self.assignment.len());
        let n = self.sfs.len() as u8;
        assert!(assignment.iter().all(|&g| g < n));
        self.assignment = assignment;
    }

    /// Structure used for relation `rel`.
    // audit:allow(E701): rel < num_relations is validated when queries
    // are checked, and assignment entries are < sfs.len() at build
    #[inline]
    pub fn sf_for(&self, rel: u32) -> &BlockSf {
        &self.sfs[self.assignment[rel as usize] as usize]
    }

    /// Transposed structure for relation `rel` (head-side queries).
    /// `pub(crate)` so the data-parallel trainer can share the kernels.
    // audit:allow(E701): same bounds argument as sf_for; transposed is
    // built in lockstep with sfs
    #[inline]
    pub(crate) fn sf_for_transposed(&self, rel: u32) -> &BlockSf {
        &self.transposed[self.assignment[rel as usize] as usize]
    }

    /// Block size `d / M`. Panics unless `d` is divisible by `M`.
    // audit:allow(E701): dim % M == 0 is validated when the snapshot is
    // loaded; a violation is a load-time bug, not request data
    #[inline]
    fn block_size(&self, dim: usize) -> usize {
        assert_eq!(dim % self.m, 0, "dim {dim} not divisible by M={}", self.m);
        dim / self.m
    }

    /// Build the tail-query vector: `score(t') = ⟨q, E[t']⟩`.
    pub fn tail_query(&self, emb: &Embeddings, h: u32, r: u32, q: &mut [f32]) {
        self.query_with(
            self.sf_for(r),
            emb.entity.row(h as usize),
            emb.relation.row(r as usize),
            q,
        );
    }

    /// Build the head-query vector: `score(h') = ⟨q, E[h']⟩`.
    pub fn head_query(&self, emb: &Embeddings, t: u32, r: u32, q: &mut [f32]) {
        self.query_with(
            self.sf_for_transposed(r),
            emb.entity.row(t as usize),
            emb.relation.row(r as usize),
            q,
        );
    }

    /// `q_j += sign · (x_i ⊙ r_b)` over the non-zero cells of `sf`.
    // audit:allow(E701): nonzero_cells yields i, j < M with block ops
    // (expect cannot fire), and b < M by BlockSf's grid invariant, so
    // every i*bs..(i+1)*bs slice lies inside the M*bs vectors
    pub(crate) fn query_with(&self, sf: &BlockSf, x: &[f32], rel: &[f32], q: &mut [f32]) {
        let bs = self.block_size(x.len());
        vecops::zero(q);
        for (i, j, op) in sf.nonzero_cells() {
            let b = op.block().expect("nonzero") as usize;
            vecops::hadamard_axpy(
                op.sign(),
                &x[i * bs..(i + 1) * bs],
                &rel[b * bs..(b + 1) * bs],
                &mut q[j * bs..(j + 1) * bs],
            );
        }
    }

    /// Back-propagate from `g_q = ∂L/∂q` to the head/tail row (`grad_x`)
    /// and the relation row (`grad_r`), for the grid used forward.
    pub(crate) fn backprop_query(
        &self,
        sf: &BlockSf,
        x: &[f32],
        rel: &[f32],
        g_q: &[f32],
        grad_x: &mut [f32],
        grad_r: &mut [f32],
    ) {
        let bs = self.block_size(x.len());
        for (i, j, op) in sf.nonzero_cells() {
            let b = op.block().expect("nonzero") as usize;
            let s = op.sign();
            let gq_j = &g_q[j * bs..(j + 1) * bs];
            vecops::hadamard_axpy(
                s,
                gq_j,
                &rel[b * bs..(b + 1) * bs],
                &mut grad_x[i * bs..(i + 1) * bs],
            );
            vecops::hadamard_axpy(
                s,
                gq_j,
                &x[i * bs..(i + 1) * bs],
                &mut grad_r[b * bs..(b + 1) * bs],
            );
        }
    }
}

/// Rank `target` among all entities scored against the query vector
/// `q`, via the fused entity-table scan: the target's score is one dot
/// product, every other candidate's score streams through a
/// [`RankTally`] without materializing a score vector. Each streamed
/// score is bit-identical to the matvec the dense default would rank
/// over, so this returns exactly what
/// `filtered_rank(E·q, target, filtered)` does.
fn rank_with_query(emb: &Embeddings, q: &[f32], target: u32, filtered: &[u32]) -> f64 {
    let target_score = vecops::dot(emb.entity.row(target as usize), q);
    let mut tally = RankTally::new(target, target_score, filtered);
    scan_rows(&emb.entity, q, std::slice::from_mut(&mut tally));
    tally.rank()
}

/// Sampled counterpart of [`rank_with_query`]: stream the gathered
/// candidate rows instead of the whole entity table. Global ids map to
/// candidate slots (both sorted, so the filtered remap preserves
/// order); a target outside the sample maps to the `u32::MAX` sentinel
/// no slot can match — its score still anchors the tally, so the true
/// answer always competes and is never filtered.
fn rank_with_query_sampled(
    emb: &Embeddings,
    q: &[f32],
    target: u32,
    filtered: &[u32],
    cand: &CandidateSet,
) -> f64 {
    let target_score = vecops::dot(emb.entity.row(target as usize), q);
    let local_target = cand.local_of(target).unwrap_or(u32::MAX);
    let local_filt: Vec<u32> = filtered.iter().filter_map(|&f| cand.local_of(f)).collect();
    let mut tally = RankTally::new(local_target, target_score, &local_filt);
    scan_rows(cand.rows(), q, std::slice::from_mut(&mut tally));
    tally.rank()
}

impl ScoreModel for BlockModel {
    fn score_all_tails(&self, emb: &Embeddings, h: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0; emb.dim()];
        self.tail_query(emb, h, r, &mut q);
        emb.entity.matvec(&q, out);
    }

    fn score_all_heads(&self, emb: &Embeddings, t: u32, r: u32, out: &mut [f32]) {
        let mut q = vec![0.0; emb.dim()];
        self.head_query(emb, t, r, &mut q);
        emb.entity.matvec(&q, out);
    }

    fn score_triple(&self, emb: &Embeddings, triple: Triple) -> f32 {
        let mut q = vec![0.0; emb.dim()];
        self.tail_query(emb, triple.head, triple.rel, &mut q);
        vecops::dot(&q, emb.entity.row(triple.tail as usize))
    }

    fn tail_rank(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        _scores: &mut [f32],
    ) -> f64 {
        let mut q = vec![0.0; emb.dim()];
        self.tail_query(emb, h, r, &mut q);
        rank_with_query(emb, &q, target, filtered)
    }

    fn head_rank(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        _scores: &mut [f32],
    ) -> f64 {
        let mut q = vec![0.0; emb.dim()];
        self.head_query(emb, t, r, &mut q);
        rank_with_query(emb, &q, target, filtered)
    }

    fn tail_rank_sampled(
        &self,
        emb: &Embeddings,
        h: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        _scores: &mut [f32],
    ) -> f64 {
        let mut q = vec![0.0; emb.dim()];
        self.tail_query(emb, h, r, &mut q);
        rank_with_query_sampled(emb, &q, target, filtered, cand)
    }

    fn head_rank_sampled(
        &self,
        emb: &Embeddings,
        t: u32,
        r: u32,
        target: u32,
        filtered: &[u32],
        cand: &CandidateSet,
        _scores: &mut [f32],
    ) -> f64 {
        let mut q = vec![0.0; emb.dim()];
        self.head_query(emb, t, r, &mut q);
        rank_with_query_sampled(emb, &q, target, filtered, cand)
    }
}

/// Reusable scratch buffers for [`train_minibatch`] — keeps the hot loop
/// allocation-free (one set per trainer).
#[derive(Debug, Default)]
pub struct BlockScratch {
    q: Vec<f32>,
    g_q: Vec<f32>,
    grad_x: Vec<f32>,
    grad_r: Vec<f32>,
    x_copy: Vec<f32>,
    r_copy: Vec<f32>,
    scores: Vec<f32>,
    candidates: Vec<u32>,
}

impl BlockScratch {
    /// Fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn resize(&mut self, dim: usize) {
        self.q.resize(dim, 0.0);
        self.g_q.resize(dim, 0.0);
        self.grad_x.resize(dim, 0.0);
        self.grad_r.resize(dim, 0.0);
        self.x_copy.resize(dim, 0.0);
        self.r_copy.resize(dim, 0.0);
    }
}

/// One direction of the 1-vs-all step. `anchor` is the known entity
/// (head for tail-prediction), `target` the entity to predict.
/// `pub(crate)` so the gradient contract checker can isolate one side.
#[allow(clippy::too_many_arguments)]
pub(crate) fn train_side(
    model: &BlockModel,
    sf_is_transposed: bool,
    emb: &mut Embeddings,
    opt_entity: &mut dyn Optimizer,
    opt_relation: &mut dyn Optimizer,
    anchor: u32,
    rel: u32,
    target: u32,
    mode: LossMode,
    neg: Option<&NegCtx>,
    rng: &mut Rng,
    scratch: &mut BlockScratch,
) -> f32 {
    let dim = emb.dim();
    scratch.resize(dim);
    let sf = if sf_is_transposed {
        model.sf_for_transposed(rel)
    } else {
        model.sf_for(rel)
    };
    // Copy the rows we read: the optimizer may update them below.
    scratch
        .x_copy
        .copy_from_slice(emb.entity.row(anchor as usize));
    scratch
        .r_copy
        .copy_from_slice(emb.relation.row(rel as usize));
    model.query_with(sf, &scratch.x_copy, &scratch.r_copy, &mut scratch.q);

    // Candidate set: all entities, or target + k uniform negatives.
    let num_entities = emb.num_entities();
    scratch.candidates.clear();
    let target_slot;
    match mode {
        LossMode::Full => {
            scratch.scores.resize(num_entities, 0.0);
            emb.entity.matvec(&scratch.q, &mut scratch.scores);
            target_slot = target as usize;
            // Candidates are implicit (all); leave `candidates` empty.
        }
        LossMode::Sampled { negatives } => {
            scratch.candidates.push(target);
            for _ in 0..negatives {
                let mut c = rng.next_below(num_entities) as u32;
                if c == target {
                    c = (c + 1) % num_entities as u32;
                }
                scratch.candidates.push(c);
            }
            scratch.scores.resize(scratch.candidates.len(), 0.0);
            for (slot, &c) in scratch.candidates.iter().enumerate() {
                scratch.scores[slot] = vecops::dot(&scratch.q, emb.entity.row(c as usize));
            }
            target_slot = 0;
        }
        LossMode::NegSampling { negatives, .. } => {
            // Slot 0 is the positive; the block of filtered negatives
            // corrupts the side being predicted (tail unless this is
            // the transposed/head-prediction direction).
            scratch.candidates.push(target);
            scratch.candidates.resize(1 + negatives, 0);
            sample_neg_block(
                anchor,
                rel,
                target,
                !sf_is_transposed,
                num_entities,
                neg.map(|n| n.filter),
                rng,
                &mut scratch.candidates[1..],
            );
            scratch.scores.resize(scratch.candidates.len(), 0.0);
            for (slot, &c) in scratch.candidates.iter().enumerate() {
                scratch.scores[slot] = vecops::dot(&scratch.q, emb.entity.row(c as usize));
            }
            target_slot = 0;
        }
    }

    let loss = match mode {
        LossMode::NegSampling {
            gamma,
            adversarial_temp,
            ..
        } => neg_sampling_loss_and_residual(&mut scratch.scores, gamma, adversarial_temp),
        _ => log_loss_and_residual(&mut scratch.scores, target_slot),
    };
    // scratch.scores now holds the per-candidate residual ∂L/∂s.

    // g_q = Σ_c resid[c] · E[c]; entity rows get resid[c] · q.
    vecops::zero(&mut scratch.g_q);
    match mode {
        LossMode::Full => {
            emb.entity
                .matvec_transpose(&scratch.scores, &mut scratch.g_q);
            // Dense candidate update: every entity row moves. Apply in one
            // sweep to keep optimizer state contiguous.
            let dim = emb.dim();
            let mut row_grad = vec![0.0f32; dim];
            for c in 0..num_entities {
                let resid = scratch.scores[c];
                if resid == 0.0 {
                    continue;
                }
                vecops::scaled_copy(resid, &scratch.q, &mut row_grad);
                opt_entity.step_at(emb.entity.as_mut_slice(), c * dim, &row_grad);
            }
        }
        LossMode::Sampled { .. } => {
            let dim = emb.dim();
            let mut row_grad = vec![0.0f32; dim];
            for (slot, &c) in scratch.candidates.iter().enumerate() {
                let resid = scratch.scores[slot];
                vecops::axpy(resid, emb.entity.row(c as usize), &mut scratch.g_q);
                vecops::scaled_copy(resid, &scratch.q, &mut row_grad);
                opt_entity.step_at(emb.entity.as_mut_slice(), c as usize * dim, &row_grad);
            }
        }
        LossMode::NegSampling { .. } => {
            // Two passes: accumulate g_q from the *pre-update* rows,
            // then scatter the entity steps. Negatives are drawn with
            // replacement, and a duplicate read after its first step
            // would make the applied update not the gradient of any
            // single point — the finite-difference contract
            // (`block-neg-sampling`) pins this down. Also matches the
            // data-parallel path, which always accumulates shard-side
            // before applying.
            let dim = emb.dim();
            let mut row_grad = vec![0.0f32; dim];
            for (slot, &c) in scratch.candidates.iter().enumerate() {
                vecops::axpy(
                    scratch.scores[slot],
                    emb.entity.row(c as usize),
                    &mut scratch.g_q,
                );
            }
            for (slot, &c) in scratch.candidates.iter().enumerate() {
                vecops::scaled_copy(scratch.scores[slot], &scratch.q, &mut row_grad);
                opt_entity.step_at(emb.entity.as_mut_slice(), c as usize * dim, &row_grad);
            }
        }
    }

    // Chain rule through q into the anchor row and the relation row.
    vecops::zero(&mut scratch.grad_x);
    vecops::zero(&mut scratch.grad_r);
    model.backprop_query(
        sf,
        &scratch.x_copy,
        &scratch.r_copy,
        &scratch.g_q,
        &mut scratch.grad_x,
        &mut scratch.grad_r,
    );
    opt_entity.step_at(
        emb.entity.as_mut_slice(),
        anchor as usize * dim,
        &scratch.grad_x,
    );
    opt_relation.step_at(
        emb.relation.as_mut_slice(),
        rel as usize * dim,
        &scratch.grad_r,
    );
    loss
}

/// Whether `mode` corrupts the tail side of `triple` this step: both
/// sides under every mode except Bernoulli negative sampling, which
/// draws one side per triple from the relation's fitted tail
/// probability. Returns `(tail_side, head_side)`.
#[inline]
pub(crate) fn sides_for(
    mode: LossMode,
    neg: Option<&NegCtx>,
    t: Triple,
    rng: &mut Rng,
) -> (bool, bool) {
    match mode {
        LossMode::NegSampling {
            corruption: Corruption::Bernoulli,
            ..
        } => {
            let p = neg
                .and_then(|n| n.bernoulli.as_ref())
                .map(|b| b.tail_prob(t.rel))
                .unwrap_or(0.5);
            let tail = rng.bernoulli(p);
            (tail, !tail)
        }
        _ => (true, true),
    }
}

/// One pass over a minibatch: for every triple, a tail-prediction and a
/// head-prediction step (or the Bernoulli-chosen single side under
/// [`LossMode::NegSampling`]). `neg` supplies the filtered-negative
/// context for the neg-sampling objective; `None` falls back to
/// target-excluded uniform sampling. Returns the mean per-side loss.
#[allow(clippy::too_many_arguments)]
pub fn train_minibatch(
    model: &BlockModel,
    emb: &mut Embeddings,
    opt_entity: &mut dyn Optimizer,
    opt_relation: &mut dyn Optimizer,
    batch: &[Triple],
    mode: LossMode,
    neg: Option<&NegCtx>,
    rng: &mut Rng,
    scratch: &mut BlockScratch,
) -> f32 {
    if batch.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    let mut sides = 0u32;
    for &t in batch {
        let (tail_side, head_side) = sides_for(mode, neg, t, rng);
        if tail_side {
            total += train_side(
                model,
                false,
                emb,
                opt_entity,
                opt_relation,
                t.head,
                t.rel,
                t.tail,
                mode,
                neg,
                rng,
                scratch,
            );
            sides += 1;
        }
        if head_side {
            total += train_side(
                model,
                true,
                emb,
                opt_entity,
                opt_relation,
                t.tail,
                t.rel,
                t.head,
                mode,
                neg,
                rng,
                scratch,
            );
            sides += 1;
        }
    }
    total / sides.max(1) as f32
}

/// Apply the N3 (nuclear 3-norm) regularisation gradient of Lacroix et
/// al. (2018) to the factor rows of each triple in `batch`:
/// `∂(λ‖x‖₃³)/∂x = 3λ · sign(x) · x²`. The paper's training protocol
/// follows this regulariser family; it is what keeps the 1-vs-all
/// objective from inflating embedding norms.
pub fn apply_n3(
    emb: &mut Embeddings,
    opt_entity: &mut dyn Optimizer,
    opt_relation: &mut dyn Optimizer,
    batch: &[Triple],
    lambda: f32,
) {
    let dim = emb.dim();
    let mut grad = vec![0.0f32; dim];
    let fill = |row: &[f32], grad: &mut [f32]| {
        for (g, &x) in grad.iter_mut().zip(row) {
            *g = 3.0 * lambda * x * x * x.signum();
        }
    };
    for t in batch {
        for &e in &[t.head, t.tail] {
            fill(emb.entity.row(e as usize), &mut grad);
            opt_entity.step_at(emb.entity.as_mut_slice(), e as usize * dim, &grad);
        }
        fill(emb.relation.row(t.rel as usize), &mut grad);
        opt_relation.step_at(emb.relation.as_mut_slice(), t.rel as usize * dim, &grad);
    }
}

/// Mean multiclass log-loss of a triple set without updating anything
/// (used by the `ERAS^los` / `ERAS^dif` ablations as `M_val`).
pub fn evaluate_loss(model: &BlockModel, emb: &Embeddings, triples: &[Triple]) -> f32 {
    if triples.is_empty() {
        return 0.0;
    }
    let mut q = vec![0.0; emb.dim()];
    let mut scores = vec![0.0; emb.num_entities()];
    let mut total = 0.0f32;
    for &t in triples {
        model.tail_query(emb, t.head, t.rel, &mut q);
        emb.entity.matvec(&q, &mut scores);
        total += log_loss_and_residual(&mut scores, t.tail as usize);
        model.head_query(emb, t.tail, t.rel, &mut q);
        emb.entity.matvec(&q, &mut scores);
        total += log_loss_and_residual(&mut scores, t.head as usize);
    }
    total / (2.0 * triples.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eras_linalg::optim::{Adagrad, Sgd};
    use eras_sf::zoo;

    fn setup(dim: usize) -> (Embeddings, Rng) {
        let mut rng = Rng::seed_from_u64(42);
        let emb = Embeddings::init(12, 3, dim, &mut rng);
        (emb, rng)
    }

    #[test]
    fn score_matches_explicit_triple_dot_sum() {
        let (emb, _) = setup(8);
        let model = BlockModel::universal(zoo::complex(), 3);
        let t = Triple::new(1, 0, 2);
        let s = model.score_triple(&emb, t);
        // Manual: sum over nonzero cells of sign * <h_i, r_b, t_j>.
        let bs = 2;
        let h = emb.entity.row(1);
        let r = emb.relation.row(0);
        let tl = emb.entity.row(2);
        let mut manual = 0.0;
        for (i, j, op) in zoo::complex().nonzero_cells() {
            let b = op.block().unwrap() as usize;
            manual += op.sign()
                * vecops::triple_dot(
                    &h[i * bs..(i + 1) * bs],
                    &r[b * bs..(b + 1) * bs],
                    &tl[j * bs..(j + 1) * bs],
                );
        }
        assert!((s - manual).abs() < 1e-5, "{s} vs {manual}");
    }

    #[test]
    fn tail_scores_agree_with_per_triple_scores() {
        let (emb, _) = setup(8);
        let model = BlockModel::universal(zoo::simple(), 3);
        let mut out = vec![0.0; emb.num_entities()];
        model.score_all_tails(&emb, 3, 1, &mut out);
        for t in 0..emb.num_entities() as u32 {
            let s = model.score_triple(&emb, Triple::new(3, 1, t));
            assert!((out[t as usize] - s).abs() < 1e-5);
        }
    }

    #[test]
    fn head_scores_agree_with_per_triple_scores() {
        let (emb, _) = setup(8);
        let model = BlockModel::universal(zoo::analogy(), 3);
        let mut out = vec![0.0; emb.num_entities()];
        model.score_all_heads(&emb, 5, 2, &mut out);
        for h in 0..emb.num_entities() as u32 {
            let s = model.score_triple(&emb, Triple::new(h, 2, 5));
            assert!((out[h as usize] - s).abs() < 1e-5);
        }
    }

    #[test]
    fn distmult_scores_are_symmetric() {
        let (emb, _) = setup(8);
        let model = BlockModel::universal(zoo::distmult(4), 3);
        for (h, t) in [(0u32, 1u32), (2, 7), (4, 4)] {
            let fwd = model.score_triple(&emb, Triple::new(h, 0, t));
            let bwd = model.score_triple(&emb, Triple::new(t, 0, h));
            assert!((fwd - bwd).abs() < 1e-5);
        }
    }

    #[test]
    fn relation_aware_dispatch() {
        let (emb, _) = setup(8);
        let model =
            BlockModel::relation_aware(vec![zoo::distmult(4), zoo::simple()], vec![0, 1, 0]);
        let t = Triple::new(1, 1, 2);
        let s_aware = model.score_triple(&emb, t);
        let s_simple = BlockModel::universal(zoo::simple(), 3).score_triple(&emb, t);
        assert!((s_aware - s_simple).abs() < 1e-6);
        let t0 = Triple::new(1, 0, 2);
        let s0 = model.score_triple(&emb, t0);
        let s_dm = BlockModel::universal(zoo::distmult(4), 3).score_triple(&emb, t0);
        assert!((s0 - s_dm).abs() < 1e-6);
    }

    /// The load-bearing test: analytic gradients == finite differences.
    #[test]
    fn gradients_match_finite_differences() {
        let dim = 8;
        let (emb, mut rng) = setup(dim);
        let model = BlockModel::universal(zoo::complex(), 3);
        let t = Triple::new(1, 0, 2);

        // Loss as a pure function of embeddings (tail side, full softmax).
        let loss_of = |emb: &Embeddings| -> f32 {
            let mut q = vec![0.0; dim];
            model.tail_query(emb, t.head, t.rel, &mut q);
            let mut scores = vec![0.0; emb.num_entities()];
            emb.entity.matvec(&q, &mut scores);
            log_loss_and_residual(&mut scores, t.tail as usize)
        };

        // Analytic gradient via an SGD step with lr = 1: params_new =
        // params_old − grad, so grad = old − new.
        let mut emb_step = emb.clone();
        let mut opt_e = Sgd::new(1.0, 0.0);
        let mut opt_r = Sgd::new(1.0, 0.0);
        let mut scratch = BlockScratch::new();
        train_side(
            &model,
            false,
            &mut emb_step,
            &mut opt_e,
            &mut opt_r,
            t.head,
            t.rel,
            t.tail,
            LossMode::Full,
            None,
            &mut rng,
            &mut scratch,
        );
        let grad_entity: Vec<f32> = emb
            .entity
            .as_slice()
            .iter()
            .zip(emb_step.entity.as_slice())
            .map(|(o, n)| o - n)
            .collect();
        let grad_relation: Vec<f32> = emb
            .relation
            .as_slice()
            .iter()
            .zip(emb_step.relation.as_slice())
            .map(|(o, n)| o - n)
            .collect();

        let eps = 2e-3f32;
        // Check a sample of entity coordinates (rows 1, 2, 5) and all
        // relation-0 coordinates.
        for &(row, col) in &[(1usize, 0usize), (1, 5), (2, 3), (5, 7), (2, 0)] {
            let idx = row * dim + col;
            let mut plus = emb.clone();
            plus.entity.as_mut_slice()[idx] += eps;
            let mut minus = emb.clone();
            minus.entity.as_mut_slice()[idx] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad_entity[idx]).abs() < 2e-2,
                "entity[{row},{col}]: fd {fd} vs analytic {}",
                grad_entity[idx]
            );
        }
        for col in 0..dim {
            let mut plus = emb.clone();
            plus.relation.as_mut_slice()[col] += eps;
            let mut minus = emb.clone();
            minus.relation.as_mut_slice()[col] -= eps;
            let fd = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            assert!(
                (fd - grad_relation[col]).abs() < 2e-2,
                "relation[0,{col}]: fd {fd} vs analytic {}",
                grad_relation[col]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (mut emb, mut rng) = setup(8);
        let model = BlockModel::universal(zoo::complex(), 3);
        let data: Vec<Triple> = vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
            Triple::new(3, 1, 4),
            Triple::new(4, 2, 5),
        ];
        let before = evaluate_loss(&model, &emb, &data);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 1e-4);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 1e-4);
        let mut scratch = BlockScratch::new();
        for _ in 0..30 {
            train_minibatch(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                &data,
                LossMode::Full,
                None,
                &mut rng,
                &mut scratch,
            );
        }
        let after = evaluate_loss(&model, &emb, &data);
        assert!(after < before * 0.8, "loss {before} -> {after}");
    }

    #[test]
    fn sampled_mode_also_learns() {
        let (mut emb, mut rng) = setup(8);
        let model = BlockModel::universal(zoo::simple(), 3);
        let data: Vec<Triple> = (0..8u32).map(|i| Triple::new(i, 0, (i + 1) % 12)).collect();
        let before = evaluate_loss(&model, &emb, &data);
        let mut opt_e = Adagrad::new(emb.entity.as_slice().len(), 0.1, 0.0);
        let mut opt_r = Adagrad::new(emb.relation.as_slice().len(), 0.1, 0.0);
        let mut scratch = BlockScratch::new();
        for _ in 0..40 {
            train_minibatch(
                &model,
                &mut emb,
                &mut opt_e,
                &mut opt_r,
                &data,
                LossMode::Sampled { negatives: 6 },
                None,
                &mut rng,
                &mut scratch,
            );
        }
        let after = evaluate_loss(&model, &emb, &data);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    #[should_panic]
    fn dim_must_be_divisible_by_m() {
        let mut rng = Rng::seed_from_u64(0);
        let emb = Embeddings::init(4, 1, 6, &mut rng); // 6 % 4 != 0
        let model = BlockModel::universal(zoo::distmult(4), 1);
        let _ = model.score_triple(&emb, Triple::new(0, 0, 1));
    }

    #[test]
    #[should_panic]
    fn relation_aware_rejects_bad_assignment() {
        let _ = BlockModel::relation_aware(vec![zoo::distmult(4)], vec![0, 1]);
    }
}
