//! Worker-death and task-panic injection against a live thread pool.
//!
//! These tests live in their own integration-test binary because the
//! fault plane is process-global: installing it would leak injected
//! faults into unrelated unit tests running concurrently in the
//! library's test process. Within this binary, tests that install a
//! plane serialize on [`PLANE_LOCK`].
#![cfg(feature = "fault-hook")]

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use eras_linalg::faults::{self, FaultConfig, FaultPlane, Site};
use eras_linalg::pool::ThreadPool;

static PLANE_LOCK: Mutex<()> = Mutex::new(());

/// Killing every worker that claims a job must never deadlock the
/// dispatching caller: dead workers check in through their unwind
/// guard, and later dispatches size their barrier with the survivors.
#[test]
fn worker_death_does_not_deadlock_dispatch() {
    let _serial = PLANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(4);
    assert_eq!(pool.map(8, |i| i).len(), 8); // warm-up, no plane

    let mut observed_panics = 0;
    {
        let plane = FaultPlane::new(7, FaultConfig::none().with(Site::PoolWorker, 256));
        let _installed = faults::install(Arc::new(plane));
        // Rate 256/256: every worker that claims a job dies. Each
        // dispatch must still complete (the caller drains the cursor
        // itself) and surface the loss as a panic, not a hang.
        for _ in 0..3 {
            let done = AtomicUsize::new(0);
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(16, |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }));
            if r.is_err() {
                observed_panics += 1;
            }
            // Every task index ran exactly once even when workers died
            // before claiming any: the caller's drain finishes the job.
            assert_eq!(done.load(Ordering::Relaxed), 16);
        }
    }
    assert_eq!(pool.lost_workers(), 3, "all three workers were killed");
    assert!(
        observed_panics >= 1,
        "injected worker deaths must surface as dispatch panics"
    );
    // With the plane gone the pool still serves dispatches correctly
    // (inline on the caller, since no workers survive).
    let out = pool.map(100, |i| i * 3);
    assert_eq!(out[99], 297);
    assert_eq!(pool.map(5, |i| i), vec![0, 1, 2, 3, 4]);
}

/// A partial loss (some workers die, some survive) leaves a pool that
/// keeps distributing work across the survivors.
#[test]
fn pool_survives_partial_worker_loss() {
    let _serial = PLANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(8);
    assert_eq!(pool.map(8, |i| i).len(), 8);

    {
        // ~50% per-claim death rate: across a few dispatches some of
        // the seven workers die and some survive.
        let plane = FaultPlane::new(11, FaultConfig::none().with(Site::PoolWorker, 128));
        let _installed = faults::install(Arc::new(plane));
        for _ in 0..4 {
            let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(32, |_| {});
            }));
        }
    }
    let lost = pool.lost_workers();
    assert!(lost >= 1, "seed 11 at rate 128/256 kills at least one");
    assert!(lost <= 7, "cannot lose more workers than were spawned");
    // Post-fault sanity: results are complete and index-ordered.
    let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
    pool.run(hits.len(), |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

/// Task-level injection panics inside the per-task catch: the worker
/// survives, the dispatch reports the panic, nothing is lost.
#[test]
fn task_fault_injection_is_caught_per_task() {
    let _serial = PLANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ThreadPool::new(4);
    {
        let plane = FaultPlane::new(3, FaultConfig::none().with(Site::PoolTask, 64));
        let _installed = faults::install(Arc::new(plane));
        let mut panicked = 0;
        for _ in 0..8 {
            if panic::catch_unwind(AssertUnwindSafe(|| pool.run(64, |_| {}))).is_err() {
                panicked += 1;
            }
        }
        assert!(panicked >= 1, "rate 64/256 over 512 tasks must fire");
    }
    assert_eq!(
        pool.lost_workers(),
        0,
        "task faults are caught; no worker thread dies"
    );
    assert_eq!(pool.map(10, |i| i + 1)[9], 10);
}
