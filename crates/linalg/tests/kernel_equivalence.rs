//! Equivalence and pinning tests for the vectorized kernels.
//!
//! The vecops kernels come in two classes (see the module docs of
//! `eras_linalg::vecops`):
//!
//! - **Elementwise** kernels (`axpy`, `scaled_copy`, `hadamard`,
//!   `hadamard_axpy`, `scale`): lane chunking is a pure unroll, so the
//!   vectorized form must be **bit-identical** to the scalar reference
//!   for every input length.
//! - **Reduction** kernels (`dot`, `triple_dot`, `dist_sq`, `dist_l1`):
//!   the lane split reassociates the sum, so the result legitimately
//!   differs from the single-accumulator reference — by a bounded
//!   number of ulps, and *deterministically* for a given lane width.
//!   The exact bits for fixed inputs are pinned by golden tests so a
//!   lane-width or combine-tree change cannot slip through silently.
//!
//! The golden-bit tests are compiled out under the `scalar-kernels`
//! feature (the scalar path has its own exact-identity test); the
//! structural agreement tests (dot4 vs dot, scan vs matvec) hold for
//! both build variants.

use eras_linalg::scan::{scan_rows, BlockConsumer, Hit, RankTally, StreamTopK};
use eras_linalg::vecops::{self, reference};
use eras_linalg::{Matrix, Rng};

/// Deterministic test vectors with mixed signs and magnitudes.
fn wave(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.normal() * 2.0).collect()
}

/// Distance in ulps between two finite floats: both are mapped onto the
/// monotone integer line (negative floats mirrored below zero, -0.0
/// coinciding with +0.0) and the keys subtracted.
fn ulp_diff(a: f32, b: f32) -> u64 {
    fn key(x: f32) -> i64 {
        let i = x.to_bits() as i32 as i64;
        if i < 0 {
            (i32::MIN as i64) - i
        } else {
            i
        }
    }
    assert!(a.is_finite() && b.is_finite());
    (key(a) - key(b)).unsigned_abs()
}

/// Input lengths straddling every chunking boundary: empty, sub-lane,
/// exact lanes, lane + tail, several whole chunks.
fn lens() -> Vec<usize> {
    let mut v: Vec<usize> = (0..=67).collect();
    v.extend([128, 129, 513, 1000]);
    v
}

#[test]
fn elementwise_kernels_bit_identical_to_reference() {
    for n in lens() {
        let a = wave(n, 11);
        let b = wave(n, 22);
        let alpha = -0.37f32;

        let mut got = wave(n, 33);
        let mut want = got.clone();
        vecops::axpy(alpha, &a, &mut got);
        reference::axpy(alpha, &a, &mut want);
        assert_bits_eq(&got, &want, "axpy", n);

        let mut got = vec![9.0; n];
        let mut want = vec![9.0; n];
        vecops::scaled_copy(alpha, &a, &mut got);
        reference::scaled_copy(alpha, &a, &mut want);
        assert_bits_eq(&got, &want, "scaled_copy", n);

        let mut got = vec![0.0; n];
        let mut want = vec![0.0; n];
        vecops::hadamard(&a, &b, &mut got);
        reference::hadamard(&a, &b, &mut want);
        assert_bits_eq(&got, &want, "hadamard", n);

        let mut got = wave(n, 44);
        let mut want = got.clone();
        vecops::hadamard_axpy(alpha, &a, &b, &mut got);
        reference::hadamard_axpy(alpha, &a, &b, &mut want);
        assert_bits_eq(&got, &want, "hadamard_axpy", n);

        let mut got = a.clone();
        let mut want = a.clone();
        vecops::scale(alpha, &mut got);
        reference::scale(alpha, &mut want);
        assert_bits_eq(&got, &want, "scale", n);
    }
}

fn assert_bits_eq(got: &[f32], want: &[f32], kernel: &str, n: usize) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{kernel} diverged from reference at n={n} i={i}: {g} vs {w}"
        );
    }
}

/// Pinned per-lane-width ulp budgets for the reduction kernels against
/// the single-accumulator reference, measured over the `lens()` sweep
/// at `LANES = 8` and pinned with one doubling of headroom:
///
/// | kernel       | measured max | pinned |
/// |--------------|--------------|--------|
/// | `dot`        | 2176         | 4352   |
/// | `triple_dot` | 48           | 96     |
/// | `dist_sq`    | 7            | 14     |
/// | `dist_l1`    | 9            | 18     |
///
/// `dot` of zero-mean data cancels, so its result can be tiny relative
/// to the summands — ulps are measured against the *result*, which
/// inflates the count without the absolute error growing (the absolute
/// error stays ~n·eps·Σ|aᵢbᵢ| for both summation orders). `dist_sq` /
/// `dist_l1` accumulate non-negative terms, so no cancellation and a
/// single-digit budget. A lane-width or combine-tree change must
/// re-measure these (see [`harvest_golden_bits`]), not merely raise
/// them.
const REDUCTION_ULPS: [(&str, u64); 4] = [
    ("dot", 4352),
    ("triple_dot", 96),
    ("dist_sq", 14),
    ("dist_l1", 18),
];

#[test]
fn reduction_kernels_within_pinned_ulp_bound() {
    for n in lens() {
        let a = wave(n, 55);
        let b = wave(n, 66);
        let c = wave(n, 77);
        let cases = [
            ("dot", vecops::dot(&a, &b), reference::dot(&a, &b)),
            (
                "triple_dot",
                vecops::triple_dot(&a, &b, &c),
                reference::triple_dot(&a, &b, &c),
            ),
            (
                "dist_sq",
                vecops::dist_sq(&a, &b),
                reference::dist_sq(&a, &b),
            ),
            (
                "dist_l1",
                vecops::dist_l1(&a, &b),
                reference::dist_l1(&a, &b),
            ),
        ];
        for (kernel, got, want) in cases {
            let bound = REDUCTION_ULPS
                .iter()
                .find(|(k, _)| *k == kernel)
                .map(|(_, b)| *b)
                .unwrap();
            let d = ulp_diff(got, want);
            assert!(
                d <= bound,
                "{kernel} at n={n}: {got} vs reference {want} = {d} ulps (budget {bound})"
            );
        }
    }
}

/// Harvest helper (ignored): prints the golden bits below. Re-run with
/// `cargo test -p eras-linalg --test kernel_equivalence harvest -- \
/// --ignored --nocapture` after any deliberate numeric change.
#[test]
#[ignore]
#[cfg(not(feature = "scalar-kernels"))]
fn harvest_golden_bits() {
    for n in [37usize, 64] {
        let a = wave(n, 1);
        let b = wave(n, 2);
        let c = wave(n, 3);
        println!("n={n}");
        println!("  dot        0x{:08X}", vecops::dot(&a, &b).to_bits());
        println!(
            "  triple_dot 0x{:08X}",
            vecops::triple_dot(&a, &b, &c).to_bits()
        );
        println!("  dist_sq    0x{:08X}", vecops::dist_sq(&a, &b).to_bits());
        println!("  dist_l1    0x{:08X}", vecops::dist_l1(&a, &b).to_bits());
    }
    let mut max = [0u64; 4];
    for n in lens() {
        let a = wave(n, 55);
        let b = wave(n, 66);
        let c = wave(n, 77);
        max[0] = max[0].max(ulp_diff(vecops::dot(&a, &b), reference::dot(&a, &b)));
        max[1] = max[1].max(ulp_diff(
            vecops::triple_dot(&a, &b, &c),
            reference::triple_dot(&a, &b, &c),
        ));
        max[2] = max[2].max(ulp_diff(
            vecops::dist_sq(&a, &b),
            reference::dist_sq(&a, &b),
        ));
        max[3] = max[3].max(ulp_diff(
            vecops::dist_l1(&a, &b),
            reference::dist_l1(&a, &b),
        ));
    }
    println!(
        "max ulps: dot={} triple_dot={} dist_sq={} dist_l1={}",
        max[0], max[1], max[2], max[3]
    );
}

/// Golden bits for the laned reductions at `LANES = 8`. A change to the
/// lane width or the lane-combine tree is a *numeric* change: it must
/// re-harvest these constants (see [`harvest_golden_bits`]) and say so
/// in the changelog, not adjust tolerances.
#[test]
#[cfg(not(feature = "scalar-kernels"))]
fn golden_bits_pinned_for_lane_width_8() {
    assert_eq!(vecops::LANES, 8, "golden bits below are for LANES = 8");
    // n = 37: five whole lanes plus a 5-element scalar tail.
    let (a, b, c) = (wave(37, 1), wave(37, 2), wave(37, 3));
    assert_eq!(vecops::dot(&a, &b).to_bits(), 0xC0E6_6C3C);
    assert_eq!(vecops::triple_dot(&a, &b, &c).to_bits(), 0xC208_86E1);
    assert_eq!(vecops::dist_sq(&a, &b).to_bits(), 0x4394_C0ED);
    assert_eq!(vecops::dist_l1(&a, &b).to_bits(), 0x42AB_1752);
    // n = 64: eight whole lanes, no tail.
    let (a, b, c) = (wave(64, 1), wave(64, 2), wave(64, 3));
    assert_eq!(vecops::dot(&a, &b).to_bits(), 0xC1A7_7BE5);
    assert_eq!(vecops::triple_dot(&a, &b, &c).to_bits(), 0xC238_4F26);
    assert_eq!(vecops::dist_sq(&a, &b).to_bits(), 0x440A_D8A5);
    assert_eq!(vecops::dist_l1(&a, &b).to_bits(), 0x4317_7FE4);
}

/// Under `scalar-kernels` every public kernel *is* the reference — the
/// reductions must agree exactly, not just within ulps.
#[test]
#[cfg(feature = "scalar-kernels")]
fn scalar_feature_is_exactly_the_reference() {
    for n in lens() {
        let a = wave(n, 55);
        let b = wave(n, 66);
        let c = wave(n, 77);
        assert_eq!(
            vecops::dot(&a, &b).to_bits(),
            reference::dot(&a, &b).to_bits()
        );
        assert_eq!(
            vecops::triple_dot(&a, &b, &c).to_bits(),
            reference::triple_dot(&a, &b, &c).to_bits()
        );
        assert_eq!(
            vecops::dist_sq(&a, &b).to_bits(),
            reference::dist_sq(&a, &b).to_bits()
        );
        assert_eq!(
            vecops::dist_l1(&a, &b).to_bits(),
            reference::dist_l1(&a, &b).to_bits()
        );
    }
}

/// `dot4(x, y0..y3)[i]` must be bit-identical to `dot(x, yi)` in *both*
/// build variants — the invariant the fused scan (and through it the
/// serve/eval agreement tests) leans on.
#[test]
fn dot4_bitwise_consistent_with_dot() {
    for n in lens() {
        let x = wave(n, 5);
        let ys: Vec<Vec<f32>> = (0..4).map(|j| wave(n, 100 + j)).collect();
        let fused = vecops::dot4(&x, &ys[0], &ys[1], &ys[2], &ys[3]);
        for (j, y) in ys.iter().enumerate() {
            assert_eq!(
                fused[j].to_bits(),
                vecops::dot(&x, y).to_bits(),
                "n={n} j={j}"
            );
        }
    }
}

/// Collects every score — the materializing reference consumer.
struct Collect(Vec<f32>);

impl BlockConsumer for Collect {
    fn consume(&mut self, base: u32, scores: &[f32]) {
        assert_eq!(base as usize, self.0.len());
        self.0.extend_from_slice(scores);
    }
}

/// The fused scan must reproduce `Matrix::matvec` down to the bit for
/// shapes straddling the cache-block and register-tile boundaries.
#[test]
fn scan_rows_agrees_with_matvec_bitwise() {
    let mut rng = Rng::seed_from_u64(123);
    for (rows, nq) in [(255usize, 4usize), (256, 7), (1000, 6)] {
        let dim = 24;
        let table = Matrix::uniform_init(rows, dim, 1.0, &mut rng);
        let qvecs: Vec<f32> = (0..nq * dim).map(|_| rng.normal()).collect();
        let mut sinks: Vec<Collect> = (0..nq).map(|_| Collect(Vec::new())).collect();
        scan_rows(&table, &qvecs, &mut sinks);
        let mut want = vec![0.0f32; rows];
        for (qi, sink) in sinks.iter().enumerate() {
            table.matvec(&qvecs[qi * dim..(qi + 1) * dim], &mut want);
            for (e, (&g, &w)) in sink.0.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "rows={rows} nq={nq} q={qi} e={e}");
            }
        }
    }
}

/// Streaming consumers vs a dense reference over the same scan: top-k
/// against sort-and-truncate, rank tally against a counted rank.
#[test]
fn streaming_consumers_agree_with_dense_reference() {
    let mut rng = Rng::seed_from_u64(321);
    let (rows, dim) = (700usize, 16usize);
    let table = Matrix::uniform_init(rows, dim, 1.0, &mut rng);
    let q: Vec<f32> = (0..dim).map(|_| rng.normal()).collect();
    let mut dense = vec![0.0f32; rows];
    table.matvec(&q, &mut dense);
    let filt: Vec<u32> = vec![0, 17, 350, 699];

    // Top-k: fused StreamTopK vs sort of the dense score vector.
    for k in [1usize, 10, 699] {
        let mut sink = vec![StreamTopK::new(k, &filt)];
        scan_rows(&table, &q, &mut sink);
        let got = sink.pop().unwrap().into_sorted();
        let mut want: Vec<Hit> = dense
            .iter()
            .enumerate()
            .filter(|(i, _)| filt.binary_search(&(*i as u32)).is_err())
            .map(|(i, &s)| Hit {
                id: i as u32,
                score: s,
            })
            .collect();
        want.sort_by(|a, b| b.cmp(a));
        want.truncate(k);
        assert_eq!(got.len(), want.len(), "k={k}");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                (g.id, g.score.to_bits()),
                (w.id, w.score.to_bits()),
                "k={k}"
            );
        }
    }

    // Rank tally: fused RankTally vs counting over the dense vector.
    for target in [0u32, 17, 123, 698] {
        let ts = dense[target as usize];
        let mut sink = vec![RankTally::new(target, ts, &filt)];
        scan_rows(&table, &q, &mut sink);
        let got = sink.pop().unwrap().rank();
        let mut better = 0u64;
        let mut ties = 0u64;
        for (i, &s) in dense.iter().enumerate() {
            if i as u32 == target || filt.binary_search(&(i as u32)).is_ok() {
                continue;
            }
            if s > ts {
                better += 1;
            } else if s == ts {
                ties += 1;
            }
        }
        let want = 1.0 + better as f64 + ties as f64 / 2.0;
        assert_eq!(got, want, "target={target}");
    }
}
