//! # eras-linalg
//!
//! Minimal dense linear-algebra substrate for the ERAS reproduction.
//!
//! The paper's implementation sits on PyTorch + CUDA; every model in scope
//! (block bilinear scoring functions, translational models, TuckER, a small
//! LSTM controller) is a shallow (multi)linear form whose gradients are
//! closed-form, so this crate provides exactly what those need and nothing
//! more:
//!
//! - [`Matrix`]: row-major `f32` matrix with the handful of kernels the
//!   training loops are hot on (`matvec`, `matvec_transpose`, rank-1 row
//!   updates).
//! - [`vecops`]: fused vector kernels (dot, axpy, Hadamard, triple-dot),
//!   hand-vectorized as explicit [`vecops::LANES`]-wide chunks with a
//!   scalar `reference` fallback (the `scalar-kernels` feature).
//! - [`scan`]: the fused, cache-blocked entity-table score→consumer
//!   kernel shared by the serving engine's batched top-k and the
//!   offline filtered evaluator.
//! - [`rng`]: a self-contained, reproducible xoshiro256++ RNG so every
//!   experiment in the repo is deterministic given a seed.
//! - [`optim`]: SGD / Adagrad / Adam with *sparse row* update support —
//!   embedding training touches only the rows in a minibatch.
//! - [`softmax`]: numerically stable softmax / log-softmax / cross-entropy.
//! - [`stats`]: mean/std, Pearson & Spearman correlation (Figure 5 of the
//!   paper), online moving average (REINFORCE baseline).
//! - [`pca`]: power-iteration PCA for 2-D inspection of relation
//!   embeddings (the Figures 3/4 case study).
//! - [`pool`]: the shared chunked thread pool every parallel code path
//!   in the workspace dispatches through (`ERAS_THREADS` sizing).
//! - [`sync`]: the synchronisation shim the pool and the lock-free
//!   caches are built on — forwards to `std::sync` in production and
//!   yields to the `eras audit --pass sched` model checker under the
//!   `sched-hook` feature.
//! - [`faults`]: the deterministic fault-injection plane the
//!   `eras audit --pass chaos` harness drives — every injection site
//!   compiles to nothing without the `fault-hook` feature.

// Indexed loops are the clearer idiom in the numeric kernels below
// (parallel arrays, strided block views); the iterator forms clippy
// suggests would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod cmp;
pub mod faults;
pub mod matrix;
pub mod optim;
pub mod pca;
pub mod pool;
pub mod rng;
pub mod scan;
pub mod softmax;
pub mod stats;
pub mod sync;
pub mod vecops;

pub use matrix::Matrix;
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use pool::{PoolStats, ThreadPool};
pub use rng::Rng;
