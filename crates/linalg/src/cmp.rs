//! NaN-aware total orderings for ranking floating-point scores.
//!
//! A diverged training run can hand the searchers a NaN validation MRR;
//! `partial_cmp(..).expect(..)` turns that into a mid-search panic. These
//! helpers give every sort/argmax in the workspace a total order with an
//! explicit NaN policy instead:
//!
//! - the `*_desc` / `*_asc` orders place NaN **last**, so a NaN score can
//!   never outrank a real one in a sorted ranking;
//! - [`nan_lowest_f64`] / [`nan_lowest_f32`] treat NaN as smaller than
//!   every number (including `-inf`), which makes `max_by` NaN-proof: a
//!   NaN candidate never wins an argmax.
//!
//! Built on `total_cmp`, so all of these are consistent total orders
//! (safe for `sort_by` / `binary_search_by`).

use std::cmp::Ordering;

macro_rules! nan_orders {
    ($desc:ident, $asc:ident, $lowest:ident, $t:ty) => {
        /// Descending order with NaN sorted last.
        #[inline]
        pub fn $desc(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater, // a (NaN) after b
                (false, true) => Ordering::Less,
                (false, false) => b.total_cmp(&a),
            }
        }

        /// Ascending order with NaN sorted last.
        #[inline]
        pub fn $asc(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => a.total_cmp(&b),
            }
        }

        /// Total order treating NaN as below every number — use with
        /// `max_by` so a NaN candidate never wins, and with `min_by` so a
        /// NaN is only picked when everything is NaN.
        #[inline]
        pub fn $lowest(a: $t, b: $t) -> Ordering {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => a.total_cmp(&b),
            }
        }
    };
}

nan_orders!(nan_last_desc_f64, nan_last_asc_f64, nan_lowest_f64, f64);
nan_orders!(nan_last_desc_f32, nan_last_asc_f32, nan_lowest_f32, f32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_sorts_nan_last() {
        let mut v = [0.3f64, f64::NAN, 0.9, f64::NEG_INFINITY, 0.5];
        v.sort_by(|a, b| nan_last_desc_f64(*a, *b));
        assert_eq!(v[0], 0.9);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[2], 0.3);
        assert_eq!(v[3], f64::NEG_INFINITY);
        assert!(v[4].is_nan());
    }

    #[test]
    fn asc_sorts_nan_last() {
        let mut v = [f32::NAN, 2.0f32, -1.0, f32::NAN, 0.0];
        v.sort_by(|a, b| nan_last_asc_f32(*a, *b));
        assert_eq!(&v[..3], &[-1.0, 0.0, 2.0]);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn max_by_never_picks_nan() {
        let v = [f64::NAN, 0.2, f64::NAN, 0.7, 0.1];
        let best = v
            .iter()
            .copied()
            .max_by(|a, b| nan_lowest_f64(*a, *b))
            .unwrap();
        assert_eq!(best, 0.7);
        // min_by picks the smallest real number, not NaN.
        let worst = v
            .iter()
            .copied()
            .min_by(|a, b| nan_lowest_f64(*a, *b))
            .unwrap();
        assert!(worst.is_nan(), "NaN is below every number in this order");
    }

    #[test]
    fn all_orders_are_total_on_mixed_input() {
        // sort_by panics on inconsistent comparators in debug builds;
        // surviving a sort of adversarial input is the contract.
        let base = [
            f32::NAN,
            -f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            1.0,
        ];
        let mut a = base;
        a.sort_by(|x, y| nan_last_desc_f32(*x, *y));
        let mut b = base;
        b.sort_by(|x, y| nan_last_asc_f32(*x, *y));
        let mut c = base;
        c.sort_by(|x, y| nan_lowest_f32(*x, *y));
        assert!(c[0].is_nan());
        assert_eq!(a[0], f32::INFINITY);
        assert_eq!(b[0], f32::NEG_INFINITY);
    }
}
