//! Self-contained reproducible pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (dataset generation,
//! embedding initialisation, minibatch shuffling, controller sampling,
//! REINFORCE) draws from this RNG, so an experiment is fully determined by
//! its seed. The generator is xoshiro256++ seeded through SplitMix64 — the
//! standard construction recommended by the xoshiro authors, implemented
//! here to keep the workspace free of version-dependent stream changes in
//! external crates.

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
///
/// Not cryptographically secure; period 2^256 − 1, passes BigCrush. Small
/// (32 bytes), `Clone`-able so parallel workers can fork deterministic
/// sub-streams via [`Rng::fork`].
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The raw generator state, for checkpointing. Restoring it with
    /// [`Rng::from_state`] continues the exact output stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Rng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// Derive an independent child generator. The child stream is a
    /// deterministic function of the parent state and `stream`, and the
    /// parent is advanced once so successive forks differ.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from_u64(base ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "next_below bound must be > 0");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: only entered when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-300 {
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
            }
        }
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample an index from an (unnormalised, non-negative) weight vector.
    ///
    /// Falls back to uniform sampling when all weights are zero or
    /// non-finite mass is encountered.
    pub fn categorical(&mut self, weights: &[f32]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().map(|&w| f64::from(w.max(0.0))).sum();
        // NaN-safe: treat non-finite or non-positive mass as "no signal".
        if total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || !total.is_finite() {
            return self.next_below(weights.len());
        }
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= f64::from(w.max(0.0));
            if u <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        if k * 4 >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx
        } else {
            // Sparse case: rejection into a small set.
            let mut chosen = Vec::with_capacity(k);
            while chosen.len() < k {
                let c = self.next_below(n);
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            chosen
        }
    }

    /// Zipf-distributed sample over `[0, n)` with exponent `s`, via inverse
    /// CDF on precomputed weights. For repeated sampling prefer
    /// [`ZipfSampler`].
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        ZipfSampler::new(n, s).sample(self)
    }
}

/// Precomputed Zipf(s) sampler over `[0, n)` using binary search on the CDF.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the CDF for `Zipf(s)` over ranks `1..=n` (returned indices are
    /// zero-based).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs n > 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(7);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(0);
        // Children forked successively must differ (parent advanced).
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = f64::from(rng.normal());
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Rng::seed_from_u64(13);
        let w = [1.0f32, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.categorical(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn categorical_all_zero_falls_back_to_uniform() {
        let mut rng = Rng::seed_from_u64(17);
        let w = [0.0f32; 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.categorical(&w)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(19);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Rng::seed_from_u64(23);
        for (n, k) in [(10, 10), (100, 3), (5, 0), (1, 1)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = Rng::seed_from_u64(29);
        let sampler = ZipfSampler::new(100, 1.0);
        let mut head = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            if sampler.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Zipf(1.0) over 100 ranks puts ~56% of mass on the first 10.
        let frac = head as f64 / trials as f64;
        assert!((0.5..0.65).contains(&frac), "head mass {frac}");
    }
}
