//! Small statistics toolbox.
//!
//! Used by the benchmark harness (Figure 5 reports the Pearson/Spearman
//! correlation between one-shot and stand-alone validation MRR) and by the
//! REINFORCE baseline (an exponential moving average of the reward).

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient. Returns 0 when either input is
/// constant (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| crate::cmp::nan_last_asc_f64(xs[a], xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ties i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on fractional ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Exponential moving average, the REINFORCE variance-reduction baseline
/// `b` of Eq. (7).
#[derive(Debug, Clone)]
pub struct MovingAverage {
    decay: f64,
    value: Option<f64>,
}

impl MovingAverage {
    /// `decay` is the weight on the previous value (e.g. 0.95).
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay));
        MovingAverage { decay, value: None }
    }

    /// Fold in one observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.decay * prev + (1.0 - self.decay) * x,
        };
        self.value = Some(v);
        v
    }

    /// Current average (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let r = ranks(&x);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn moving_average_tracks_constant() {
        let mut ma = MovingAverage::new(0.9);
        assert_eq!(ma.value(), 0.0);
        for _ in 0..200 {
            ma.update(5.0);
        }
        assert!((ma.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn moving_average_first_observation_initialises() {
        let mut ma = MovingAverage::new(0.99);
        ma.update(10.0);
        assert_eq!(ma.value(), 10.0);
    }
}
