//! First-order optimizers with sparse-row support.
//!
//! The paper optimises embeddings with Adagrad and the controller with Adam
//! (Section V-A2). Embedding gradients are *row-sparse* — a minibatch
//! touches only the entity/relation rows it contains — so every optimizer
//! here exposes [`Optimizer::step_at`], which updates a contiguous slice of
//! the parameter buffer at a given offset, keeping per-parameter state
//! aligned with the full buffer.

/// Common interface: stateful update of `params[offset .. offset+grad.len()]`
/// given the gradient of that slice.
pub trait Optimizer {
    /// Apply one update to a slice of the parameter buffer. The optimizer's
    /// internal state buffer must have been sized for the full parameter
    /// buffer (`state_len`).
    fn step_at(&mut self, params: &mut [f32], offset: usize, grad: &[f32]);

    /// Dense step over the whole buffer.
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), grad.len());
        self.step_at(params, 0, grad);
    }

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    l2: f32,
}

impl Sgd {
    /// Create with learning rate `lr` and decoupled L2 penalty `l2`.
    pub fn new(lr: f32, l2: f32) -> Self {
        Sgd { lr, l2 }
    }
}

impl Optimizer for Sgd {
    fn step_at(&mut self, params: &mut [f32], offset: usize, grad: &[f32]) {
        let p = &mut params[offset..offset + grad.len()];
        for (pi, gi) in p.iter_mut().zip(grad) {
            *pi -= self.lr * (gi + self.l2 * *pi);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad (Duchi et al., 2011) — the paper's embedding optimizer.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    l2: f32,
    eps: f32,
    accum: Vec<f32>,
}

impl Adagrad {
    /// Create for a parameter buffer of `state_len` values.
    pub fn new(state_len: usize, lr: f32, l2: f32) -> Self {
        Adagrad {
            lr,
            l2,
            eps: 1e-10,
            accum: vec![0.0; state_len],
        }
    }

    /// The per-parameter squared-gradient accumulator, for
    /// checkpointing.
    pub fn accumulator(&self) -> &[f32] {
        &self.accum
    }

    /// Rebuild an optimizer from a checkpointed accumulator. Together
    /// with the learning rate this is the optimizer's entire state, so
    /// a restored Adagrad continues bit-identically.
    pub fn from_accumulator(lr: f32, l2: f32, accum: Vec<f32>) -> Self {
        Adagrad {
            lr,
            l2,
            eps: 1e-10,
            accum,
        }
    }
}

impl Optimizer for Adagrad {
    fn step_at(&mut self, params: &mut [f32], offset: usize, grad: &[f32]) {
        assert!(
            offset + grad.len() <= self.accum.len(),
            "optimizer state too small"
        );
        let p = &mut params[offset..offset + grad.len()];
        let a = &mut self.accum[offset..offset + grad.len()];
        for i in 0..grad.len() {
            let g = grad[i] + self.l2 * p[i];
            a[i] += g * g;
            p[i] -= self.lr * g / (a[i].sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014) — the paper's controller optimizer.
///
/// Bias correction uses a *per-slot* step count so sparse updates stay
/// correctly corrected: a row updated for the first time at epoch 100 is
/// treated as being at its own step 1.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    l2: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: Vec<u32>,
}

impl Adam {
    /// Create for a parameter buffer of `state_len` values with default
    /// betas (0.9, 0.999).
    pub fn new(state_len: usize, lr: f32, l2: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            l2,
            m: vec![0.0; state_len],
            v: vec![0.0; state_len],
            t: vec![0; state_len],
        }
    }
}

impl Optimizer for Adam {
    fn step_at(&mut self, params: &mut [f32], offset: usize, grad: &[f32]) {
        assert!(
            offset + grad.len() <= self.m.len(),
            "optimizer state too small"
        );
        let p = &mut params[offset..offset + grad.len()];
        for i in 0..grad.len() {
            let gi = grad[i] + self.l2 * p[i];
            let j = offset + i;
            self.t[j] += 1;
            let t = self.t[j] as f32;
            self.m[j] = self.beta1 * self.m[j] + (1.0 - self.beta1) * gi;
            self.v[j] = self.beta2 * self.v[j] + (1.0 - self.beta2) * gi * gi;
            let m_hat = self.m[j] / (1.0 - self.beta1.powf(t));
            let v_hat = self.v[j] / (1.0 - self.beta2.powf(t));
            p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All three optimizers must drive a convex quadratic to its minimum.
    fn converges<O: Optimizer>(mut opt: O, tol: f32) -> f32 {
        // f(x) = 0.5 * Σ (x_i - target_i)^2
        let target = [3.0f32, -2.0, 0.5, 1.5];
        let mut x = [0.0f32; 4];
        for _ in 0..2000 {
            let grad: Vec<f32> = x.iter().zip(&target).map(|(xi, ti)| xi - ti).collect();
            opt.step(&mut x, &grad);
        }
        let err: f32 = x
            .iter()
            .zip(&target)
            .map(|(xi, ti)| (xi - ti).abs())
            .fold(0.0, f32::max);
        assert!(err < tol, "max err {err}");
        err
    }

    #[test]
    fn sgd_converges() {
        converges(Sgd::new(0.1, 0.0), 1e-3);
    }

    #[test]
    fn adagrad_converges() {
        converges(Adagrad::new(4, 0.5, 0.0), 1e-2);
    }

    #[test]
    fn adam_converges() {
        converges(Adam::new(4, 0.05, 0.0), 1e-2);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut opt = Sgd::new(0.1, 0.5);
        let mut x = [1.0f32];
        for _ in 0..100 {
            opt.step(&mut x, &[0.0]); // zero gradient: only decay acts
        }
        assert!(x[0].abs() < 0.01, "weight decay failed: {}", x[0]);
    }

    #[test]
    fn sparse_updates_do_not_touch_other_slots() {
        let mut opt = Adagrad::new(6, 0.1, 0.0);
        let mut params = vec![1.0f32; 6];
        opt.step_at(&mut params, 2, &[1.0, 1.0]);
        assert_eq!(params[0], 1.0);
        assert_eq!(params[1], 1.0);
        assert!(params[2] < 1.0);
        assert!(params[3] < 1.0);
        assert_eq!(params[4], 1.0);
        assert_eq!(params[5], 1.0);
    }

    #[test]
    fn adam_sparse_bias_correction_is_per_slot() {
        let mut opt = Adam::new(2, 0.1, 0.0);
        let mut params = vec![0.0f32; 2];
        // Update slot 0 many times.
        for _ in 0..50 {
            opt.step_at(&mut params, 0, &[1.0]);
        }
        let p0_after_50 = params[0];
        // First update of slot 1 should have the same magnitude as slot 0's
        // first update did (fresh bias correction), i.e. ≈ lr.
        opt.step_at(&mut params, 1, &[1.0]);
        assert!(
            (params[1] + 0.1).abs() < 1e-3,
            "first Adam step ≈ -lr, got {}",
            params[1]
        );
        assert!(p0_after_50 < params[1]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adagrad::new(1, 0.3, 0.0);
        assert_eq!(o.learning_rate(), 0.3);
        o.set_learning_rate(0.1);
        assert_eq!(o.learning_rate(), 0.1);
    }
}
