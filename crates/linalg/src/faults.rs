//! Deterministic fault-injection plane — the seeded chaos substrate
//! under `eras audit --pass chaos`.
//!
//! Production code paths that can fail in the real world (file I/O in
//! `eras-train`'s snapshot/checkpoint layer, worker threads in the
//! shared pool, connection handling in `eras-serve`) each carry a named
//! injection [`Site`]. At every site the code asks [`check`] whether a
//! fault should fire *now*; the answer is a pure function of the
//! installed [`FaultPlane`]'s seed and the site's hit counter, so one
//! seed always produces one fault schedule — a failing chaos run is a
//! recipe, not a coin flip.
//!
//! ## Plane contract (mirrors `eras_linalg::sync`)
//!
//! - **Production builds are zero-cost.** Without the `fault-hook`
//!   cargo feature, [`check`] is a `const None` that inlines away; the
//!   fault plane cannot exist and binaries are bit-identical to a tree
//!   without any injection sites.
//! - **Hooked builds without a plane are inert.** With the feature on
//!   but no plane installed (every production thread, and every test
//!   that did not opt in), [`check`] is one relaxed atomic load.
//! - **Installed planes are deterministic.** A plane decides site `s`'s
//!   `n`-th hit by hashing `(seed, s, n)`; the decision does not depend
//!   on wall clock, thread identity, or scheduling. Concurrent hits on
//!   one site race only for *which* hit index each caller draws, so
//!   chaos scenarios that require a bit-reproducible verdict drive the
//!   faulted path from one thread at a time.
//!
//! The plane is process-global (faults must reach pool workers and
//! serve connection threads that never see the installer), so at most
//! one chaos scenario may run per process at a time — the chaos
//! harness serialises itself with an internal run lock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where a fault can be injected. Each variant is one named point in
/// production code; the discriminant indexes the plane's per-site
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// A body read in the snapshot/checkpoint decoder
    /// (`eras_train::io::FormatReader::fill`): the read errors out or
    /// comes back short.
    IoRead = 0,
    /// A write/sync step inside the atomic save path
    /// (`eras_train::io::atomic_write`): the write errors out.
    IoWrite = 1,
    /// The atomicity of the save path itself: the temp file is torn to
    /// a prefix and renamed anyway, simulating a filesystem whose
    /// rename is not atomic (or a crash mid-rename).
    TornWrite = 2,
    /// Opening a snapshot/checkpoint file for reading: a transient
    /// `IoError::Io` (the retry-with-backoff target).
    SnapshotOpen = 3,
    /// One pool task body (`eras_linalg::pool`): panics inside the
    /// pool's per-task `catch_unwind`, exercising the panic-flag path.
    PoolTask = 4,
    /// A pool worker thread between claiming a job and draining it:
    /// panics *outside* the per-task catch, killing the worker thread
    /// outright.
    PoolWorker = 5,
    /// One serve connection, before the request is read: injected
    /// latency.
    ServeLatency = 6,
    /// One serve connection: dropped without a response (the client
    /// must observe a clean close, never a torn response).
    ServeDrop = 7,
}

/// Number of [`Site`] variants (the plane's counter-array width).
pub const NUM_SITES: usize = 8;

impl Site {
    /// All sites, in discriminant order.
    pub const ALL: [Site; NUM_SITES] = [
        Site::IoRead,
        Site::IoWrite,
        Site::TornWrite,
        Site::SnapshotOpen,
        Site::PoolTask,
        Site::PoolWorker,
        Site::ServeLatency,
        Site::ServeDrop,
    ];

    /// Stable lowercase name (used in chaos reports).
    pub fn name(self) -> &'static str {
        match self {
            Site::IoRead => "io-read",
            Site::IoWrite => "io-write",
            Site::TornWrite => "torn-write",
            Site::SnapshotOpen => "snapshot-open",
            Site::PoolTask => "pool-task",
            Site::PoolWorker => "pool-worker",
            Site::ServeLatency => "serve-latency",
            Site::ServeDrop => "serve-drop",
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injection site should do, when its check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail with an injected `std::io::Error` (I/O sites).
    Error,
    /// Deliver fewer bytes than requested (read sites); the decoder
    /// must surface a clean format/truncation error.
    ShortRead,
    /// Keep only `keep_num / 256` of the written bytes and publish the
    /// torn file anyway (torn-write site).
    Truncate {
        /// Numerator of the kept fraction, over 256.
        keep_num: u8,
    },
    /// Panic at the site (pool sites).
    Panic,
    /// Sleep for this many milliseconds before proceeding (serve).
    Delay {
        /// Injected latency in milliseconds.
        millis: u16,
    },
    /// Close the connection without responding (serve).
    Drop,
}

/// Per-site injection probability, as a numerator over 256 hits
/// (0 = site disabled, 256 = every hit faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Rates indexed by `Site` discriminant, each in `0..=256`.
    pub rate_num: [u16; NUM_SITES],
}

impl FaultConfig {
    /// A config with every site disabled.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Set one site's rate (numerator over 256), builder-style.
    // audit:allow(E701): Site as usize indexes the NUM_SITES-wide
    // rate_num array; the enum discriminant cannot exceed it
    pub fn with(mut self, site: Site, rate_num: u16) -> FaultConfig {
        self.rate_num[site as usize] = rate_num.min(256);
        self
    }
}

/// Per-site hit/injection counters, snapshot form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Times each site's check was consulted.
    pub hits: [u64; NUM_SITES],
    /// Times each site's check answered with a fault.
    pub injected: [u64; NUM_SITES],
}

impl FaultCounts {
    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total site checks consulted across all sites.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }
}

/// SplitMix64-style finaliser: decorrelates `(seed, site, hit)` into
/// an unbiased 64-bit draw.
#[inline]
fn mix(seed: u64, site: u64, hit: u64) -> u64 {
    let mut z = seed
        .wrapping_add(site.wrapping_mul(0xA0761D6478BD642F))
        .wrapping_add(hit.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A seeded fault schedule. The `n`-th hit on site `s` faults iff
/// `mix(seed, s, n) mod 256 < rate_num[s]`, and the fault's shape
/// (short vs. error, torn fraction, delay length) is carved from the
/// same hash — fully reproducible from `(seed, config)`.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    config: FaultConfig,
    hits: [AtomicU64; NUM_SITES],
    injected: [AtomicU64; NUM_SITES],
}

impl FaultPlane {
    /// A new plane with the given seed and per-site rates.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlane {
        FaultPlane {
            seed,
            config,
            hits: Default::default(),
            injected: Default::default(),
        }
    }

    /// The plane's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the current hit on `site`. Advances the site's hit
    /// counter; deterministic in the hit index.
    // audit:allow(E701): Site as usize indexes per-variant arrays sized
    // NUM_SITES; the enum discriminant cannot exceed the array
    pub fn decide(&self, site: Site) -> Option<Fault> {
        let i = site as usize;
        let n = self.hits[i].fetch_add(1, Ordering::Relaxed);
        let rate = self.config.rate_num[i];
        if rate == 0 {
            return None;
        }
        let h = mix(self.seed, i as u64, n);
        if (h & 0xFF) as u16 >= rate {
            return None;
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        // Shape bits, independent of the fire/no-fire byte.
        let shape = h >> 8;
        Some(match site {
            Site::IoRead => {
                if shape & 1 == 0 {
                    Fault::Error
                } else {
                    Fault::ShortRead
                }
            }
            Site::IoWrite | Site::SnapshotOpen => Fault::Error,
            Site::TornWrite => Fault::Truncate {
                keep_num: (shape & 0xFF) as u8,
            },
            Site::PoolTask | Site::PoolWorker => Fault::Panic,
            Site::ServeLatency => Fault::Delay {
                millis: (shape % 20) as u16,
            },
            Site::ServeDrop => Fault::Drop,
        })
    }

    /// Snapshot of the per-site counters.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for i in 0..NUM_SITES {
            c.hits[i] = self.hits[i].load(Ordering::Relaxed);
            c.injected[i] = self.injected[i].load(Ordering::Relaxed);
        }
        c
    }
}

/// An injected I/O error, recognisable in messages; `ErrorKind::Other`
/// so it never collides with a kind production code special-cases.
pub fn injected_io_error(site: Site) -> std::io::Error {
    std::io::Error::other(format!("injected fault at site {site}"))
}

#[cfg(feature = "fault-hook")]
mod enabled {
    use super::FaultPlane;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Fast-path flag: checked before touching the mutex, so a hooked
    /// build with no plane installed pays one relaxed load per site.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PLANE: Mutex<Option<Arc<FaultPlane>>> = Mutex::new(None);

    /// Install a process-global plane. Returns a guard that uninstalls
    /// it on drop, so a panicking chaos scenario cannot leak faults
    /// into unrelated code.
    pub fn install(plane: Arc<FaultPlane>) -> InstalledPlane {
        *PLANE.lock().unwrap_or_else(PoisonError::into_inner) = Some(plane);
        ACTIVE.store(true, Ordering::Release);
        InstalledPlane { _private: () }
    }

    /// Remove the global plane (idempotent).
    pub fn clear() {
        ACTIVE.store(false, Ordering::Release);
        *PLANE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// The installed plane, if any.
    pub fn current() -> Option<Arc<FaultPlane>> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
        PLANE.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// RAII handle for an installed plane; uninstalls on drop.
    #[must_use = "dropping the guard uninstalls the plane"]
    pub struct InstalledPlane {
        _private: (),
    }

    impl Drop for InstalledPlane {
        fn drop(&mut self) {
            clear();
        }
    }
}

#[cfg(feature = "fault-hook")]
pub use enabled::{clear, current, install, InstalledPlane};

/// Ask the installed plane whether this hit of `site` should fault.
#[cfg(feature = "fault-hook")]
#[inline]
pub fn check(site: Site) -> Option<Fault> {
    enabled::current().and_then(|p| p.decide(site))
}

/// Without the `fault-hook` feature there is never a plane: this
/// constant `None` inlines away and every injection site compiles to
/// nothing.
#[cfg(not(feature = "fault-hook"))]
#[inline(always)]
pub fn check(_site: Site) -> Option<Fault> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_in_seed_and_hit() {
        let cfg = FaultConfig::none()
            .with(Site::IoRead, 64)
            .with(Site::TornWrite, 128);
        let a = FaultPlane::new(9, cfg);
        let b = FaultPlane::new(9, cfg);
        let seq_a: Vec<_> = (0..200).map(|_| a.decide(Site::IoRead)).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.decide(Site::IoRead)).collect();
        assert_eq!(seq_a, seq_b);
        let torn_a: Vec<_> = (0..50).map(|_| a.decide(Site::TornWrite)).collect();
        let torn_b: Vec<_> = (0..50).map(|_| b.decide(Site::TornWrite)).collect();
        assert_eq!(torn_a, torn_b);
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let cfg = FaultConfig::none().with(Site::IoRead, 64);
        let a = FaultPlane::new(1, cfg);
        let b = FaultPlane::new(2, cfg);
        let seq_a: Vec<bool> = (0..256).map(|_| a.decide(Site::IoRead).is_some()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.decide(Site::IoRead).is_some()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let cfg = FaultConfig::none().with(Site::PoolTask, 64); // 1 in 4
        let p = FaultPlane::new(3, cfg);
        let fired = (0..4096)
            .filter(|_| p.decide(Site::PoolTask).is_some())
            .count();
        assert!(
            (700..1350).contains(&fired),
            "expected ~1024 of 4096, got {fired}"
        );
        let counts = p.counts();
        assert_eq!(counts.hits[Site::PoolTask as usize], 4096);
        assert_eq!(counts.injected[Site::PoolTask as usize], fired as u64);
        assert_eq!(counts.total_injected(), fired as u64);
    }

    #[test]
    fn zero_rate_never_fires_and_disabled_sites_stay_silent() {
        let p = FaultPlane::new(7, FaultConfig::none());
        for site in Site::ALL {
            for _ in 0..64 {
                assert_eq!(p.decide(site), None);
            }
        }
        assert_eq!(p.counts().total_injected(), 0);
        assert_eq!(p.counts().total_hits(), 64 * NUM_SITES as u64);
    }

    #[test]
    fn fault_shapes_match_their_sites() {
        let mut cfg = FaultConfig::none();
        for site in Site::ALL {
            cfg = cfg.with(site, 256); // always fire
        }
        let p = FaultPlane::new(11, cfg);
        for _ in 0..32 {
            assert!(matches!(
                p.decide(Site::IoRead),
                Some(Fault::Error | Fault::ShortRead)
            ));
            assert_eq!(p.decide(Site::IoWrite), Some(Fault::Error));
            assert_eq!(p.decide(Site::SnapshotOpen), Some(Fault::Error));
            assert!(matches!(
                p.decide(Site::TornWrite),
                Some(Fault::Truncate { .. })
            ));
            assert_eq!(p.decide(Site::PoolTask), Some(Fault::Panic));
            assert_eq!(p.decide(Site::PoolWorker), Some(Fault::Panic));
            match p.decide(Site::ServeLatency) {
                Some(Fault::Delay { millis }) => assert!(millis < 20),
                other => panic!("expected Delay, got {other:?}"),
            }
            assert_eq!(p.decide(Site::ServeDrop), Some(Fault::Drop));
        }
    }

    #[test]
    fn injected_error_names_the_site() {
        let e = injected_io_error(Site::SnapshotOpen);
        assert!(e.to_string().contains("snapshot-open"));
        assert!(e.to_string().contains("injected"));
    }

    #[cfg(feature = "fault-hook")]
    #[test]
    fn install_guard_scopes_the_plane() {
        // Serialised with any other global-plane test by taking the
        // install path in one thread only (unit tests in this module
        // are the only installers in this crate's test binary).
        let cfg = FaultConfig::none().with(Site::IoRead, 256);
        {
            let _guard = install(std::sync::Arc::new(FaultPlane::new(5, cfg)));
            assert!(check(Site::IoRead).is_some());
        }
        assert_eq!(check(Site::IoRead), None, "guard drop must uninstall");
    }

    #[cfg(not(feature = "fault-hook"))]
    #[test]
    fn unhooked_check_is_constant_none() {
        for site in Site::ALL {
            assert_eq!(check(site), None);
        }
    }
}
