//! Row-major dense `f32` matrix.
//!
//! Embedding tables (`N_e × d`, `N_r × d`), the LSTM weight matrices, and the
//! TuckER core tensor slices are all [`Matrix`] values. Only the kernels the
//! training loops need are provided; there is deliberately no general BLAS.

use crate::rng::Rng;
use crate::vecops;

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an explicit row-major buffer. Panics if the buffer length
    /// does not equal `rows * cols`.
    // audit:allow(E701): shape mismatch means a corrupt snapshot; the
    // format reader validates dims against the header before this call
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Uniform(−scale, scale) initialisation.
    pub fn uniform_init(rows: usize, cols: usize, scale: f32, rng: &mut Rng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.uniform(-scale, scale);
        }
        m
    }

    /// Xavier/Glorot uniform initialisation: `U(−√(6/(fan_in+fan_out)), ·)`.
    pub fn xavier_init(rows: usize, cols: usize, rng: &mut Rng) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::uniform_init(rows, cols, scale, rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    // audit:allow(E701): i < rows is the documented contract; callers
    // iterate 0..rows or use engine indices bounded at load
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    // audit:allow(E701): (i, j) in-bounds is the documented contract,
    // debug-asserted above the slice index
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    // audit:allow(E701): (i, j) in-bounds is the documented contract,
    // debug-asserted above the slice index
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Whole backing buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `out = M · x` where `x` has `cols` entries and `out` has `rows`.
    ///
    /// This is the 1-vs-all scoring kernel: with `M` the entity table and
    /// `x` the query vector, `out` holds a score for every entity.
    ///
    /// Rows are processed four at a time through [`vecops::dot4`] so
    /// each chunk of `x` is loaded once per four rows; per row the
    /// multiply/accumulate order is exactly [`vecops::dot`]'s, so the
    /// results are bit-identical to the one-dot-per-row loop.
    // audit:allow(E701): i + 3 < rows inside the 4-row loop (bound
    // i + 4 <= rows) and i < rows in the remainder loop
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        let mut i = 0;
        while i + 4 <= self.rows {
            let s = vecops::dot4(
                x,
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
            );
            out[i..i + 4].copy_from_slice(&s);
            i += 4;
        }
        while i < self.rows {
            out[i] = vecops::dot(self.row(i), x);
            i += 1;
        }
    }

    /// `out = Mᵀ · x` where `x` has `rows` entries and `out` has `cols`.
    ///
    /// This is the softmax backward kernel: `∂L/∂q = Eᵀ (p − y)`.
    pub fn matvec_transpose(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        vecops::zero(out);
        for i in 0..self.rows {
            let xi = x[i];
            if xi != 0.0 {
                vecops::axpy(xi, self.row(i), out);
            }
        }
    }

    /// Rank-1 accumulation into a single row: `M[i, :] += alpha * v`.
    #[inline]
    pub fn add_to_row(&mut self, i: usize, alpha: f32, v: &[f32]) {
        vecops::axpy(alpha, v, self.row_mut(i));
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        vecops::norm(&self.data)
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f32) {
        for x in &mut self.data {
            *x = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic]
    fn from_vec_checks_size() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.0, -1.0];
        let mut out = [0.0; 2];
        m.matvec(&x, &mut out);
        assert_eq!(out, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_transpose_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, -1.0];
        let mut out = [0.0; 3];
        m.matvec_transpose(&x, &mut out);
        assert_eq!(out, [-3.0, -3.0, -3.0]);
    }

    #[test]
    fn transpose_is_adjoint() {
        // ⟨Mx, y⟩ == ⟨x, Mᵀy⟩ for random M, x, y.
        let mut rng = Rng::seed_from_u64(5);
        let m = Matrix::uniform_init(7, 4, 1.0, &mut rng);
        let x: Vec<f32> = (0..4).map(|_| rng.normal()).collect();
        let y: Vec<f32> = (0..7).map(|_| rng.normal()).collect();
        let mut mx = vec![0.0; 7];
        m.matvec(&x, &mut mx);
        let mut mty = vec![0.0; 4];
        m.matvec_transpose(&y, &mut mty);
        let lhs = vecops::dot(&mx, &y);
        let rhs = vecops::dot(&x, &mty);
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn xavier_scale_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        let m = Matrix::xavier_init(10, 20, &mut rng);
        let bound = (6.0 / 30.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= bound));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn add_to_row_only_touches_target() {
        let mut m = Matrix::zeros(3, 2);
        m.add_to_row(1, 2.0, &[1.0, 1.0]);
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert_eq!(m.row(1), &[2.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }
}
