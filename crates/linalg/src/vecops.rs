//! Fused vector kernels used by every scoring function and gradient.
//!
//! All slices are `f32`; callers guarantee equal lengths (checked with
//! `debug_assert!` so release builds stay branch-free in the hot loops).
//!
//! ## Vectorization policy
//!
//! Every kernel is written as explicit [`LANES`]-wide chunks over
//! `chunks_exact` with a scalar remainder — the shape the
//! autovectoriser reliably turns into packed mul/add under
//! `-C target-cpu=native` (no nightly `std::simd`, no intrinsics, no
//! `unsafe`). Two classes of kernel follow from that:
//!
//! - **Elementwise** kernels (`axpy`, `scaled_copy`, `scale`,
//!   `hadamard`, `hadamard_axpy`): chunking never reassociates any
//!   float op, so their results are bit-identical to the scalar loop
//!   by construction.
//! - **Reduction** kernels (`dot`, `dot4`, `triple_dot`, `dist_sq`,
//!   `dist_l1`): the [`LANES`] independent accumulators reassociate the
//!   sum, so the result differs from the scalar reference by rounding.
//!   The accumulation order is a pure function of the slice length and
//!   the fixed lane-combine tree, so for a given `LANES` the bits are
//!   pinned — `crates/linalg/tests/kernel_equivalence.rs` asserts the
//!   golden bit patterns and the max-ulp distance to the reference.
//!
//! The [`mod@reference`] module holds the scalar forms. Building with the
//! `scalar-kernels` feature routes every public kernel through them,
//! which keeps the whole workspace runnable (and its agreement tests
//! meaningful) on the pure-scalar path.

/// Number of `f32` lanes per chunk in the vectorized kernels.
///
/// Eight lanes is one AVX2 register (half an AVX-512 register); the
/// reduction kernels' bit patterns are pinned to this width by the
/// lane-combine tree, so changing it is a numeric change that must
/// re-pin the golden tests in `kernel_equivalence.rs`.
pub const LANES: usize = 8;

/// The fixed lane-combine tree shared by every reduction kernel:
/// `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`. Deterministic for a given
/// [`LANES`]; all laned reductions fold through this exact shape so
/// their results depend only on input length, never on the caller.
// audit:allow(E701): indices 0..8 into a fixed [f32; LANES] array with
// LANES = 8; every access is a compile-time constant below the length
#[cfg(not(feature = "scalar-kernels"))]
#[inline]
fn lane_combine(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Scalar reference kernels: the one-accumulator, one-element-at-a-time
/// forms. Always compiled (the equivalence tests and the kernel
/// microbenchmark compare against them); with the `scalar-kernels`
/// feature the public kernels below delegate here.
pub mod reference {
    /// Scalar dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    /// Scalar triple dot product.
    pub fn triple_dot(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), c.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            acc += a[i] * b[i] * c[i];
        }
        acc
    }

    /// Scalar `y += alpha * x`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Scalar `out = alpha * x`.
    pub fn scaled_copy(alpha: f32, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), out.len());
        for (o, xi) in out.iter_mut().zip(x) {
            *o = alpha * xi;
        }
    }

    /// Scalar `out += alpha * (a ⊙ b)`.
    // audit:allow(E701): i < a.len() from the loop bound; equal lengths
    // are the kernel contract, debug-asserted above the loop
    pub fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), out.len());
        for i in 0..a.len() {
            out[i] += alpha * a[i] * b[i];
        }
    }

    /// Scalar `out = a ⊙ b`.
    pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), out.len());
        for i in 0..a.len() {
            out[i] = a[i] * b[i];
        }
    }

    /// Scalar `x *= alpha`.
    pub fn scale(alpha: f32, x: &mut [f32]) {
        for xi in x {
            *xi *= alpha;
        }
    }

    /// Scalar squared Euclidean distance.
    pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for i in 0..a.len() {
            let d = a[i] - b[i];
            acc += d * d;
        }
        acc
    }

    /// Scalar L1 distance.
    pub fn dist_l1(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }
}

/// Dot product `Σ aᵢ bᵢ`.
///
/// Eight independent accumulator lanes: a single-accumulator loop
/// serialises on the add dependency chain and cannot vectorise, which
/// made this the slowest kernel per flop in the training hot path
/// (`Matrix::matvec` is a row of dots). The lane shape matches what the
/// autovectoriser turns into packed mul/add; the fixed lane-combine
/// tree keeps the result deterministic for a given slice length.
// audit:allow(E701): lane index k < LANES over chunks_exact(LANES)
// chunks and a LANES-wide accumulator — every index is statically in
// bounds
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::dot(a, b)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut acc = [0.0f32; LANES];
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for (x, y) in (&mut ca).zip(&mut cb) {
            for k in 0..LANES {
                acc[k] += x[k] * y[k];
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            tail += x * y;
        }
        lane_combine(acc) + tail
    }
}

/// Four dot products against one shared left operand, in a single pass:
/// `[⟨x, y0⟩, ⟨x, y1⟩, ⟨x, y2⟩, ⟨x, y3⟩]`.
///
/// The register tile behind the fused entity-table scan
/// ([`crate::scan`]) and the blocked [`crate::Matrix::matvec`]: each
/// chunk of `x` is loaded once and reused across four accumulator sets,
/// quartering the dominant memory traffic of a table sweep. Per output,
/// the multiply/accumulate sequence and lane-combine tree are exactly
/// those of [`dot`], so `dot4(x, a, b, c, d)[i]` is bit-identical to
/// `dot(x, yᵢ)` — the invariant the serve/eval agreement tests lean on.
// audit:allow(E701): all indexing is lane index k < LANES over
// chunks_exact(LANES) chunks of equal-length slices (debug-asserted),
// statically in bounds
#[inline]
pub fn dot4(x: &[f32], y0: &[f32], y1: &[f32], y2: &[f32], y3: &[f32]) -> [f32; 4] {
    debug_assert_eq!(x.len(), y0.len());
    debug_assert_eq!(x.len(), y1.len());
    debug_assert_eq!(x.len(), y2.len());
    debug_assert_eq!(x.len(), y3.len());
    #[cfg(feature = "scalar-kernels")]
    {
        [
            reference::dot(x, y0),
            reference::dot(x, y1),
            reference::dot(x, y2),
            reference::dot(x, y3),
        ]
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut a0 = [0.0f32; LANES];
        let mut a1 = [0.0f32; LANES];
        let mut a2 = [0.0f32; LANES];
        let mut a3 = [0.0f32; LANES];
        let n = x.len();
        let whole = n - n % LANES;
        let mut base = 0;
        while base < whole {
            let xv = &x[base..base + LANES];
            let v0 = &y0[base..base + LANES];
            let v1 = &y1[base..base + LANES];
            let v2 = &y2[base..base + LANES];
            let v3 = &y3[base..base + LANES];
            for k in 0..LANES {
                a0[k] += xv[k] * v0[k];
                a1[k] += xv[k] * v1[k];
                a2[k] += xv[k] * v2[k];
                a3[k] += xv[k] * v3[k];
            }
            base += LANES;
        }
        let mut t = [0.0f32; 4];
        for i in whole..n {
            t[0] += x[i] * y0[i];
            t[1] += x[i] * y1[i];
            t[2] += x[i] * y2[i];
            t[3] += x[i] * y3[i];
        }
        [
            lane_combine(a0) + t[0],
            lane_combine(a1) + t[1],
            lane_combine(a2) + t[2],
            lane_combine(a3) + t[3],
        ]
    }
}

/// Triple dot product `⟨a, b, c⟩ = Σ aᵢ bᵢ cᵢ` — the *multiplicative item* of
/// the AutoSF/ERAS search space (Table II of the paper).
// audit:allow(E701): lane index k < LANES over chunks_exact(LANES)
// chunks; remainder indices i in whole..n are within every slice
#[inline]
pub fn triple_dot(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::triple_dot(a, b, c)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut acc = [0.0f32; LANES];
        let n = a.len();
        let whole = n - n % LANES;
        let mut base = 0;
        while base < whole {
            let (x, y, z) = (
                &a[base..base + LANES],
                &b[base..base + LANES],
                &c[base..base + LANES],
            );
            for k in 0..LANES {
                acc[k] += x[k] * y[k] * z[k];
            }
            base += LANES;
        }
        let mut tail = 0.0f32;
        for i in whole..n {
            tail += a[i] * b[i] * c[i];
        }
        lane_combine(acc) + tail
    }
}

/// `y += alpha * x`. Elementwise — chunking is a pure unroll, so the
/// result is bit-identical to the scalar reference for every input.
// audit:allow(E701): lane index k < LANES over paired
// chunks_exact(LANES) chunks — statically in bounds
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::axpy(alpha, x, y);
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut cy = y.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (yv, xv) in (&mut cy).zip(&mut cx) {
            for k in 0..LANES {
                yv[k] += alpha * xv[k];
            }
        }
        for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
            *yi += alpha * xi;
        }
    }
}

/// `out = alpha * x` — the dense per-row gradient fill
/// (`row_grad = resid · q`) of the 1-vs-all update, hoisted into a
/// kernel. Elementwise, bit-identical to the scalar form.
// audit:allow(E701): lane index k < LANES over paired
// chunks_exact(LANES) chunks — statically in bounds
#[inline]
pub fn scaled_copy(alpha: f32, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::scaled_copy(alpha, x, out);
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut co = out.chunks_exact_mut(LANES);
        let mut cx = x.chunks_exact(LANES);
        for (ov, xv) in (&mut co).zip(&mut cx) {
            for k in 0..LANES {
                ov[k] = alpha * xv[k];
            }
        }
        for (o, xi) in co.into_remainder().iter_mut().zip(cx.remainder()) {
            *o = alpha * xi;
        }
    }
}

/// `out += alpha * (a ⊙ b)` — fused Hadamard-accumulate; the core of the
/// 1-vs-all query-vector construction (`q_j += sign · h_i ⊙ r_blk`) and
/// of the rank-1 outer-product accumulation the trainers defer
/// (`G[c, :] += resid_c · q` row by row). Elementwise, bit-identical to
/// the scalar form.
// audit:allow(E701): equal-length slices are the documented contract
// (debug-asserted); lane index k < LANES over chunks_exact chunks
#[inline]
pub fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::hadamard_axpy(alpha, a, b, out);
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut co = out.chunks_exact_mut(LANES);
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for ((ov, av), bv) in (&mut co).zip(&mut ca).zip(&mut cb) {
            for k in 0..LANES {
                ov[k] += alpha * av[k] * bv[k];
            }
        }
        for ((o, x), y) in co
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            *o += alpha * x * y;
        }
    }
}

/// Element-wise product `out = a ⊙ b`. Elementwise, bit-identical to
/// the scalar form.
// audit:allow(E701): lane index k < LANES over paired
// chunks_exact(LANES) chunks — statically in bounds
#[inline]
pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::hadamard(a, b, out);
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut co = out.chunks_exact_mut(LANES);
        let mut ca = a.chunks_exact(LANES);
        let mut cb = b.chunks_exact(LANES);
        for ((ov, av), bv) in (&mut co).zip(&mut ca).zip(&mut cb) {
            for k in 0..LANES {
                ov[k] = av[k] * bv[k];
            }
        }
        for ((o, x), y) in co
            .into_remainder()
            .iter_mut()
            .zip(ca.remainder())
            .zip(cb.remainder())
        {
            *o = x * y;
        }
    }
}

/// `x *= alpha`. Elementwise, bit-identical to the scalar form.
// audit:allow(E701): lane index k < LANES over chunks_exact_mut(LANES)
// chunks — statically in bounds
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    #[cfg(feature = "scalar-kernels")]
    {
        reference::scale(alpha, x);
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut cx = x.chunks_exact_mut(LANES);
        for xv in &mut cx {
            for k in 0..LANES {
                xv[k] *= alpha;
            }
        }
        for xi in cx.into_remainder() {
            *xi *= alpha;
        }
    }
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// Euclidean norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    norm_sq(x).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²` (EM clustering objective, Eq. 5).
// audit:allow(E701): lane index k < LANES over chunks_exact(LANES)
// chunks; remainder indices i in whole..n are within both slices
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::dist_sq(a, b)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut acc = [0.0f32; LANES];
        let n = a.len();
        let whole = n - n % LANES;
        let mut base = 0;
        while base < whole {
            let (x, y) = (&a[base..base + LANES], &b[base..base + LANES]);
            for k in 0..LANES {
                let d = x[k] - y[k];
                acc[k] += d * d;
            }
            base += LANES;
        }
        let mut tail = 0.0f32;
        for i in whole..n {
            let d = a[i] - b[i];
            tail += d * d;
        }
        lane_combine(acc) + tail
    }
}

/// L1 distance `Σ |aᵢ − bᵢ|` (TransE with L1 norm).
// audit:allow(E701): lane index k < LANES over chunks_exact(LANES)
// chunks; remainder indices i in whole..n are within both slices
#[inline]
pub fn dist_l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(feature = "scalar-kernels")]
    {
        reference::dist_l1(a, b)
    }
    #[cfg(not(feature = "scalar-kernels"))]
    {
        let mut acc = [0.0f32; LANES];
        let n = a.len();
        let whole = n - n % LANES;
        let mut base = 0;
        while base < whole {
            let (x, y) = (&a[base..base + LANES], &b[base..base + LANES]);
            for k in 0..LANES {
                acc[k] += (x[k] - y[k]).abs();
            }
            base += LANES;
        }
        let mut tail = 0.0f32;
        for i in whole..n {
            tail += (a[i] - b[i]).abs();
        }
        lane_combine(acc) + tail
    }
}

/// Index of the maximum element; ties resolve to the first occurrence.
/// Panics on empty input.
#[inline]
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..x.len() {
        if x[i] > x[best] {
            best = i;
        }
    }
    best
}

/// Fill with zeros.
#[inline]
pub fn zero(x: &mut [f32]) {
    for xi in x {
        *xi = 0.0;
    }
}

/// Renormalise `x` to unit L2 norm if its norm exceeds 1 (TransE/TransH
/// entity constraint). No-op on the zero vector.
#[inline]
pub fn project_unit_ball(x: &mut [f32]) {
    let n = norm(x);
    if n > 1.0 {
        scale(1.0 / n, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_triple_dot() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = [1.0, 0.5, 2.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(triple_dot(&a, &b, &c), 4.0 + 5.0 + 36.0);
    }

    #[test]
    fn triple_dot_is_symmetric_in_all_arguments() {
        let a = [0.3, -1.2, 2.0, 0.7];
        let b = [1.5, 0.2, -0.4, 1.0];
        let c = [-2.0, 0.9, 0.1, 0.6];
        let abc = triple_dot(&a, &b, &c);
        assert!((abc - triple_dot(&b, &a, &c)).abs() < 1e-6);
        assert!((abc - triple_dot(&c, &b, &a)).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scaled_copy_overwrites() {
        let x = [1.0, -2.0, 0.5];
        let mut out = [9.0, 9.0, 9.0];
        scaled_copy(2.0, &x, &mut out);
        assert_eq!(out, [2.0, -4.0, 1.0]);
    }

    #[test]
    fn dot4_matches_four_dots_bitwise() {
        // Lengths straddling the lane width, including a zero-length.
        for n in [0usize, 1, 7, 8, 9, 16, 31, 64] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
            let ys: Vec<Vec<f32>> = (0..4)
                .map(|j| (0..n).map(|i| ((i + j) as f32 * 0.11).cos()).collect())
                .collect();
            let fused = dot4(&x, &ys[0], &ys[1], &ys[2], &ys[3]);
            for j in 0..4 {
                assert_eq!(fused[j].to_bits(), dot(&x, &ys[j]).to_bits(), "n={n} j={j}");
            }
        }
    }

    #[test]
    fn hadamard_axpy_matches_manual() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.5, -1.0];
        let mut out = [1.0, 1.0, 1.0];
        hadamard_axpy(-1.0, &a, &b, &mut out);
        assert_eq!(out, [1.0 - 2.0, 1.0 - 1.0, 1.0 + 3.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist_l1(&a, &b), 7.0);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn unit_ball_projection() {
        let mut x = [3.0, 4.0];
        project_unit_ball(&mut x);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
        let mut small = [0.1, 0.1];
        let before = small;
        project_unit_ball(&mut small);
        assert_eq!(small, before);
        let mut zero_v = [0.0, 0.0];
        project_unit_ball(&mut zero_v);
        assert_eq!(zero_v, [0.0, 0.0]);
    }
}
