//! Fused vector kernels used by every scoring function and gradient.
//!
//! All slices are `f32`; callers guarantee equal lengths (checked with
//! `debug_assert!` so release builds stay branch-free in the hot loops).

/// Dot product `Σ aᵢ bᵢ`.
///
/// Eight independent accumulator lanes: a single-accumulator loop
/// serialises on the add dependency chain and cannot vectorise, which
/// made this the slowest kernel per flop in the training hot path
/// (`Matrix::matvec` is a row of dots). The lane shape matches what the
/// autovectoriser turns into packed mul/add; the fixed lane-combine
/// tree keeps the result deterministic for a given slice length.
// audit:allow(E701): lane index k < 8 over chunks_exact(8) chunks and
// an 8-wide accumulator — every index is statically in bounds
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for k in 0..8 {
            acc[k] += x[k] * y[k];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7])) + tail
}

/// Triple dot product `⟨a, b, c⟩ = Σ aᵢ bᵢ cᵢ` — the *multiplicative item* of
/// the AutoSF/ERAS search space (Table II of the paper).
#[inline]
pub fn triple_dot(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        acc += a[i] * b[i] * c[i];
    }
    acc
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `out += alpha * (a ⊙ b)` — fused Hadamard-accumulate; the core of the
/// 1-vs-all query-vector construction (`q_j += sign · h_i ⊙ r_blk`).
// audit:allow(E701): equal-length slices are the documented contract
// (debug-asserted); callers pass same-dim embedding blocks
#[inline]
pub fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] += alpha * a[i] * b[i];
    }
}

/// Element-wise product `out = a ⊙ b`.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = a[i] * b[i];
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// Euclidean norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    norm_sq(x).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²` (EM clustering objective, Eq. 5).
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// L1 distance `Σ |aᵢ − bᵢ|` (TransE with L1 norm).
#[inline]
pub fn dist_l1(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Index of the maximum element; ties resolve to the first occurrence.
/// Panics on empty input.
#[inline]
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for i in 1..x.len() {
        if x[i] > x[best] {
            best = i;
        }
    }
    best
}

/// Fill with zeros.
#[inline]
pub fn zero(x: &mut [f32]) {
    for xi in x {
        *xi = 0.0;
    }
}

/// Renormalise `x` to unit L2 norm if its norm exceeds 1 (TransE/TransH
/// entity constraint). No-op on the zero vector.
#[inline]
pub fn project_unit_ball(x: &mut [f32]) {
    let n = norm(x);
    if n > 1.0 {
        scale(1.0 / n, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_triple_dot() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = [1.0, 0.5, 2.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(triple_dot(&a, &b, &c), 4.0 + 5.0 + 36.0);
    }

    #[test]
    fn triple_dot_is_symmetric_in_all_arguments() {
        let a = [0.3, -1.2, 2.0, 0.7];
        let b = [1.5, 0.2, -0.4, 1.0];
        let c = [-2.0, 0.9, 0.1, 0.6];
        let abc = triple_dot(&a, &b, &c);
        assert!((abc - triple_dot(&b, &a, &c)).abs() < 1e-6);
        assert!((abc - triple_dot(&c, &b, &a)).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn hadamard_axpy_matches_manual() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.5, -1.0];
        let mut out = [1.0, 1.0, 1.0];
        hadamard_axpy(-1.0, &a, &b, &mut out);
        assert_eq!(out, [1.0 - 2.0, 1.0 - 1.0, 1.0 + 3.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist_l1(&a, &b), 7.0);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn unit_ball_projection() {
        let mut x = [3.0, 4.0];
        project_unit_ball(&mut x);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
        let mut small = [0.1, 0.1];
        let before = small;
        project_unit_ball(&mut small);
        assert_eq!(small, before);
        let mut zero_v = [0.0, 0.0];
        project_unit_ball(&mut zero_v);
        assert_eq!(zero_v, [0.0, 0.0]);
    }
}
