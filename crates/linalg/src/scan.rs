//! Fused entity-table scan: one cache-blocked pass that scores every
//! table row against a group of query vectors and streams the scores
//! into bounded consumers — per-row scores are never materialized as a
//! full `N_e` vector.
//!
//! ## Why fuse
//!
//! Both the serving engine's batched top-k and the offline filtered
//! evaluator reduce to the same loop: `score[e] = ⟨E[e], q⟩` for every
//! entity `e`, immediately folded into a tiny summary (a top-k heap, a
//! better/ties tally). Materializing the score vector costs an extra
//! `O(N_e)` store+load sweep and, for the serve path, a heap compare
//! per entity per query. The fused kernel instead:
//!
//! - tiles the entity table into [`BLOCK_ROWS`]-row blocks sized to
//!   stay L1/L2-resident (`256 rows × 32 dims × 4 B = 32 KiB` at the
//!   serving benchmark's dimension),
//! - processes queries in register tiles of four over each block via
//!   [`crate::vecops::dot4`], so every row is loaded once per four
//!   queries instead of once per query,
//! - hands each consumer its block of scores through a small
//!   stack-resident scratch buffer ([`BlockConsumer::consume`]), where
//!   a cached-threshold top-k ([`StreamTopK`]) or a rank tally
//!   ([`RankTally`]) digests them without ever seeing a full score
//!   vector.
//!
//! ## Exactness
//!
//! Every score produced by the scan is bit-identical to
//! `vecops::dot(row, q)` — and therefore to `Matrix::matvec` — under
//! both the vectorized and the `scalar-kernels` builds ([`dot4`]'s
//! documented invariant). The serve/eval agreement tests compare the
//! fused path against the materialized matvec path down to the bit.
//!
//! [`dot4`]: crate::vecops::dot4

use crate::cmp;
use crate::matrix::Matrix;
use crate::vecops;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Rows per cache block of the fused scan. At dimension `d` a block
/// holds `256·d·4` bytes of entity rows (32 KiB at d = 32, 128 KiB at
/// d = 128) — small enough that the four query tiles sweeping it reuse
/// L1/L2-resident rows rather than streaming from memory.
pub const BLOCK_ROWS: usize = 256;

/// Queries per register tile: [`vecops::dot4`] keeps four accumulator
/// sets live across one row load.
const QTILE: usize = 4;

/// A streaming sink for one query's scores. The scan calls
/// [`consume`](BlockConsumer::consume) once per cache block with the
/// scores of rows `base .. base + scores.len()`, in ascending row
/// order across calls.
pub trait BlockConsumer {
    /// Digest the scores of one block of rows, where `scores[i]` is
    /// the score of row `base + i`.
    fn consume(&mut self, base: u32, scores: &[f32]);
}

/// Score every row of `table` against `consumers.len()` query vectors
/// (`qvecs` holds them contiguously, `table.cols()` floats each) and
/// stream each query's scores into its consumer.
///
/// Scores are bit-identical to `vecops::dot(table.row(e), q)` for
/// every entity `e` — see the module docs.
// audit:allow(E701): all indexing is structurally in bounds — row
// indices stay below table.rows() (block loop bound), query offsets
// below consumers.len()*dim (qvecs length is debug-asserted), and
// scratch offsets below QTILE*BLOCK_ROWS (nb <= BLOCK_ROWS, t < QTILE)
pub fn scan_rows<C: BlockConsumer>(table: &Matrix, qvecs: &[f32], consumers: &mut [C]) {
    let dim = table.cols();
    let nq = consumers.len();
    debug_assert_eq!(qvecs.len(), nq * dim);
    let rows = table.rows();
    // Per-block score scratch, one BLOCK_ROWS stripe per tiled query:
    // 4 KiB on the stack, no heap traffic in the hot loop.
    let mut scores = [0.0f32; QTILE * BLOCK_ROWS];
    let mut base = 0;
    while base < rows {
        let nb = BLOCK_ROWS.min(rows - base);
        let mut qi = 0;
        // Register-tiled queries: each entity row is loaded once per
        // four queries while it is cache-hot.
        while qi + QTILE <= nq {
            let q0 = &qvecs[qi * dim..(qi + 1) * dim];
            let q1 = &qvecs[(qi + 1) * dim..(qi + 2) * dim];
            let q2 = &qvecs[(qi + 2) * dim..(qi + 3) * dim];
            let q3 = &qvecs[(qi + 3) * dim..(qi + 4) * dim];
            for r in 0..nb {
                let s = vecops::dot4(table.row(base + r), q0, q1, q2, q3);
                scores[r] = s[0];
                scores[BLOCK_ROWS + r] = s[1];
                scores[2 * BLOCK_ROWS + r] = s[2];
                scores[3 * BLOCK_ROWS + r] = s[3];
            }
            for t in 0..QTILE {
                consumers[qi + t].consume(base as u32, &scores[t * BLOCK_ROWS..][..nb]);
            }
            qi += QTILE;
        }
        // Remainder queries (nq mod 4), one at a time over the same
        // cache-hot block.
        while qi < nq {
            let q = &qvecs[qi * dim..(qi + 1) * dim];
            for r in 0..nb {
                scores[r] = vecops::dot(table.row(base + r), q);
            }
            consumers[qi].consume(base as u32, &scores[..nb]);
            qi += 1;
        }
        base += nb;
    }
}

/// One scored candidate, ordered "greater ranks higher": descending
/// score with NaN below every number
/// ([`cmp::nan_lowest_f32`]), ties broken toward the smaller id.
#[derive(Debug, Clone, Copy)]
pub struct Hit {
    /// Row (entity) id of the candidate.
    pub id: u32,
    /// Its score (higher is better).
    pub score: f32,
}

impl PartialEq for Hit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Hit {}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp::nan_lowest_f32(self.score, other.score).then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Streaming bounded top-k over one query's scores: a `k`-bounded
/// min-heap plus a forward cursor into a sorted (ascending) filter
/// list, fed block-by-block by [`scan_rows`].
///
/// Once the heap is full, a cached copy of the current worst member
/// rejects non-improving candidates with one float compare — the
/// common case on a large table — before ever touching the heap.
pub struct StreamTopK<'a> {
    k: usize,
    filt: &'a [u32],
    cursor: usize,
    heap: BinaryHeap<Reverse<Hit>>,
    /// Current worst heap member, valid while `heap.len() == k`.
    worst: Hit,
}

impl<'a> StreamTopK<'a> {
    /// Top-`k` sink skipping the ids in `filt` (sorted ascending).
    pub fn new(k: usize, filt: &'a [u32]) -> Self {
        StreamTopK {
            k,
            filt,
            cursor: 0,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
            worst: Hit {
                id: 0,
                score: f32::NAN,
            },
        }
    }

    /// Offer one candidate.
    #[inline]
    fn offer(&mut self, h: Hit) {
        if self.heap.len() < self.k {
            self.heap.push(Reverse(h));
            if self.heap.len() == self.k {
                if let Some(w) = self.heap.peek() {
                    self.worst = w.0;
                }
            }
            return;
        }
        // Fast reject: against a non-NaN worst member, a candidate
        // scoring strictly below it cannot enter, and a NaN candidate
        // ranks below every number so it cannot either. A NaN worst
        // falls through to the exact total-order compare.
        if !self.worst.score.is_nan() && (h.score < self.worst.score || h.score.is_nan()) {
            return;
        }
        if let Some(w) = self.heap.peek() {
            if h > w.0 {
                self.heap.pop();
                self.heap.push(Reverse(h));
                if let Some(nw) = self.heap.peek() {
                    self.worst = nw.0;
                }
            }
        }
    }

    /// Drain to a best-first vector.
    pub fn into_sorted(self) -> Vec<Hit> {
        // `into_sorted_vec` is ascending in `Reverse<Hit>`, i.e.
        // descending in `Hit` — best first.
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|r| r.0)
            .collect()
    }
}

impl BlockConsumer for StreamTopK<'_> {
    // audit:allow(E701): filt[cursor] is guarded by cursor < filt.len()
    // in both the loop condition and the short-circuit below it; k == 0
    // sinks never push (heap.len() < k is false and peek is None)
    fn consume(&mut self, base: u32, scores: &[f32]) {
        if self.k == 0 {
            return;
        }
        for (off, &score) in scores.iter().enumerate() {
            let id = base + off as u32;
            // Blocks arrive in ascending row order, so the filter
            // cursor only moves forward.
            while self.cursor < self.filt.len() && self.filt[self.cursor] < id {
                self.cursor += 1;
            }
            if self.cursor < self.filt.len() && self.filt[self.cursor] == id {
                continue;
            }
            self.offer(Hit { id, score });
        }
    }
}

/// Streaming filtered-rank tally for one evaluation query: counts
/// candidates scoring strictly above / exactly equal to the target's
/// score, skipping filtered ids and the target itself — the streaming
/// form of `eras_train::eval::filtered_rank` (`rank = 1 + #better +
/// #ties/2`, average-tie convention).
pub struct RankTally<'a> {
    target: u32,
    target_score: f32,
    filt: &'a [u32],
    cursor: usize,
    better: u64,
    ties: u64,
}

impl<'a> RankTally<'a> {
    /// Tally for `target` whose score is `target_score`, skipping the
    /// ids in `filt` (sorted ascending; the target is always kept).
    pub fn new(target: u32, target_score: f32, filt: &'a [u32]) -> Self {
        RankTally {
            target,
            target_score,
            filt,
            cursor: 0,
            better: 0,
            ties: 0,
        }
    }

    /// The filtered average-tie rank after the scan.
    pub fn rank(&self) -> f64 {
        1.0 + self.better as f64 + self.ties as f64 / 2.0
    }
}

impl BlockConsumer for RankTally<'_> {
    // audit:allow(E701): filt[cursor] is guarded by cursor < filt.len()
    // in both the loop condition and the short-circuit below it
    fn consume(&mut self, base: u32, scores: &[f32]) {
        for (off, &s) in scores.iter().enumerate() {
            let id = base + off as u32;
            if id == self.target {
                continue;
            }
            while self.cursor < self.filt.len() && self.filt[self.cursor] < id {
                self.cursor += 1;
            }
            if self.cursor < self.filt.len() && self.filt[self.cursor] == id {
                continue;
            }
            if s > self.target_score {
                self.better += 1;
            } else if s == self.target_score {
                self.ties += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Collects every score — the materializing reference consumer.
    struct Collect(Vec<f32>);

    impl BlockConsumer for Collect {
        fn consume(&mut self, base: u32, scores: &[f32]) {
            assert_eq!(base as usize, self.0.len(), "blocks must be in order");
            self.0.extend_from_slice(scores);
        }
    }

    fn table_and_queries(rows: usize, dim: usize, nq: usize) -> (Matrix, Vec<f32>) {
        let mut rng = Rng::seed_from_u64(9);
        let table = Matrix::uniform_init(rows, dim, 1.0, &mut rng);
        let qvecs: Vec<f32> = (0..nq * dim).map(|_| rng.normal()).collect();
        (table, qvecs)
    }

    #[test]
    fn scan_matches_matvec_bitwise() {
        // Row counts straddling the block size, query counts straddling
        // the register tile.
        for (rows, nq) in [(1usize, 1usize), (7, 3), (256, 4), (300, 5), (513, 9)] {
            let dim = 16;
            let (table, qvecs) = table_and_queries(rows, dim, nq);
            let mut sinks: Vec<Collect> = (0..nq).map(|_| Collect(Vec::new())).collect();
            scan_rows(&table, &qvecs, &mut sinks);
            let mut want = vec![0.0f32; rows];
            for (qi, sink) in sinks.iter().enumerate() {
                table.matvec(&qvecs[qi * dim..(qi + 1) * dim], &mut want);
                assert_eq!(sink.0.len(), rows);
                for (e, (&got, &w)) in sink.0.iter().zip(&want).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        w.to_bits(),
                        "rows={rows} nq={nq} q={qi} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn stream_topk_matches_sort_reference() {
        let rows = 400;
        let (table, qvecs) = table_and_queries(rows, 8, 1);
        let mut scores = vec![0.0f32; rows];
        table.matvec(&qvecs, &mut scores);
        // Inject exact ties and a NaN to exercise the total order.
        scores[17] = scores[3];
        scores[200] = scores[3];
        scores[99] = f32::NAN;
        let filt: Vec<u32> = vec![3, 42, 399];
        for k in [1usize, 5, 50, 400, 1000] {
            let mut sink = StreamTopK::new(k, &filt);
            sink.consume(0, &scores);
            let got = sink.into_sorted();
            let mut want: Vec<Hit> = scores
                .iter()
                .enumerate()
                .filter(|(i, _)| filt.binary_search(&(*i as u32)).is_err())
                .map(|(i, &s)| Hit {
                    id: i as u32,
                    score: s,
                })
                .collect();
            want.sort_by(|a, b| b.cmp(a));
            want.truncate(k);
            assert_eq!(got.len(), want.len(), "k={k}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "k={k}");
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn stream_topk_threshold_survives_blockwise_feeding() {
        // Feed the same scores in two blocks; the cached worst-member
        // threshold must not reject candidates that beat the worst.
        let scores: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut whole = StreamTopK::new(10, &[]);
        whole.consume(0, &scores);
        let mut split = StreamTopK::new(10, &[]);
        split.consume(0, &scores[..37]);
        split.consume(37, &scores[37..]);
        let a = whole.into_sorted();
        let b = split.into_sorted();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn zero_k_collects_nothing() {
        let mut sink = StreamTopK::new(0, &[]);
        sink.consume(0, &[1.0, 2.0, 3.0]);
        assert!(sink.into_sorted().is_empty());
    }

    #[test]
    fn rank_tally_counts_better_and_ties() {
        // scores: e0..e4; target e3 (score 5.0); e1 better, e2 filtered
        // (mirrors the filtered_rank_basic test in eras-train).
        let scores = [1.0f32, 9.0, 7.0, 5.0, 2.0];
        let mut t = RankTally::new(3, scores[3], &[1, 2, 3]);
        t.consume(0, &scores);
        assert_eq!(t.rank(), 1.0);
        let mut u = RankTally::new(3, scores[3], &[3]);
        u.consume(0, &scores);
        assert_eq!(u.rank(), 3.0);
        // Constant scores → average rank.
        let flat = [0.5f32; 10];
        let mut v = RankTally::new(4, flat[4], &[4]);
        v.consume(0, &flat);
        assert_eq!(v.rank(), 1.0 + 9.0 / 2.0);
    }
}
