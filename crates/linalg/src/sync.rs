//! Synchronisation shim — the primitive layer under the pool and the
//! lock-free caches.
//!
//! Every synchronisation primitive the parallel execution layer touches
//! (`AtomicUsize`/`AtomicBool`/`AtomicU64`/`AtomicPtr`, [`Mutex`],
//! [`Condvar`]) is a newtype defined here instead of a direct
//! `std::sync` import. In a normal build each method is an `#[inline]`
//! one-liner forwarding to the `std` type — same layout, same
//! semantics, same codegen — so production behavior is bit-identical
//! to using `std::sync` directly.
//!
//! The point of the indirection is the `sched-hook` cargo feature:
//! with it enabled, every acquire/release/load/store/lock/wait first
//! consults a per-thread [`hook::SchedHook`]. The schedule-exploring
//! model checker in `eras-audit` (`eras audit --pass sched`) installs
//! a hook on the threads it controls, which turns every
//! synchronisation operation into a yield point of a deterministic
//! scheduler — the checker decides which thread moves next, one
//! operation at a time, and can therefore enumerate interleavings of
//! the pool's dispatch, chunk-claim, barrier and publication
//! protocols exhaustively. Threads without an installed hook (which
//! is every thread outside the checker, even in a `sched-hook` build)
//! take the forwarding path unchanged.
//!
//! ## Shim contract
//!
//! - **Production builds are zero-cost.** Without the `sched-hook`
//!   feature, [`hook::current`] is a `const None` and every wrapper
//!   inlines to the bare `std` operation.
//! - **Unhooked threads are untouched.** With the feature on, a thread
//!   that never installed a hook pays one thread-local read per
//!   operation and otherwise behaves identically; these operations are
//!   per-dispatch / per-chunk, never per-element.
//! - **Hooked threads serialise through the scheduler.** The hook is
//!   called *before* the underlying operation; `Mutex`/`Condvar`
//!   blocking is resolved at the scheduler level (the real mutex is
//!   only ever taken uncontended), so the checker can model
//!   enabledness, detect deadlocks and lost wakeups, and replay a
//!   recorded schedule deterministically.
//! - **Poisoning is preserved** on the forwarding path: `lock`,
//!   `try_lock` and `wait` return the same `LockResult`/
//!   `TryLockResult` shapes as `std::sync`, so callers like the
//!   pool's `unwrap_or_else(|e| e.into_inner())` idiom port verbatim.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::atomic::Ordering;

/// The checker-facing side of the shim: a per-thread hook that every
/// shim operation announces itself to before executing.
pub mod hook {
    #[cfg(not(feature = "sched-hook"))]
    use std::sync::Arc;

    /// What kind of atomic access is about to happen. `Rmw` covers
    /// `swap`/`fetch_add`/`fetch_sub`; `Cas` the compare-exchange
    /// family. The distinction matters to the checker's dependence
    /// relation (two `Load`s commute, everything else does not).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum AtomicOp {
        Load,
        Store,
        Rmw,
        Cas,
    }

    /// A deterministic scheduler driving the current thread. Each
    /// method is called *before* the underlying operation and blocks
    /// until the scheduler grants the thread its turn; objects are
    /// identified by address (stable for the lifetime of one checked
    /// execution).
    pub trait SchedHook {
        /// An atomic access on the object at `addr` is about to run.
        fn atomic_op(&self, addr: usize, op: AtomicOp);
        /// Block until the scheduler grants ownership of the mutex.
        fn mutex_lock(&self, addr: usize);
        /// One `try_lock` attempt; the scheduler decides (and records)
        /// whether it would succeed. On `true` the caller owns the
        /// mutex at the scheduler level.
        fn mutex_try_lock(&self, addr: usize) -> bool;
        /// Ownership of the mutex is being released.
        fn mutex_unlock(&self, addr: usize);
        /// Condvar wait: the caller has released the real mutex;
        /// blocks until the scheduler has seen a wakeup *and*
        /// re-granted the mutex.
        fn condvar_wait(&self, cv_addr: usize, mutex_addr: usize);
        /// A notify on the condvar at `cv_addr`.
        fn condvar_notify(&self, cv_addr: usize, all: bool);
    }

    #[cfg(feature = "sched-hook")]
    mod enabled {
        use super::SchedHook;
        use std::cell::RefCell;
        use std::sync::Arc;

        thread_local! {
            static HOOK: RefCell<Option<Arc<dyn SchedHook>>> = const { RefCell::new(None) };
        }

        /// Install a scheduler hook for the current thread. Installed
        /// by the model checker on the threads of one checked
        /// execution; never installed in production.
        pub fn install(h: Arc<dyn SchedHook>) {
            HOOK.with(|c| *c.borrow_mut() = Some(h));
        }

        /// Remove the current thread's hook.
        pub fn clear() {
            HOOK.with(|c| *c.borrow_mut() = None);
        }

        /// The current thread's hook, if any. Clones the `Arc` out so
        /// no `RefCell` borrow is held across the (blocking) hook call.
        #[inline]
        pub fn current() -> Option<Arc<dyn SchedHook>> {
            HOOK.with(|c| c.borrow().clone())
        }
    }

    #[cfg(feature = "sched-hook")]
    pub use enabled::{clear, current, install};

    /// Without the `sched-hook` feature there is never a hook: this
    /// constant-`None` inlines away and the shim compiles to plain
    /// forwarding.
    #[cfg(not(feature = "sched-hook"))]
    #[inline(always)]
    pub fn current() -> Option<Arc<dyn SchedHook>> {
        None
    }
}

#[inline]
fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const () as usize
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $int:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// A new atomic with the given initial value.
            pub const fn new(v: $int) -> Self {
                Self { inner: <$std>::new(v) }
            }

            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Load);
                }
                self.inner.load(order)
            }

            #[inline]
            pub fn store(&self, val: $int, order: Ordering) {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Store);
                }
                self.inner.store(val, order)
            }

            #[inline]
            pub fn swap(&self, val: $int, order: Ordering) -> $int {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Rmw);
                }
                self.inner.swap(val, order)
            }

            #[inline]
            pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Rmw);
                }
                self.inner.fetch_add(val, order)
            }

            #[inline]
            pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Rmw);
                }
                self.inner.fetch_sub(val, order)
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Cas);
                }
                self.inner.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                if let Some(h) = hook::current() {
                    h.atomic_op(addr_of(self), hook::AtomicOp::Cas);
                }
                self.inner
                    .compare_exchange_weak(current, new, success, failure)
            }

            /// Exclusive access needs no scheduling point: no other
            /// thread can observe the object.
            #[inline]
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }

            #[inline]
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

int_atomic!(
    /// Shimmed `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
int_atomic!(
    /// Shimmed `std::sync::atomic::AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
int_atomic!(
    /// Shimmed `std::sync::atomic::AtomicU32`.
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);

/// Shimmed `std::sync::atomic::AtomicBool`.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new atomic flag with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Load);
        }
        self.inner.load(order)
    }

    #[inline]
    pub fn store(&self, val: bool, order: Ordering) {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Store);
        }
        self.inner.store(val, order)
    }

    #[inline]
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Rmw);
        }
        self.inner.swap(val, order)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shimmed `std::sync::atomic::AtomicPtr<T>`.
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// A new atomic pointer with the given initial value.
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Load);
        }
        self.inner.load(order)
    }

    #[inline]
    pub fn store(&self, val: *mut T, order: Ordering) {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Store);
        }
        self.inner.store(val, order)
    }

    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Cas);
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        if let Some(h) = hook::current() {
            h.atomic_op(addr_of(self), hook::AtomicOp::Cas);
        }
        self.inner
            .compare_exchange_weak(current, new, success, failure)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shimmed `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]/[`Mutex::try_lock`]. Wraps the
/// `std` guard; `hooked` records whether the acquisition went through
/// a scheduler hook (and must release through it).
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    hooked: bool,
}

impl<T> Mutex<T> {
    /// A new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    fn addr(&self) -> usize {
        addr_of(self)
    }

    /// Acquire the lock, blocking. Mirrors `std::sync::Mutex::lock`,
    /// including poison reporting.
    #[inline]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(h) = hook::current() {
            h.mutex_lock(self.addr());
            // The scheduler admits one owner at a time, so the real
            // mutex is uncontended here.
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            return Ok(MutexGuard {
                mutex: self,
                inner: Some(inner),
                hooked: true,
            });
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                mutex: self,
                inner: Some(g),
                hooked: false,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                mutex: self,
                inner: Some(p.into_inner()),
                hooked: false,
            })),
        }
    }

    /// One non-blocking acquisition attempt. Mirrors
    /// `std::sync::Mutex::try_lock`.
    #[inline]
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if let Some(h) = hook::current() {
            if h.mutex_try_lock(self.addr()) {
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                return Ok(MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    hooked: true,
                });
            }
            return Err(TryLockError::WouldBlock);
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                mutex: self,
                inner: Some(g),
                hooked: false,
            }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(p)) => {
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    mutex: self,
                    inner: Some(p.into_inner()),
                    hooked: false,
                })))
            }
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard holds the lock until dropped"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard holds the lock until dropped"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if self.hooked {
            // A guard dropped while unwinding from a scheduler abort
            // (or any panic on a hooked thread) must not re-enter the
            // scheduler: announcing from a panic path could park a
            // thread that is being torn down.
            if !std::thread::panicking() {
                if let Some(h) = hook::current() {
                    h.mutex_unlock(self.mutex.addr());
                }
            }
        }
        // The std guard in `inner` drops here, releasing the real lock.
    }
}

/// Shimmed `std::sync::Condvar`.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn addr(&self) -> usize {
        addr_of(self)
    }

    /// Atomically release the guard and wait for a notification.
    /// Mirrors `std::sync::Condvar::wait`, including poison reporting.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        if guard.hooked {
            if let Some(h) = hook::current() {
                // Release the real mutex, neutralise the guard's drop
                // (the scheduler-level release is part of the wait),
                // and hand the whole wait/wake/reacquire protocol to
                // the scheduler.
                guard.inner.take();
                guard.hooked = false;
                drop(guard);
                h.condvar_wait(self.addr(), mutex.addr());
                let inner = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
                return Ok(MutexGuard {
                    mutex,
                    inner: Some(inner),
                    hooked: true,
                });
            }
        }
        let std_guard = match guard.inner.take() {
            Some(g) => g,
            // audit:allow(E701): a live MutexGuard always holds its std guard; None is only set on the hooked path that returned above
            None => unreachable!("guard holds the lock until dropped"),
        };
        guard.hooked = false;
        drop(guard);
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(MutexGuard {
                mutex,
                inner: Some(g),
                hooked: false,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                mutex,
                inner: Some(p.into_inner()),
                hooked: false,
            })),
        }
    }

    /// Wake one waiter.
    #[inline]
    pub fn notify_one(&self) {
        if let Some(h) = hook::current() {
            h.condvar_notify(self.addr(), false);
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    #[inline]
    pub fn notify_all(&self) {
        if let Some(h) = hook::current() {
            h.condvar_notify(self.addr(), true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_forward() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(a.load(Ordering::Acquire), 8);
        a.store(1, Ordering::Release);
        assert_eq!(a.swap(2, Ordering::AcqRel), 1);
        assert_eq!(
            a.compare_exchange(2, 9, Ordering::AcqRel, Ordering::Acquire),
            Ok(2)
        );
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
        let mut p = AtomicPtr::<u32>::new(std::ptr::null_mut());
        assert!(p.load(Ordering::Acquire).is_null());
        assert!(p.get_mut().is_null());
    }

    #[test]
    fn mutex_and_condvar_forward() {
        let m = Mutex::new(0u32);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert!(m.try_lock().is_ok());
        let cv = Condvar::new();
        cv.notify_all();
        cv.notify_one();
        assert_eq!(*m.lock().unwrap(), 1);
    }

    #[test]
    fn mutex_blocks_second_owner() {
        let m = Mutex::new(());
        let g = m.lock().unwrap();
        assert!(matches!(m.try_lock(), Err(TryLockError::WouldBlock)));
        drop(g);
        assert!(m.try_lock().is_ok());
    }

    #[test]
    fn poison_is_preserved() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = std::sync::Arc::clone(&m);
        // audit:allow(W405): test-only thread provoking mutex poisoning
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison");
        })
        .join();
        let v = *m.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(v, 7);
    }

    #[test]
    fn condvar_wait_roundtrips_with_notify() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        // audit:allow(W405): test-only thread exercising the wait path
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock().unwrap();
            *started = true;
            cv.notify_all();
            drop(started);
        });
        let (m, cv) = &*pair;
        let mut started = m.lock().unwrap();
        while !*started {
            started = cv.wait(started).unwrap_or_else(|e| e.into_inner());
        }
        t.join().unwrap();
        assert!(*started);
    }
}
