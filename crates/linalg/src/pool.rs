//! Shared chunked thread pool — the process-wide parallel execution
//! substrate.
//!
//! Every parallel code path in the workspace (data-parallel minibatch
//! training, pooled link-prediction evaluation, concurrent candidate
//! evaluation, batched serve scoring) dispatches through one
//! [`ThreadPool`] so the process keeps a single fixed worker set instead
//! of spawning threads at every call site.
//!
//! ## Design
//!
//! - **Fixed worker set, steal-free.** A pool of parallelism `T` owns
//!   `T − 1` parked worker threads; the caller participates as the `T`-th
//!   executor. There are no per-worker deques and no work stealing: a
//!   dispatch publishes one job (an index range `0..tasks`) and all
//!   executors pull the next index from a single shared cursor
//!   (chunked self-scheduling). Which executor runs which index is
//!   scheduling-dependent, so *callers must make per-index work
//!   independent*; every deterministic algorithm built on top (see
//!   `eras-train`'s tree-reduced gradient shards) keys its output on the
//!   index, never on the worker.
//! - **One dispatcher at a time.** The pool has a single job slot, so a
//!   dispatch mutex serialises outer dispatches for the whole
//!   publish → drain → barrier sequence. Any dispatch that cannot take
//!   the mutex — a nested dispatch from inside a pool task, or an
//!   independent OS thread dispatching while another job is live (e.g.
//!   two serve workers batch-scoring concurrently) — degrades to inline
//!   execution on the caller, which is semantically identical because
//!   results are index-keyed. `run` therefore never blocks on another
//!   dispatcher and can never strand a check-in barrier.
//! - **Scoped borrows.** [`ThreadPool::run`] and [`ThreadPool::map`]
//!   accept closures borrowing the caller's stack. The dispatch barrier
//!   (every worker checks in exactly once per job) guarantees no worker
//!   can touch the closure after the call returns, which is what makes
//!   the lifetime erasure in `JobHandle` sound.
//! - **Sizing.** [`ThreadPool::global`] is the process-wide pool, sized
//!   by the `ERAS_THREADS` environment variable with an
//!   `available_parallelism()` fallback.
//!
//! ## Counters
//!
//! Each pool tracks how many jobs were dispatched and how many tasks ran
//! ([`ThreadPool::stats`]). Because the pool is steal-free by
//! construction, `dispatches` doubles as the steal-free dispatch count —
//! there is no slow path to fall back to.

use crate::faults;
use crate::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering};
use eras_obs::metrics::Counter;
use eras_obs::profile::{self, ZoneName};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Profiler zone covering task execution: while a thread (worker or
/// dispatching caller) is draining a job, the obs sampler attributes
/// its wall time here unless a finer span is open inside the task.
static POOL_TASK_ZONE: ZoneName = ZoneName::new("pool.task");

thread_local! {
    /// True while this thread is executing a pool task. A nested
    /// dispatch from inside a task runs inline instead of publishing a
    /// second job: two tasks publishing concurrently would race on the
    /// single job slot and strand one dispatch's check-in barrier.
    /// Inline execution is semantically identical because every
    /// deterministic caller produces index-keyed results. (The dispatch
    /// mutex would catch a nested dispatch too — a worker can never
    /// hold it while the dispatcher does — but this flag skips the
    /// failed `try_lock` and documents the invariant.)
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Snapshot of a pool's dispatch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs published to the pool (each `run`/`map` call is one).
    pub dispatches: u64,
    /// Individual task indices executed across all jobs.
    pub tasks: u64,
    /// Steal-free dispatches. The pool has no stealing path, so this
    /// always equals `dispatches`; it is kept separate so the invariant
    /// is observable.
    pub steal_free_dispatches: u64,
}

/// One published job: a type-erased `Fn(usize)` plus the shared cursor.
struct Job {
    /// Pointer to the caller's closure. Valid for the lifetime of the
    /// dispatch only; the check-in barrier enforces that.
    func: *const (),
    /// Monomorphized trampoline that re-types `func` and calls it.
    call: unsafe fn(*const (), usize),
    /// Number of task indices.
    tasks: usize,
    /// Next unclaimed task index.
    cursor: AtomicUsize,
    /// Set when a task panicked; the dispatching caller re-panics.
    panicked: AtomicBool,
    /// Workers that have not yet finished this job.
    pending: AtomicUsize,
}

// SAFETY: `func` points at a `F: Fn(usize) + Sync` borrowed by the
// dispatching caller, which blocks until every worker has checked in.
unsafe impl Send for Job {}
unsafe impl Sync for Job {} // SAFETY: as above.

/// Pool state shared with workers.
struct Shared {
    /// Current job and its sequence number (bumped per dispatch), plus
    /// the shutdown flag. Workers sleep on `work_cv` until the sequence
    /// number moves past the one they last served.
    slot: Mutex<JobSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Workers that died (unwound out of the worker loop) over the
    /// pool's lifetime. Purely observational; `JobSlot::live` is the
    /// authoritative count dispatches size their barrier with.
    lost_workers: AtomicUsize,
}

struct JobSlot {
    seq: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
    /// Worker threads still serving jobs. A dispatch sizes its check-in
    /// barrier with this count (under the slot lock), so a worker that
    /// died — a panic outside the per-task catch, however unlikely —
    /// can never strand a future dispatch waiting for a check-in that
    /// will not come.
    live: usize,
}

/// A fixed set of worker threads executing chunked parallel-for jobs.
///
/// Parallelism 1 is the degenerate pool: no threads are spawned and
/// every dispatch runs inline on the caller, so sequential and parallel
/// call sites share one code path.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    parallelism: usize,
    /// Owned by the dispatcher for the whole publish → drain → barrier
    /// sequence: the pool has one job slot, so at most one outer
    /// dispatch may be live at a time. Contended dispatches run inline
    /// instead of blocking (see [`ThreadPool::run`]).
    dispatch: Mutex<()>,
    dispatches: AtomicU64,
    tasks: AtomicU64,
    /// Process-wide mirrors of the per-pool counters, registered in the
    /// obs global registry (`pool.*`) so `/metrics` sees every pool.
    /// Handles are resolved once here; the hot path never takes the
    /// registry lock.
    obs_dispatches: Counter,
    obs_tasks: Counter,
    obs_inline: Counter,
}

impl ThreadPool {
    /// Create a pool with the given total parallelism (caller included).
    /// `threads` is clamped to at least 1; a pool of 1 spawns nothing.
    pub fn new(threads: usize) -> ThreadPool {
        let parallelism = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                seq: 0,
                job: None,
                shutdown: false,
                live: parallelism - 1,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            lost_workers: AtomicUsize::new(0),
        });
        let workers = (1..parallelism)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("eras-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker") // audit:allow(E701, W402): startup-time spawn failure is fatal by design
            })
            .collect();
        let registry = eras_obs::metrics::global();
        ThreadPool {
            shared,
            workers,
            parallelism,
            dispatch: Mutex::new(()),
            dispatches: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            obs_dispatches: registry.counter("pool.dispatches"),
            obs_tasks: registry.counter("pool.tasks"),
            obs_inline: registry.counter("pool.inline_dispatches"),
        }
    }

    /// The process-wide shared pool, created on first use. Its size is
    /// `ERAS_THREADS` when set to a positive integer, otherwise
    /// `std::thread::available_parallelism()`.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
    }

    /// Total parallelism (worker threads + the participating caller).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Worker threads lost to a panic outside the per-task catch over
    /// the pool's lifetime (in practice only the chaos harness's
    /// injected worker deaths). The pool keeps dispatching with the
    /// survivors; it never deadlocks on a dead worker's check-in.
    pub fn lost_workers(&self) -> usize {
        self.shared.lost_workers.load(Ordering::Relaxed)
    }

    /// Dispatch counters.
    pub fn stats(&self) -> PoolStats {
        let dispatches = self.dispatches.load(Ordering::Relaxed);
        PoolStats {
            dispatches,
            tasks: self.tasks.load(Ordering::Relaxed),
            steal_free_dispatches: dispatches,
        }
    }

    /// Run `f(i)` for every `i in 0..tasks`, distributing indices across
    /// the pool. Blocks until all tasks have finished. Panics (after all
    /// workers check in) if any task panicked.
    ///
    /// Indices are claimed dynamically, so `f` must not depend on which
    /// executor serves which index.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks as u64, Ordering::Relaxed);
        self.obs_dispatches.inc();
        self.obs_tasks.add(tasks as u64);
        if tasks == 0 {
            return;
        }
        // Degenerate, tiny, or nested dispatch: run inline, skip the
        // barrier. Nested means we are already inside a pool task (see
        // `IN_POOL_TASK`).
        let nested = IN_POOL_TASK.with(Cell::get);
        if self.workers.is_empty() || tasks == 1 || nested {
            if nested {
                self.obs_inline.inc();
            }
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // Claim the single job slot. If another OS thread is mid-
        // dispatch (two serve workers batch-scoring at once, say),
        // publishing over its live job would bump `seq` under workers
        // that had not yet claimed it — they would skip to the new job,
        // never decrement the first job's `pending`, and strand its
        // caller on `done_cv` forever. Contended dispatches run inline
        // instead: semantically identical (results are index-keyed) and
        // the caller makes progress immediately rather than idling.
        let _dispatch = match self.dispatch.try_lock() {
            Ok(guard) => guard,
            // A prior dispatcher panicked after the barrier; the slot
            // itself is back in a sound state (its job was drained).
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.obs_inline.inc();
                for i in 0..tasks {
                    f(i);
                }
                return;
            }
        };

        // SAFETY: caller must pass a `ptr` obtained from `&F` that
        // outlives the call; `run` passes the borrow it holds for the
        // duration of the job.
        unsafe fn trampoline<F: Fn(usize) + Sync>(ptr: *const (), idx: usize) {
            // SAFETY: `ptr` came from `&f` below and `run` blocks until
            // every worker is done with the job, so the borrow is live.
            let f = unsafe { &*(ptr as *const F) };
            f(idx);
        }

        let job = Arc::new(Job {
            func: &f as *const F as *const (),
            call: trampoline::<F>,
            tasks,
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
        });

        {
            let mut slot = lock(&self.shared.slot);
            // Size the barrier with the workers actually alive, read
            // under the same lock a dying worker updates `live` under:
            // a dead worker can neither claim this job nor check in.
            job.pending.store(slot.live, Ordering::Release);
            slot.seq += 1;
            slot.job = Some(Arc::clone(&job));
            self.shared.work_cv.notify_all();
        }

        // The caller is an executor too.
        drain(&job);

        // Barrier: wait until every worker has checked in, so no worker
        // can still hold a pointer into our stack frame when we return.
        let mut slot = lock(&self.shared.slot);
        while job.pending.load(Ordering::Acquire) != 0 {
            slot = self
                .shared
                .done_cv
                .wait(slot)
                .unwrap_or_else(|e| e.into_inner());
        }
        slot.job = None;
        drop(slot);

        if job.panicked.load(Ordering::Acquire) {
            // audit:allow(E701): deliberate re-panic propagating a task panic to the dispatching caller
            panic!("a thread-pool task panicked");
        }
    }

    /// Run `f(i)` for every index and collect the results in index
    /// order. The output order is always `0..tasks` regardless of pool
    /// size or scheduling, which is what the deterministic callers rely
    /// on.
    pub fn map<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        use std::cell::UnsafeCell;
        use std::mem::MaybeUninit;

        struct Slots<T>(Vec<UnsafeCell<MaybeUninit<T>>>);
        // SAFETY: each task index writes exactly its own slot.
        unsafe impl<T: Send> Sync for Slots<T> {}

        let mut slots = Slots(Vec::with_capacity(tasks));
        slots
            .0
            .resize_with(tasks, || UnsafeCell::new(MaybeUninit::uninit()));
        // Capture the `Sync` wrapper, not its (non-Sync) field: edition
        // 2021 closures would otherwise capture `slots.0` directly.
        let slots_ref = &slots;
        self.run(tasks, |i| {
            let value = f(i);
            // SAFETY: index i is claimed by exactly one executor.
            unsafe { (*slots_ref.0[i].get()).write(value) };
        });
        slots
            .0
            .into_iter()
            // SAFETY: `run` returned without panicking, so every slot
            // was initialized by exactly one executor above.
            .map(|c| unsafe { c.into_inner().assume_init() })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.slot);
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock(m: &Mutex<JobSlot>) -> MutexGuard<'_, JobSlot> {
    // A poisoned slot only means a worker panicked while holding the
    // guard; the slot data itself stays structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pull task indices off the job's cursor until it is exhausted.
fn drain(job: &Job) {
    // Attribute this executor's wall time to the pool unless a task
    // opens a finer span; one relaxed load when no profiler is running.
    let _zone = profile::zone(&POOL_TASK_ZONE);
    IN_POOL_TASK.with(|f| f.set(true));
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.tasks {
            break;
        }
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            if faults::check(faults::Site::PoolTask).is_some() {
                // audit:allow(E701): chaos-harness injection point, caught by catch_unwind just above
                panic!("injected fault: pool task panic");
            }
            // SAFETY: the dispatching caller keeps the closure alive
            // until every worker checks in.
            unsafe { (job.call)(job.func, i) }
        }));
        if result.is_err() {
            job.panicked.store(true, Ordering::Release);
        }
    }
    IN_POOL_TASK.with(|f| f.set(false));
}

/// Keeps the pool's live-worker accounting truthful even if the worker
/// thread unwinds: on drop it retires the worker from `JobSlot::live`
/// and, if a job was claimed but not checked in, checks in for it (as
/// panicked — a worker that died mid-job cannot prove it lost nothing)
/// so the dispatching caller is never stranded on the barrier.
struct WorkerGuard<'a> {
    shared: &'a Shared,
    /// The job claimed but not yet checked in, if any.
    current: Option<Arc<Job>>,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.slot);
            slot.live -= 1;
        }
        if std::thread::panicking() {
            self.shared.lost_workers.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(job) = self.current.take() {
            job.panicked.store(true, Ordering::Release);
            if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _slot = lock(&self.shared.slot);
                self.shared.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut served = 0u64;
    let mut guard = WorkerGuard {
        shared,
        current: None,
    };
    loop {
        let job = {
            let mut slot = lock(&shared.slot);
            loop {
                if slot.shutdown {
                    return; // guard drop retires this worker from `live`
                }
                if slot.seq > served {
                    served = slot.seq;
                    break slot.job.clone();
                }
                slot = shared.work_cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(job) = job else { continue };
        guard.current = Some(Arc::clone(&job));
        // Worker-death injection point: a panic here unwinds the whole
        // thread (no per-task catch), exercising the guard above.
        if faults::check(faults::Site::PoolWorker).is_some() {
            // audit:allow(E701): chaos-harness injection point — worker death is the scenario under test
            panic!("injected fault: pool worker death");
        }
        drain(&job);
        // Check in: the last worker out wakes the dispatching caller.
        // Clear the guard first so the check-in happens exactly once.
        guard.current = None;
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _slot = lock(&shared.slot);
            shared.done_cv.notify_all();
        }
    }
}

/// Thread count the global pool is sized with: `ERAS_THREADS` when set
/// to a positive integer, else `available_parallelism()`, else 1.
pub fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("ERAS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
            pool.run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1usize, 3, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_one_task_dispatches() {
        let pool = ThreadPool::new(4);
        pool.run(0, |_| panic!("no tasks to run"));
        let one = pool.map(1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn more_threads_than_tasks() {
        let pool = ThreadPool::new(8);
        let out = pool.map(3, |i| i as u64 + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = ThreadPool::new(3);
        let mut total = 0usize;
        for round in 0..50 {
            let out = pool.map(round % 7 + 1, |i| i);
            total += out.len();
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatches, 50);
        assert_eq!(stats.steal_free_dispatches, 50);
        assert_eq!(stats.tasks as usize, total);
    }

    #[test]
    fn borrows_caller_stack() {
        let pool = ThreadPool::new(4);
        let input: Vec<u64> = (0..1000).collect();
        let doubled = pool.map(input.len(), |i| input[i] * 2);
        assert_eq!(doubled[999], 1998);
    }

    #[test]
    fn task_panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps working.
        assert_eq!(pool.map(4, |i| i).len(), 4);
    }

    #[test]
    fn parallelism_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.parallelism(), 1);
        assert_eq!(pool.map(5, |i| i).len(), 5);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global() as *const ThreadPool;
        let b = ThreadPool::global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(ThreadPool::global().parallelism() >= 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn concurrent_dispatchers_do_not_deadlock() {
        // Regression: two OS threads dispatching at once used to race
        // on the single job slot — the second publish bumped `seq` under
        // workers that had not yet claimed the first job, stranding the
        // first caller on its check-in barrier forever. Contended
        // dispatches must instead run inline and complete.
        let pool = ThreadPool::new(4);
        let dispatchers = 6;
        let rounds = 25;
        let tasks = 64;
        let hits: Vec<AtomicU32> = (0..dispatchers * tasks)
            .map(|_| AtomicU32::new(0))
            .collect();
        std::thread::scope(|s| {
            for d in 0..dispatchers {
                let pool = &pool;
                let hits = &hits;
                s.spawn(move || {
                    for _ in 0..rounds {
                        pool.run(tasks, |i| {
                            hits[d * tasks + i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert!(hits
            .iter()
            .all(|h| h.load(Ordering::Relaxed) == rounds as u32));
        assert_eq!(
            pool.stats().dispatches,
            (dispatchers * rounds) as u64,
            "every dispatch, contended or not, is counted"
        );
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..8 * 16).map(|_| AtomicU32::new(0)).collect();
        pool.run(8, |outer| {
            // A dispatch from inside a pool task must degrade to inline
            // execution instead of publishing a competing job.
            pool.run(16, |inner| {
                hits[outer * 16 + inner].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
