//! Numerically stable softmax / log-softmax / multiclass log-loss.
//!
//! The paper trains embeddings with the multiclass log-loss of Lacroix et
//! al. (1-vs-all over all entities); these kernels implement the forward
//! loss and the `p − y` residual its gradient needs.

/// In-place stable softmax: `x ← exp(x − max) / Σ exp(x − max)`.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Stable `log Σ exp(x)`.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = x.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Multiclass log-loss `−log softmax(scores)[target]` and, in-place, the
/// residual `∂loss/∂scores = softmax(scores) − onehot(target)`.
///
/// Returns the loss; `scores` is overwritten with the residual.
///
/// Single fused pass: the naive `log_sum_exp` + `softmax_inplace`
/// composition exponentiates every score twice; this runs on every
/// training side, so the duplicate exp sweep was measurable. The op
/// order (max scan, exp-and-sum, normalise) matches the composition
/// exactly, so the results are bit-identical to the two-pass form.
pub fn log_loss_and_residual(scores: &mut [f32], target: usize) -> f32 {
    assert!(target < scores.len());
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let target_score = scores[target];
    let mut sum = 0.0f32;
    for v in scores.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let loss = (max + sum.ln()) - target_score;
    let inv = 1.0 / sum;
    for v in scores.iter_mut() {
        *v *= inv;
    }
    scores[target] -= 1.0;
    loss
}

/// Fast `exp` for throughput-bound softmax sweeps.
///
/// Rounds `x/ln 2` to the nearest integer with the `1.5·2²³` magic
/// constant (a `floor`+cast pair defeats the autovectoriser; this is
/// three float ops and two integer ops, all lane-wise), builds `2ⁿ` by
/// bit manipulation, and evaluates a degree-5 polynomial on the reduced
/// argument `|r| ≤ ln 2 / 2`. Max relative error ≈ 4·10⁻⁶ from the
/// polynomial itself; the single-constant reduction adds up to ≈ 10⁻⁵
/// near the ends of the range. Inputs are clamped to `[-87, 88]`, the
/// range where the result is a normal `f32`; softmax arguments
/// (`s − max ≤ 0`) always land inside it.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let x = x.clamp(-87.0, 88.0);
    let z = x * std::f32::consts::LOG2_E + MAGIC;
    let n = z - MAGIC;
    let r = x - n * std::f32::consts::LN_2;
    let pow2 = f32::from_bits(
        z.to_bits()
            .wrapping_sub(0x4B40_0000)
            .wrapping_shl(23)
            .wrapping_add(0x3F80_0000),
    );
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0)))));
    pow2 * p
}

/// Vectorized [`exp_approx`] sweep: `x[i] ← exp_approx(x[i] − shift)`.
///
/// `exp_approx` is a pure lane-wise function (no branches, no table
/// lookups), so the explicit [`crate::vecops::LANES`]-wide chunking is
/// a pure unroll — results are bit-identical to the scalar loop for
/// every input — while giving the autovectoriser a straight-line body
/// of packed float/integer ops to work with. This is the exp sweep of
/// every throughput softmax pass ([`log_loss_exp_scale`]).
// audit:allow(E701): lane index k < LANES over chunks_exact_mut(LANES)
// chunks — statically in bounds
pub fn exp_approx_shifted(xs: &mut [f32], shift: f32) {
    use crate::vecops::LANES;
    let mut ch = xs.chunks_exact_mut(LANES);
    for c in &mut ch {
        for k in 0..LANES {
            c[k] = exp_approx(c[k] - shift);
        }
    }
    for v in ch.into_remainder() {
        *v = exp_approx(*v - shift);
    }
}

/// Multiclass log-loss, vectorised: the throughput variant of
/// [`log_loss_and_residual`] used by the data-parallel trainer.
///
/// Leaves `scores[c]` as the *unnormalised* `exp(s_c − max)` and
/// returns `(loss, 1/Σ)`, so the caller folds the normalisation into
/// its per-row gradient scalar (`resid_c = scores[c]·inv − onehot`)
/// instead of paying a normalisation pass. All three sweeps (max, exp,
/// sum) run in eight independent lanes, and the exponential is
/// [`exp_approx`] — the results differ from the exact kernel by the
/// approximation error (≈ 4·10⁻⁶ relative), but are a deterministic
/// function of the input.
pub fn log_loss_exp_scale(scores: &mut [f32], target: usize) -> (f32, f32) {
    assert!(target < scores.len());
    let mut mx = [f32::NEG_INFINITY; 8];
    let mut ch = scores.chunks_exact(8);
    for x in &mut ch {
        for k in 0..8 {
            mx[k] = mx[k].max(x[k]);
        }
    }
    let mut max = ch
        .remainder()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max);
    for m in mx {
        max = max.max(m);
    }
    let target_score = scores[target];
    // Saturate the shift to the finite range before the fused exp
    // sweep: `exp_approx` clamps its *argument*, but `x − shift` is
    // computed first, and an infinite shift (all-(−∞) scores fold to
    // −∞; one +∞ score folds to +∞) would turn same-signed infinities
    // into NaN before the clamp can help. Identity for finite `max`,
    // so results on ordinary inputs are bit-unchanged.
    let shift = max.clamp(f32::MIN, f32::MAX);
    exp_approx_shifted(scores, shift);
    let mut acc = [0.0f32; 8];
    let mut ch = scores.chunks_exact(8);
    for x in &mut ch {
        for k in 0..8 {
            acc[k] += x[k];
        }
    }
    let mut sum: f32 = ch.remainder().iter().sum();
    sum += ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    ((shift + sum.ln()) - target_score, 1.0 / sum)
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable softplus `log(1 + e^x)` — the logistic loss `ℓ(y·s) = softplus(−y·s)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Self-adversarial negative-sampling loss (the RotatE objective) and,
/// in place, its residual.
///
/// Layout contract: `scores[0]` is the positive triple's score, the
/// rest are the sampled negatives' scores (higher = more plausible).
/// The loss with margin `gamma` is
///
/// ```text
/// L = softplus(−(γ + s₀)) + Σᵢ wᵢ · softplus(γ + sᵢ)
/// ```
///
/// where the negative weights `wᵢ` are uniform `1/k` for
/// `adv_temp == 0` and the *detached* self-adversarial softmax
/// `softmax(adv_temp · sᵢ)` otherwise — detached meaning the weights
/// are treated as constants by the gradient (the standard RotatE
/// stop-gradient), so the residual this kernel leaves behind is
///
/// ```text
/// scores[0] ← σ(γ + s₀) − 1          (positive)
/// scores[i] ← wᵢ · σ(γ + sᵢ)         (negatives)
/// ```
///
/// exactly `∂L/∂sᵢ` of the detached surrogate. Returns the loss. Two
/// sweeps over the negatives (weight normaliser, then residuals), no
/// allocation, stable for any finite scores.
pub fn neg_sampling_loss_and_residual(scores: &mut [f32], gamma: f32, adv_temp: f32) -> f32 {
    assert!(
        scores.len() >= 2,
        "need a positive score and at least one negative"
    );
    let (pos, negs) = scores.split_first_mut().expect("non-empty by assert");
    let xp = gamma + *pos;
    let mut loss = softplus(-xp);
    *pos = sigmoid(xp) - 1.0;
    if adv_temp > 0.0 {
        // Detached softmax weights over `adv_temp · s`, computed with
        // the usual max shift; the normaliser pass then the residual
        // pass recompute the same shifted exp, so no scratch is needed.
        let max = negs.iter().copied().fold(f32::NEG_INFINITY, f32::max) * adv_temp;
        let mut sum = 0.0f32;
        for s in negs.iter() {
            sum += (adv_temp * s - max).exp();
        }
        let inv = 1.0 / sum;
        for s in negs.iter_mut() {
            let w = (adv_temp * *s - max).exp() * inv;
            loss += w * softplus(gamma + *s);
            *s = w * sigmoid(gamma + *s);
        }
    } else {
        let w = 1.0 / negs.len() as f32;
        for s in negs.iter_mut() {
            loss += w * softplus(gamma + *s);
            *s = w * sigmoid(gamma + *s);
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "shift invariance violated");
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let mut x = vec![-1e30f32, 0.0, 1e30];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let x = [0.5f32, -1.0, 2.0, 0.0];
        let naive = x.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&x) - naive).abs() < 1e-5);
    }

    #[test]
    fn log_loss_residual_is_gradient() {
        // Finite-difference check of ∂loss/∂scores.
        let scores = vec![0.3f32, -0.7, 1.2, 0.1];
        let target = 2;
        let mut work = scores.clone();
        let loss = log_loss_and_residual(&mut work, target);
        assert!(loss > 0.0);
        let eps = 1e-3f32;
        for k in 0..scores.len() {
            let mut plus = scores.clone();
            plus[k] += eps;
            let lp = log_sum_exp(&plus) - plus[target];
            let mut minus = scores.clone();
            minus[k] -= eps;
            let lm = log_sum_exp(&minus) - minus[target];
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - work[k]).abs() < 1e-3,
                "residual[{k}] = {} vs fd {}",
                work[k],
                fd
            );
        }
    }

    #[test]
    fn exp_approx_accuracy_and_range() {
        for i in 0..4000 {
            let x = -40.0 + i as f32 * 0.01;
            let rel = (exp_approx(x) as f64 - (x as f64).exp()) / (x as f64).exp();
            assert!(rel.abs() < 1e-5, "exp_approx({x}) off by {rel:.2e}");
        }
        assert_eq!(exp_approx(0.0), 1.0);
        assert!(exp_approx(-1000.0) >= 0.0 && exp_approx(-1000.0) < 1e-37);
        assert!(exp_approx(f32::NEG_INFINITY).is_finite());
    }

    #[test]
    fn log_loss_exp_scale_matches_exact_kernel() {
        let scores = vec![0.3f32, -0.7, 1.2, 0.1, -2.0, 0.9, 0.4, -0.3, 1.9];
        for target in [0usize, 4, 8] {
            let mut exact = scores.clone();
            let exact_loss = log_loss_and_residual(&mut exact, target);
            let mut fast = scores.clone();
            let (loss, inv) = log_loss_exp_scale(&mut fast, target);
            assert!(
                (loss - exact_loss).abs() < 1e-4,
                "loss {loss} vs {exact_loss}"
            );
            for (c, (&e, &f)) in exact.iter().zip(&fast).enumerate() {
                let resid = f * inv - if c == target { 1.0 } else { 0.0 };
                assert!(
                    (resid - e).abs() < 1e-5,
                    "residual[{c}] {resid} vs exact {e}"
                );
            }
        }
    }

    /// Regression bound on the approximation error over the *entire*
    /// clamped input range `[-87, 88]`.
    ///
    /// Two budgets: the polynomial itself is ≈ 4·10⁻⁶, but the
    /// single-constant `ln 2` argument reduction loses bits as `|x|`
    /// grows, so the measured max over this grid is 6.9·10⁻⁶ on the
    /// softmax-relevant half `[-87, 0]` and 1.7·10⁻⁵ over the full
    /// range (worst near +72). Bounds are pinned at ~2× measured; a
    /// kernel change that degrades either fails here.
    #[test]
    fn exp_approx_accuracy_over_full_clamped_range() {
        let mut max_rel_full = 0.0f64;
        let mut max_rel_neg = 0.0f64;
        let steps = 43_750; // 4·10⁻³ spacing over [-87, 88]
        for i in 0..=steps {
            let x = -87.0 + i as f32 * (175.0 / steps as f32);
            let e = (x as f64).exp();
            let rel = ((exp_approx(x) as f64) - e).abs() / e;
            if rel > max_rel_full {
                max_rel_full = rel;
            }
            if x <= 0.0 && rel > max_rel_neg {
                max_rel_neg = rel;
            }
        }
        assert!(max_rel_full < 4e-5, "max relative error {max_rel_full:.3e}");
        assert!(
            max_rel_neg < 1.5e-5,
            "max relative error on [-87, 0]: {max_rel_neg:.3e}"
        );
        // Clamp boundaries stay normal and finite.
        assert!(exp_approx(-87.0) > 0.0 && exp_approx(-87.0).is_normal());
        assert!(exp_approx(88.0).is_finite());
        assert_eq!(exp_approx(-1e9), exp_approx(-87.0));
        assert_eq!(exp_approx(1e9), exp_approx(88.0));
    }

    /// Regression for the saturated shift: infinite score vectors used
    /// to push an infinite `max` into `exp_approx_shifted`, where
    /// `x − shift` produced NaN *before* the argument clamp (the site
    /// the numeric audit pass's kernel checker verifies). The residual
    /// sweep must stay NaN-free for any non-NaN input.
    #[test]
    fn log_loss_exp_scale_infinite_scores_stay_nan_free() {
        // All −∞: max folds to −∞.
        let mut all_neg = vec![f32::NEG_INFINITY; 11];
        let (_, inv) = log_loss_exp_scale(&mut all_neg, 3);
        assert!(all_neg.iter().all(|v| !v.is_nan()), "{all_neg:?}");
        assert!(!inv.is_nan());
        // One +∞ among finite scores: max folds to +∞.
        let mut one_pos: Vec<f32> = (0..11).map(|i| i as f32 * 0.25 - 1.0).collect();
        one_pos[5] = f32::INFINITY;
        let (loss, inv) = log_loss_exp_scale(&mut one_pos, 2);
        assert!(one_pos.iter().all(|v| !v.is_nan()), "{one_pos:?}");
        assert!(!inv.is_nan() && !loss.is_nan());
        // Finite inputs are bit-unchanged by the saturation (identity
        // clamp): compare against the exact kernel as before.
        let scores = vec![0.3f32, -0.7, 1.2, 0.1, -2.0, 0.9, 0.4, -0.3, 1.9];
        let mut exact = scores.clone();
        let exact_loss = log_loss_and_residual(&mut exact, 2);
        let mut fast = scores.clone();
        let (loss, _) = log_loss_exp_scale(&mut fast, 2);
        assert!((loss - exact_loss).abs() < 1e-4);
    }

    #[test]
    fn exp_approx_shifted_matches_scalar_sweep_bitwise() {
        let xs: Vec<f32> = (0..37).map(|i| -5.0 + i as f32 * 0.27).collect();
        for shift in [0.0f32, 1.5, -2.0] {
            let mut fast = xs.clone();
            exp_approx_shifted(&mut fast, shift);
            for (i, (&f, &x)) in fast.iter().zip(&xs).enumerate() {
                assert_eq!(f.to_bits(), exp_approx(x - shift).to_bits(), "i={i}");
            }
        }
    }

    /// Reference forward pass of the *detached* surrogate: weights are
    /// computed at `base` and held fixed while `at` varies — matching
    /// the stop-gradient the kernel's residual implements.
    fn neg_loss_detached(base: &[f32], at: &[f32], gamma: f32, adv_temp: f32) -> f32 {
        let k = base.len() - 1;
        let weights: Vec<f32> = if adv_temp > 0.0 {
            let mut w: Vec<f32> = base[1..].iter().map(|&s| adv_temp * s).collect();
            softmax_inplace(&mut w);
            w
        } else {
            vec![1.0 / k as f32; k]
        };
        let mut loss = softplus(-(gamma + at[0]));
        for (i, &w) in weights.iter().enumerate() {
            loss += w * softplus(gamma + at[1 + i]);
        }
        loss
    }

    #[test]
    fn neg_sampling_residual_is_detached_gradient() {
        let scores = vec![0.4f32, -0.8, 1.1, 0.2, -1.5];
        for adv_temp in [0.0f32, 1.0, 2.5] {
            let gamma = 2.0f32;
            let mut work = scores.clone();
            let loss = neg_sampling_loss_and_residual(&mut work, gamma, adv_temp);
            assert!(loss > 0.0 && loss.is_finite());
            let eps = 1e-3f32;
            for k in 0..scores.len() {
                let mut plus = scores.clone();
                plus[k] += eps;
                let mut minus = scores.clone();
                minus[k] -= eps;
                let fd = (neg_loss_detached(&scores, &plus, gamma, adv_temp)
                    - neg_loss_detached(&scores, &minus, gamma, adv_temp))
                    / (2.0 * eps);
                assert!(
                    (fd - work[k]).abs() < 1e-3,
                    "adv_temp={adv_temp} residual[{k}] = {} vs fd {}",
                    work[k],
                    fd
                );
            }
        }
    }

    #[test]
    fn neg_sampling_adversarial_weights_upweight_hard_negatives() {
        // One negative scores far above the rest: with temperature on,
        // nearly all the negative loss mass lands on it.
        let mut uniform = vec![0.0f32, 3.0, -3.0, -3.0];
        let mut adv = uniform.clone();
        neg_sampling_loss_and_residual(&mut uniform, 1.0, 0.0);
        neg_sampling_loss_and_residual(&mut adv, 1.0, 2.0);
        // residual of the hard negative grows, easy negatives shrink.
        assert!(adv[1] > uniform[1] * 2.0, "{adv:?} vs {uniform:?}");
        assert!(adv[2] < uniform[2], "{adv:?} vs {uniform:?}");
        // Weights sum to one either way: residuals stay bounded by σ.
        assert!(adv.iter().skip(1).all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn neg_sampling_loss_is_stable_at_extreme_scores() {
        let mut big = vec![500.0f32, -500.0, 500.0];
        let loss = neg_sampling_loss_and_residual(&mut big, 12.0, 1.0);
        assert!(loss.is_finite());
        assert!(big.iter().all(|v| v.is_finite()), "{big:?}");
    }

    #[test]
    fn sigmoid_and_softplus_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
        assert!((softplus(50.0) - 50.0).abs() < 1e-3);
        assert!(softplus(-50.0) >= 0.0 && softplus(-50.0) < 1e-6);
    }
}
