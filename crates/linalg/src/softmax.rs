//! Numerically stable softmax / log-softmax / multiclass log-loss.
//!
//! The paper trains embeddings with the multiclass log-loss of Lacroix et
//! al. (1-vs-all over all entities); these kernels implement the forward
//! loss and the `p − y` residual its gradient needs.

/// In-place stable softmax: `x ← exp(x − max) / Σ exp(x − max)`.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
}

/// Stable `log Σ exp(x)`.
pub fn log_sum_exp(x: &[f32]) -> f32 {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = x.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

/// Multiclass log-loss `−log softmax(scores)[target]` and, in-place, the
/// residual `∂loss/∂scores = softmax(scores) − onehot(target)`.
///
/// Returns the loss; `scores` is overwritten with the residual.
pub fn log_loss_and_residual(scores: &mut [f32], target: usize) -> f32 {
    assert!(target < scores.len());
    let lse = log_sum_exp(scores);
    let loss = lse - scores[target];
    softmax_inplace(scores);
    scores[target] -= 1.0;
    loss
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable softplus `log(1 + e^x)` — the logistic loss `ℓ(y·s) = softplus(−y·s)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = vec![1001.0f32, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "shift invariance violated");
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let mut x = vec![-1e30f32, 0.0, 1e30];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let x = [0.5f32, -1.0, 2.0, 0.0];
        let naive = x.iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&x) - naive).abs() < 1e-5);
    }

    #[test]
    fn log_loss_residual_is_gradient() {
        // Finite-difference check of ∂loss/∂scores.
        let scores = vec![0.3f32, -0.7, 1.2, 0.1];
        let target = 2;
        let mut work = scores.clone();
        let loss = log_loss_and_residual(&mut work, target);
        assert!(loss > 0.0);
        let eps = 1e-3f32;
        for k in 0..scores.len() {
            let mut plus = scores.clone();
            plus[k] += eps;
            let lp = log_sum_exp(&plus) - plus[target];
            let mut minus = scores.clone();
            minus[k] -= eps;
            let lm = log_sum_exp(&minus) - minus[target];
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - work[k]).abs() < 1e-3,
                "residual[{k}] = {} vs fd {}",
                work[k],
                fd
            );
        }
    }

    #[test]
    fn sigmoid_and_softplus_stable() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 1e-3);
        assert!((softplus(0.0) - (2.0f32).ln()).abs() < 1e-6);
        assert!((softplus(50.0) - 50.0).abs() < 1e-3);
        assert!(softplus(-50.0) >= 0.0 && softplus(-50.0) < 1e-6);
    }
}
