//! Principal component analysis via power iteration.
//!
//! Used to project relation embeddings to 2-D for the case-study output
//! (the paper's Figures 3/4 discuss how relations group; a 2-D projection
//! makes the EM clusters inspectable in a terminal scatter).

use crate::matrix::Matrix;
use crate::rng::Rng;
use crate::vecops;

/// Result of a PCA fit.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means subtracted before projection.
    pub mean: Vec<f32>,
    /// Principal components, one per row (unit norm).
    pub components: Matrix,
    /// Eigenvalue (explained variance) per component, descending.
    pub explained: Vec<f32>,
}

/// Fit `k` principal components of the rows of `data` by power iteration
/// with deflation. Deterministic given `rng`.
pub fn fit(data: &Matrix, k: usize, rng: &mut Rng) -> Pca {
    let n = data.rows();
    let d = data.cols();
    assert!(n >= 2, "need at least two points");
    let k = k.min(d);

    // Column means.
    let mut mean = vec![0.0f32; d];
    for i in 0..n {
        vecops::axpy(1.0, data.row(i), &mut mean);
    }
    vecops::scale(1.0 / n as f32, &mut mean);

    // Centered data.
    let mut centered = Matrix::zeros(n, d);
    for i in 0..n {
        let row = centered.row_mut(i);
        row.copy_from_slice(data.row(i));
        vecops::axpy(-1.0, &mean, row);
    }

    let mut components = Matrix::zeros(k, d);
    let mut explained = Vec::with_capacity(k);
    let mut work = centered.clone();
    // Scratch buffers for the power iteration, hoisted out of the
    // per-component loop (matvec/matvec_transpose overwrite them).
    let mut v = vec![0.0f32; d];
    let mut xv = vec![0.0f32; n];
    let mut xtxv = vec![0.0f32; d];
    for c in 0..k {
        // Power iteration on Xᵀ X without forming it: v ← Xᵀ(X v).
        for slot in v.iter_mut() {
            *slot = rng.normal();
        }
        let mut eigen = 0.0f32;
        for _ in 0..100 {
            work.matvec(&v, &mut xv);
            work.matvec_transpose(&xv, &mut xtxv);
            let norm = vecops::norm(&xtxv);
            if norm < 1e-12 {
                break;
            }
            eigen = norm;
            vecops::scale(1.0 / norm, &mut xtxv);
            let delta = vecops::dist_sq(&v, &xtxv);
            v.copy_from_slice(&xtxv);
            if delta < 1e-12 {
                break;
            }
        }
        components.row_mut(c).copy_from_slice(&v);
        explained.push(eigen / n as f32);
        // Deflate: remove the component from every row.
        for i in 0..n {
            let row = work.row_mut(i);
            let proj = vecops::dot(row, &v);
            vecops::axpy(-proj, &v, row);
        }
    }

    Pca {
        mean,
        components,
        explained,
    }
}

impl Pca {
    /// Project one point onto the fitted components.
    pub fn project(&self, x: &[f32]) -> Vec<f32> {
        let mut centered = x.to_vec();
        vecops::axpy(-1.0, &self.mean, &mut centered);
        (0..self.components.rows())
            .map(|c| vecops::dot(self.components.row(c), &centered))
            .collect()
    }

    /// Project every row of a matrix.
    pub fn project_all(&self, data: &Matrix) -> Matrix {
        let k = self.components.rows();
        let mut out = Matrix::zeros(data.rows(), k);
        for i in 0..data.rows() {
            let p = self.project(data.row(i));
            out.row_mut(i).copy_from_slice(&p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_follows_the_data_line() {
        // Points along the direction (3, 4)/5 with small orthogonal noise.
        let mut rng = Rng::seed_from_u64(1);
        let mut data = Matrix::zeros(50, 2);
        for i in 0..50 {
            let t = rng.normal() * 5.0;
            let noise = rng.normal() * 0.1;
            data.set(i, 0, 0.6 * t - 0.8 * noise);
            data.set(i, 1, 0.8 * t + 0.6 * noise);
        }
        let pca = fit(&data, 2, &mut rng);
        let c0 = pca.components.row(0);
        // Component is defined up to sign.
        let alignment = (c0[0] * 0.6 + c0[1] * 0.8).abs();
        assert!(alignment > 0.99, "component {c0:?}, alignment {alignment}");
        assert!(pca.explained[0] > 10.0 * pca.explained[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = Rng::seed_from_u64(2);
        let data = Matrix::uniform_init(30, 5, 1.0, &mut rng);
        let pca = fit(&data, 3, &mut rng);
        for a in 0..3 {
            let na = vecops::norm(pca.components.row(a));
            assert!((na - 1.0).abs() < 1e-3, "component {a} norm {na}");
            for b in (a + 1)..3 {
                let dot = vecops::dot(pca.components.row(a), pca.components.row(b));
                assert!(dot.abs() < 1e-2, "components {a},{b} dot {dot}");
            }
        }
    }

    #[test]
    fn projection_recenters() {
        let mut rng = Rng::seed_from_u64(3);
        let mut data = Matrix::zeros(10, 3);
        for i in 0..10 {
            for j in 0..3 {
                data.set(i, j, 100.0 + rng.normal());
            }
        }
        let pca = fit(&data, 2, &mut rng);
        // Mean of projections ≈ 0 (centering worked).
        let proj = pca.project_all(&data);
        for c in 0..2 {
            let mean: f32 = (0..10).map(|i| proj.get(i, c)).sum::<f32>() / 10.0;
            assert!(mean.abs() < 1e-3, "projection mean {mean}");
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let mut rng = Rng::seed_from_u64(4);
        let data = Matrix::uniform_init(40, 6, 1.0, &mut rng);
        let pca = fit(&data, 4, &mut rng);
        for w in pca.explained.windows(2) {
            assert!(w[0] >= w[1] - 1e-4, "{:?}", pca.explained);
        }
    }
}
