//! Symmetry-related features (SRF) for the AutoSF performance predictor.
//!
//! AutoSF ranks candidate structures with a learned predictor over
//! structural features before spending training budget on them (step 4 of
//! Algorithm 1). The features capture the structural properties that
//! correlate with embedding quality: budget, block coverage, and the
//! symmetric / anti-symmetric composition of the grid.

use crate::block_sf::BlockSf;
use crate::expressive;

/// Fixed-width feature vector of a block structure.
#[derive(Debug, Clone, PartialEq)]
pub struct SfFeatures {
    /// Raw feature values, length [`SfFeatures::DIM`].
    pub values: Vec<f64>,
}

impl SfFeatures {
    /// Feature dimensionality.
    pub const DIM: usize = 12;

    /// Feature names, aligned with `values`.
    pub fn names() -> [&'static str; Self::DIM] {
        [
            "nonzero_frac",
            "diag_frac",
            "offdiag_frac",
            "sym_pair_frac",
            "anti_pair_frac",
            "blocks_used_frac",
            "neg_frac",
            "distinct_block_frac",
            "can_sym",
            "can_anti",
            "can_inv",
            "can_general",
        ]
    }
}

/// Extract features from a structure.
pub fn extract(sf: &BlockSf) -> SfFeatures {
    let m = sf.m();
    let cells = (m * m) as f64;
    let nonzero = sf.num_nonzero() as f64;

    let mut diag = 0usize;
    let mut neg = 0usize;
    for (i, j, op) in sf.nonzero_cells() {
        if i == j {
            diag += 1;
        }
        if op.sign() < 0.0 {
            neg += 1;
        }
    }

    // Pairwise structure: for i < j, do cells (i,j) and (j,i) mirror
    // (same op) or anti-mirror (negated op)?
    let mut sym_pairs = 0usize;
    let mut anti_pairs = 0usize;
    let mut active_pairs = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            let a = sf.get(i, j);
            let b = sf.get(j, i);
            if a.is_zero() && b.is_zero() {
                continue;
            }
            active_pairs += 1;
            if a == b {
                sym_pairs += 1;
            } else if a == b.negate() {
                anti_pairs += 1;
            }
        }
    }
    let pair_denom = active_pairs.max(1) as f64;

    let blocks_used = sf.blocks_used().count_ones() as f64;
    let distinct_blocks = {
        let mut seen = std::collections::HashSet::new();
        for (_, _, op) in sf.nonzero_cells() {
            seen.insert(op.block());
        }
        seen.len() as f64
    };

    let e = expressive::analyze(sf);
    let values = vec![
        nonzero / cells,
        diag as f64 / m as f64,
        (nonzero - diag as f64) / cells,
        sym_pairs as f64 / pair_denom,
        anti_pairs as f64 / pair_denom,
        blocks_used / m as f64,
        if nonzero > 0.0 {
            neg as f64 / nonzero
        } else {
            0.0
        },
        distinct_blocks / m as f64,
        f64::from(u8::from(e.symmetric)),
        f64::from(u8::from(e.anti_symmetric)),
        f64::from(u8::from(e.inversion)),
        f64::from(u8::from(e.general_asymmetry)),
    ];
    debug_assert_eq!(values.len(), SfFeatures::DIM);
    SfFeatures { values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical;
    use crate::zoo;
    use eras_linalg::rng::Rng;

    #[test]
    fn dimensions_match() {
        let f = extract(&zoo::distmult(4));
        assert_eq!(f.values.len(), SfFeatures::DIM);
        assert_eq!(SfFeatures::names().len(), SfFeatures::DIM);
    }

    #[test]
    fn distmult_features() {
        let f = extract(&zoo::distmult(4));
        assert!((f.values[0] - 4.0 / 16.0).abs() < 1e-12, "nonzero_frac");
        assert!((f.values[1] - 1.0).abs() < 1e-12, "all-diagonal");
        assert_eq!(f.values[6], 0.0, "no negations");
        assert_eq!(f.values[8], 1.0, "can_sym");
        assert_eq!(f.values[9], 0.0, "can_anti");
    }

    #[test]
    fn complex_features() {
        let f = extract(&zoo::complex());
        assert_eq!(f.values[8], 1.0);
        assert_eq!(f.values[9], 1.0);
        assert_eq!(f.values[10], 1.0);
        assert_eq!(f.values[11], 1.0);
        // ComplEx has two anti-mirrored pairs and no mirrored ones.
        assert_eq!(f.values[3], 0.0);
        assert_eq!(f.values[4], 1.0);
    }

    #[test]
    fn features_bounded() {
        let mut rng = Rng::seed_from_u64(21);
        for _ in 0..50 {
            let sf = BlockSf::random(4, rng.next_below(16), &mut rng);
            let f = extract(&sf);
            for (k, v) in f.values.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(v),
                    "feature {} = {v} out of [0,1]",
                    SfFeatures::names()[k]
                );
            }
        }
    }

    #[test]
    fn sign_flip_invariant_features_mostly_stable() {
        // Expressiveness flags are invariant under the symmetry group.
        let mut rng = Rng::seed_from_u64(23);
        for _ in 0..20 {
            let sf = BlockSf::random(4, 6, &mut rng);
            let mut perm: Vec<usize> = (0..4).collect();
            rng.shuffle(&mut perm);
            let t = canonical::transform(&sf, &perm, 0);
            let fa = extract(&sf);
            let fb = extract(&t);
            for k in 8..12 {
                assert_eq!(fa.values[k], fb.values[k], "flag {k} not invariant");
            }
        }
    }
}
