//! Search-space size accounting.
//!
//! The paper compares spaces by raw size — `O((2M+1)^{M²})` for AutoSF,
//! `O((2M+1)^{N·M²})` for ERAS. The *effective* space is smaller because
//! of the symmetry group (`M! · 2^M` transforms, see [`crate::canonical`])
//! and the degeneracy filter; this module computes both the raw counts and
//! (for small parameters) exact counts of distinct canonical classes,
//! quantifying how much work the searchers' deduplication saves.

use crate::block_sf::BlockSf;
use crate::canonical::canonicalize;
use crate::op::Op;
use std::collections::HashSet;

/// `log10` of the raw number of structures for one scoring function:
/// `(2M+1)^{M²}`.
pub fn raw_size_log10(m: usize) -> f64 {
    (m * m) as f64 * ((2 * m + 1) as f64).log10()
}

/// Raw count of grids with exactly `budget` non-zero cells:
/// `C(M², budget) · (2M)^budget`.
pub fn raw_count_at_budget(m: usize, budget: usize) -> u128 {
    let cells = m * m;
    if budget > cells {
        return 0;
    }
    let mut choose: u128 = 1;
    for i in 0..budget {
        choose = choose * (cells - i) as u128 / (i + 1) as u128;
    }
    choose * (2 * m as u128).pow(budget as u32)
}

/// Exact number of distinct canonical classes among grids with exactly
/// `budget` non-zero cells, by exhaustive enumeration.
///
/// Exponential in `budget`; intended for small parameters (the unit tests
/// use it up to a few thousand raw grids). Panics if the raw count
/// exceeds `limit` to protect callers from accidental blow-ups.
pub fn count_canonical_at_budget(m: usize, budget: usize, limit: u128) -> usize {
    let raw = raw_count_at_budget(m, budget);
    assert!(raw <= limit, "raw count {raw} exceeds safety limit {limit}");
    let cells = m * m;
    let mut classes: HashSet<BlockSf> = HashSet::new();
    // Enumerate cell subsets of the given size, then op assignments.
    let mut subset: Vec<usize> = (0..budget).collect();
    loop {
        // All op assignments for this subset: budget digits base 2M.
        let ops = 2 * m;
        let total = (ops as u64).pow(budget as u32);
        for code in 0..total {
            let mut sf = BlockSf::zeros(m);
            let mut c = code;
            for &cell in &subset {
                let k = (c % ops as u64) as usize;
                c /= ops as u64;
                // k in [0, 2M): map to non-zero ops (skip index 0 = Zero).
                sf.set(cell / m, cell % m, Op::from_index(k + 1, m));
            }
            classes.insert(canonicalize(&sf));
        }
        // Next combination (lexicographic).
        if budget == 0 {
            break;
        }
        let mut i = budget;
        loop {
            if i == 0 {
                return classes.len();
            }
            i -= 1;
            if subset[i] != i + cells - budget {
                break;
            }
            if i == 0 {
                return classes.len();
            }
        }
        subset[i] += 1;
        for j in (i + 1)..budget {
            subset[j] = subset[j - 1] + 1;
        }
    }
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_sizes_match_the_paper() {
        // AutoSF at M=4: (2·4+1)^16 = 9^16 → log10 ≈ 15.3.
        assert!((raw_size_log10(4) - 16.0 * 9f64.log10()).abs() < 1e-12);
        // ERAS at M=4, N=3 is the cube of that (checked in eras-core).
    }

    #[test]
    fn raw_count_at_budget_formula() {
        // M=2, budget 1: 4 cells × 4 ops = 16.
        assert_eq!(raw_count_at_budget(2, 1), 16);
        // M=2, budget 2: C(4,2)=6 subsets × 16 op pairs = 96.
        assert_eq!(raw_count_at_budget(2, 2), 96);
        // Over-full budget is zero.
        assert_eq!(raw_count_at_budget(2, 5), 0);
    }

    #[test]
    fn canonical_classes_single_cell_m2() {
        // One non-zero cell at M=2. The group applies ONE permutation to
        // rows, columns and relation labels simultaneously (the embedding
        // segments are shared by h, r, t), so the invariants of a single
        // cell (i, j) with block b are: diagonal-ness (i == j) and the
        // relative position of b w.r.t. {i, j}. At M=2:
        //   diag, b == i | diag, b != i | offdiag, b == i | offdiag, b == j
        // → 4 classes from 16 raw grids (sign flips absorb ±).
        assert_eq!(count_canonical_at_budget(2, 1, 1_000), 4);
    }

    #[test]
    fn canonical_classes_single_cell_m3() {
        // Same invariants at M=3, where an off-diagonal cell can also use
        // a block outside {i, j}: 2 diagonal + 3 off-diagonal classes = 5
        // from 54 raw grids.
        assert_eq!(count_canonical_at_budget(3, 1, 1_000), 5);
    }

    #[test]
    fn dedup_factor_is_substantial_at_budget_two() {
        let raw = raw_count_at_budget(2, 2) as usize;
        let classes = count_canonical_at_budget(2, 2, 10_000);
        assert!(
            classes < raw / 4,
            "only {raw}/{classes} ≥ 4x dedup expected"
        );
        // And canonicalisation never merges structures with different
        // invariants, so there are at least a handful of classes.
        assert!(classes >= 5, "{classes}");
    }

    #[test]
    #[should_panic]
    fn safety_limit_enforced() {
        let _ = count_canonical_at_budget(4, 8, 1_000);
    }
}
