//! The operation alphabet `O = {0, ±r_1, …, ±r_M}`.

use std::fmt;

/// One operation in a multiplicative item `⟨h_i, o, t_j⟩`.
///
/// `Rel { block, negated }` selects relation block `r_{block+1}` (0-based
/// internally, 1-based in display to match the paper) with an optional
/// sign flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// The zero operation: the item contributes nothing.
    Zero,
    /// `±r_block`.
    Rel {
        /// 0-based relation block index, `< M`.
        block: u8,
        /// True for `−r_block`.
        negated: bool,
    },
}

impl Op {
    /// Positive relation op `+r_{block+1}`.
    #[inline]
    pub fn pos(block: u8) -> Op {
        Op::Rel {
            block,
            negated: false,
        }
    }

    /// Negative relation op `−r_{block+1}`.
    #[inline]
    pub fn neg(block: u8) -> Op {
        Op::Rel {
            block,
            negated: true,
        }
    }

    /// Is this the zero op?
    #[inline]
    pub fn is_zero(self) -> bool {
        matches!(self, Op::Zero)
    }

    /// Multiplicative sign: 0, +1 or −1.
    #[inline]
    pub fn sign(self) -> f32 {
        match self {
            Op::Zero => 0.0,
            Op::Rel { negated: false, .. } => 1.0,
            Op::Rel { negated: true, .. } => -1.0,
        }
    }

    /// The relation block selected, if any.
    #[inline]
    pub fn block(self) -> Option<u8> {
        match self {
            Op::Zero => None,
            Op::Rel { block, .. } => Some(block),
        }
    }

    /// Per-coordinate magnitude bound of this op's factor under a
    /// declared relation-block bound: `|o[k]| ≤ relation_abs` for a
    /// relation op, `0` for [`Op::Zero`]. The numeric certifier's
    /// per-item envelope ([`crate::numeric`]).
    #[inline]
    pub fn abs_factor(self, relation_abs: f64) -> f64 {
        match self {
            Op::Zero => 0.0,
            Op::Rel { .. } => relation_abs,
        }
    }

    /// The op with flipped sign (`-0 = 0`).
    #[inline]
    pub fn negate(self) -> Op {
        match self {
            Op::Zero => Op::Zero,
            Op::Rel { block, negated } => Op::Rel {
                block,
                negated: !negated,
            },
        }
    }

    /// Dense index in `[0, 2M+1)`: `0 ↦ Zero`, `1..=M ↦ +r_k`,
    /// `M+1..=2M ↦ −r_k`. This is the supernet's operation-node index and
    /// the controller's token id.
    #[inline]
    pub fn to_index(self, m: usize) -> usize {
        match self {
            Op::Zero => 0,
            Op::Rel { block, negated } => {
                debug_assert!((block as usize) < m);
                1 + usize::from(block) + if negated { m } else { 0 }
            }
        }
    }

    /// Inverse of [`Op::to_index`]. Panics when `index ≥ 2M+1`.
    // audit:allow(E701): snapshot decode validation; out-of-range op
    // indices fail at load time, never inside a request
    #[inline]
    pub fn from_index(index: usize, m: usize) -> Op {
        assert!(index < 2 * m + 1, "op index {index} out of range for M={m}");
        if index == 0 {
            Op::Zero
        } else if index <= m {
            Op::pos((index - 1) as u8)
        } else {
            Op::neg((index - 1 - m) as u8)
        }
    }

    /// Number of distinct ops for a given `M`.
    #[inline]
    pub fn alphabet_size(m: usize) -> usize {
        2 * m + 1
    }

    /// All ops for a given `M`, in index order.
    pub fn alphabet(m: usize) -> Vec<Op> {
        (0..Self::alphabet_size(m))
            .map(|k| Op::from_index(k, m))
            .collect()
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Zero => write!(f, "  0"),
            Op::Rel { block, negated } => {
                write!(f, "{}r{}", if negated { '-' } else { '+' }, block + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_all_m() {
        for m in 1..=6 {
            for k in 0..Op::alphabet_size(m) {
                let op = Op::from_index(k, m);
                assert_eq!(op.to_index(m), k, "m={m} k={k}");
            }
        }
    }

    #[test]
    fn alphabet_is_complete_and_distinct() {
        let ops = Op::alphabet(4);
        assert_eq!(ops.len(), 9);
        let mut dedup = ops.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 9);
        assert_eq!(ops[0], Op::Zero);
        assert_eq!(ops[1], Op::pos(0));
        assert_eq!(ops[5], Op::neg(0));
    }

    #[test]
    fn signs() {
        assert_eq!(Op::Zero.sign(), 0.0);
        assert_eq!(Op::pos(2).sign(), 1.0);
        assert_eq!(Op::neg(2).sign(), -1.0);
    }

    #[test]
    fn negate_involution() {
        for m in [3usize, 4] {
            for k in 0..Op::alphabet_size(m) {
                let op = Op::from_index(k, m);
                assert_eq!(op.negate().negate(), op);
            }
        }
        assert_eq!(Op::Zero.negate(), Op::Zero);
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Op::from_index(9, 4); // valid: 0..9 for M=4
        let _ = Op::from_index(10, 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Op::pos(0).to_string(), "+r1");
        assert_eq!(Op::neg(3).to_string(), "-r4");
        assert_eq!(Op::Zero.to_string(), "  0");
    }
}
