//! Pretty-printing of block structures (Figures 3 and 4 of the paper).
//!
//! The paper visualises a searched scoring function as its `M × M` grid
//! with `±r_k` entries. [`render_grid`] produces the same view as ASCII,
//! and [`render_group`] adds the relation assignment of a relation-aware
//! set `{f_n}`.

use crate::block_sf::BlockSf;

/// Render a single structure as an ASCII grid, e.g.
///
/// ```text
///        t1   t2   t3   t4
///  h1 | +r1    0    0    0
///  h2 |   0 +r2    0    0
///  h3 |   0    0 +r3    0
///  h4 |   0    0    0 +r4
/// ```
pub fn render_grid(sf: &BlockSf) -> String {
    let m = sf.m();
    let mut out = String::new();
    out.push_str("      ");
    for j in 0..m {
        out.push_str(&format!("  t{:<2}", j + 1));
    }
    out.push('\n');
    for i in 0..m {
        out.push_str(&format!(" h{:<2}|", i + 1));
        for j in 0..m {
            out.push_str(&format!(" {:>4}", sf.get(i, j).to_string().trim_start()));
        }
        out.push('\n');
    }
    out
}

/// Render a compact one-line formula.
///
/// ```
/// use eras_sf::{render, zoo};
/// assert_eq!(
///     render::render_formula(&zoo::distmult(2)),
///     "f = <h1,r1,t1> + <h2,r2,t2>"
/// );
/// ```
pub fn render_formula(sf: &BlockSf) -> String {
    let mut parts = Vec::new();
    for (i, j, op) in sf.nonzero_cells() {
        let sign = if op.sign() >= 0.0 { '+' } else { '-' };
        let block = op.block().expect("nonzero cell") + 1;
        parts.push(format!("{sign} <h{},r{},t{}>", i + 1, block, j + 1));
    }
    if parts.is_empty() {
        return "f = 0".into();
    }
    let joined = parts.join(" ");
    // Drop a leading "+ " for readability.
    let cleaned = joined.strip_prefix("+ ").unwrap_or(&joined);
    format!("f = {cleaned}")
}

/// Render a relation-aware group: the group's structure plus the names of
/// the relations assigned to it.
pub fn render_group(group_index: usize, sf: &BlockSf, relation_names: &[&str]) -> String {
    let mut out = format!("=== group {} ===\n", group_index + 1);
    out.push_str(&render_formula(sf));
    out.push('\n');
    out.push_str(&render_grid(sf));
    out.push_str("relations: ");
    if relation_names.is_empty() {
        out.push_str("(none)");
    } else {
        out.push_str(&relation_names.join(", "));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn grid_has_m_plus_one_lines() {
        let s = render_grid(&zoo::distmult(4));
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("+r1"));
        assert!(s.contains("h4"));
        assert!(s.contains("t4"));
    }

    #[test]
    fn formula_of_distmult() {
        let s = render_formula(&zoo::distmult(2));
        assert_eq!(s, "f = <h1,r1,t1> + <h2,r2,t2>");
    }

    #[test]
    fn formula_shows_negations() {
        let s = render_formula(&zoo::complex());
        assert!(s.contains("- <h2,r2,t1>"), "{s}");
    }

    #[test]
    fn empty_formula() {
        assert_eq!(render_formula(&BlockSf::zeros(3)), "f = 0");
    }

    #[test]
    fn group_rendering_includes_relations() {
        let s = render_group(0, &zoo::simple(), &["hypernym", "hyponym"]);
        assert!(s.contains("group 1"));
        assert!(s.contains("hypernym, hyponym"));
        let empty = render_group(2, &zoo::simple(), &[]);
        assert!(empty.contains("(none)"));
    }
}
