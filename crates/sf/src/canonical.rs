//! Canonicalisation under the search space's symmetry group.
//!
//! Two block structures define the same *family* of scoring functions when
//! one can be turned into the other by relabelling things the training
//! procedure is free to absorb into the embeddings:
//!
//! 1. **Simultaneous block permutation** `π ∈ S_M`: renaming the M
//!    embedding segments of `h`, `r` and `t` together (`h_i → h_{π(i)}`,
//!    etc.) permutes rows, columns and relation-block labels of the grid.
//! 2. **Per-block relation sign flips** `σ ∈ {±1}^M`: replacing `r_b` by
//!    `−r_b` flips the sign of every cell that uses block `b`.
//!
//! AutoSF uses exactly these invariances to prune duplicate candidates;
//! the canonical form here is the lexicographically smallest op-index
//! encoding over the whole group (`M! · 2^M` elements — 384 for M = 4).

use crate::block_sf::BlockSf;
use crate::op::Op;

/// Generate all permutations of `0..m` (Heap's algorithm).
fn permutations(m: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut items: Vec<usize> = (0..m).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(m, &mut items, &mut result);
    result
}

/// Apply a block permutation `π` (rows, columns and relation labels
/// simultaneously) and a sign-flip vector to a structure.
pub fn transform(sf: &BlockSf, perm: &[usize], flips: u32) -> BlockSf {
    let m = sf.m();
    debug_assert_eq!(perm.len(), m);
    let mut out = BlockSf::zeros(m);
    for i in 0..m {
        for j in 0..m {
            let op = sf.get(i, j);
            let new_op = match op {
                Op::Zero => Op::Zero,
                Op::Rel { block, negated } => {
                    let new_block = perm[block as usize] as u8;
                    let flip = (flips >> new_block) & 1 == 1;
                    Op::Rel {
                        block: new_block,
                        negated: negated ^ flip,
                    }
                }
            };
            out.set(perm[i], perm[j], new_op);
        }
    }
    out
}

/// Canonical representative of the structure's equivalence class: the
/// transform with the lexicographically smallest op-index encoding.
pub fn canonicalize(sf: &BlockSf) -> BlockSf {
    let m = sf.m();
    let mut best: Option<(Vec<usize>, BlockSf)> = None;
    for perm in permutations(m) {
        for flips in 0..(1u32 << m) {
            let candidate = transform(sf, &perm, flips);
            let key = candidate.to_indices();
            match &best {
                Some((best_key, _)) if *best_key <= key => {}
                _ => best = Some((key, candidate)),
            }
        }
    }
    best.expect("group is non-empty").1
}

/// Are two structures equivalent under the symmetry group?
pub fn equivalent(a: &BlockSf, b: &BlockSf) -> bool {
    if a.m() != b.m() || a.num_nonzero() != b.num_nonzero() {
        return false;
    }
    canonicalize(a) == canonicalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use eras_linalg::rng::Rng;

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        // All distinct.
        let mut p = permutations(4);
        p.sort();
        p.dedup();
        assert_eq!(p.len(), 24);
    }

    #[test]
    fn identity_transform_is_identity() {
        let sf = zoo::complex();
        let id: Vec<usize> = (0..4).collect();
        assert_eq!(transform(&sf, &id, 0), sf);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..30 {
            let sf = BlockSf::random(4, 5, &mut rng);
            let c = canonicalize(&sf);
            assert_eq!(canonicalize(&c), c);
        }
    }

    #[test]
    fn transformed_structures_are_equivalent() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..20 {
            let sf = BlockSf::random(4, 6, &mut rng);
            let perm = {
                let mut p: Vec<usize> = (0..4).collect();
                rng.shuffle(&mut p);
                p
            };
            let flips = (rng.next_u64() & 0xF) as u32;
            let transformed = transform(&sf, &perm, flips);
            assert!(equivalent(&sf, &transformed));
            assert_eq!(canonicalize(&sf), canonicalize(&transformed));
        }
    }

    #[test]
    fn inequivalent_structures_detected() {
        // DistMult (4 cells, symmetric) vs SimplE (4 cells, asymmetric).
        assert!(!equivalent(&zoo::distmult(4), &zoo::simple()));
        // Different budgets shortcut.
        assert!(!equivalent(&zoo::distmult(4), &zoo::complex()));
    }

    #[test]
    fn invariants_preserved_by_transform() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..20 {
            let sf = BlockSf::random(4, 7, &mut rng);
            let mut perm: Vec<usize> = (0..4).collect();
            rng.shuffle(&mut perm);
            let t = transform(&sf, &perm, 0b1010);
            assert_eq!(t.num_nonzero(), sf.num_nonzero());
            assert_eq!(t.uses_all_blocks(), sf.uses_all_blocks());
            assert_eq!(t.is_degenerate(), sf.is_degenerate());
            assert_eq!(
                t.is_structurally_symmetric(),
                sf.is_structurally_symmetric(),
            );
        }
    }

    #[test]
    fn sign_flip_only_changes_signs() {
        let sf = zoo::distmult(4);
        let id: Vec<usize> = (0..4).collect();
        let flipped = transform(&sf, &id, 0b1111);
        for i in 0..4 {
            assert_eq!(flipped.get(i, i), Op::neg(i as u8));
        }
        // And it is equivalent to the original.
        assert!(equivalent(&sf, &flipped));
    }
}
