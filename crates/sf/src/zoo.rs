//! Canonical block encodings of the human-designed bilinear models.
//!
//! AutoSF's key observation (Section II-B of the paper) is that DistMult,
//! ComplEx, SimplE and Analogy are all points in the block search space.
//! These constructors reproduce the published encodings; the unit tests
//! pin each one's structural properties (budget, symmetry, expressiveness
//! is checked in `expressive.rs`).

use crate::block_sf::BlockSf;
use crate::op::Op;

/// DistMult (Yang et al., 2015): `g(r) = diag(r)` — the diagonal grid
/// `(i,i) ↦ +r_i`. Structurally symmetric, so it can only model symmetric
/// relations.
pub fn distmult(m: usize) -> BlockSf {
    let mut sf = BlockSf::zeros(m);
    for i in 0..m {
        sf.set(i, i, Op::pos(i as u8));
    }
    sf
}

/// ComplEx (Trouillon et al., 2017) at `M = 4`: two independent complex
/// planes, blocks (1,2) and (3,4):
///
/// ```text
/// Re⟨(h₁+ih₂)(r₁+ir₂)conj(t₁+it₂)⟩ = ⟨h₁,r₁,t₁⟩+⟨h₂,r₁,t₂⟩+⟨h₁,r₂,t₂⟩−⟨h₂,r₂,t₁⟩
/// ```
pub fn complex() -> BlockSf {
    let mut sf = BlockSf::zeros(4);
    // First complex plane on blocks {0, 1} with relation blocks {0, 1}.
    sf.set(0, 0, Op::pos(0));
    sf.set(1, 1, Op::pos(0));
    sf.set(0, 1, Op::pos(1));
    sf.set(1, 0, Op::neg(1));
    // Second plane on blocks {2, 3} with relation blocks {2, 3}.
    sf.set(2, 2, Op::pos(2));
    sf.set(3, 3, Op::pos(2));
    sf.set(2, 3, Op::pos(3));
    sf.set(3, 2, Op::neg(3));
    sf
}

/// SimplE (Kazemi & Poole, 2018) at `M = 4`: entities carry head-role and
/// tail-role halves, relations a forward and an inverse half; the score
/// couples them crosswise.
pub fn simple() -> BlockSf {
    let mut sf = BlockSf::zeros(4);
    sf.set(0, 1, Op::pos(0));
    sf.set(1, 0, Op::pos(1));
    sf.set(2, 3, Op::pos(2));
    sf.set(3, 2, Op::pos(3));
    sf
}

/// Analogy (Liu et al., 2017) at `M = 4`: half DistMult (blocks 1–2), half
/// ComplEx (blocks 3–4).
pub fn analogy() -> BlockSf {
    let mut sf = BlockSf::zeros(4);
    sf.set(0, 0, Op::pos(0));
    sf.set(1, 1, Op::pos(1));
    sf.set(2, 2, Op::pos(2));
    sf.set(3, 3, Op::pos(2));
    sf.set(2, 3, Op::pos(3));
    sf.set(3, 2, Op::neg(3));
    sf
}

/// Every zoo member at `M = 4`, with its display name.
pub fn all_m4() -> Vec<(&'static str, BlockSf)> {
    vec![
        ("DistMult", distmult(4)),
        ("ComplEx", complex()),
        ("SimplE", simple()),
        ("Analogy", analogy()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_match_published_structures() {
        assert_eq!(distmult(4).num_nonzero(), 4);
        assert_eq!(complex().num_nonzero(), 8);
        assert_eq!(simple().num_nonzero(), 4);
        assert_eq!(analogy().num_nonzero(), 6);
    }

    #[test]
    fn distmult_is_symmetric_others_are_not() {
        assert!(distmult(4).is_structurally_symmetric());
        assert!(!complex().is_structurally_symmetric());
        assert!(!simple().is_structurally_symmetric());
        assert!(!analogy().is_structurally_symmetric());
    }

    #[test]
    fn all_use_every_block_and_are_not_degenerate() {
        for (name, sf) in all_m4() {
            assert!(sf.uses_all_blocks(), "{name} does not use all blocks");
            assert!(!sf.is_degenerate(), "{name} is degenerate");
        }
    }

    #[test]
    fn zoo_members_are_pairwise_distinct() {
        let sfs = all_m4();
        for i in 0..sfs.len() {
            for j in i + 1..sfs.len() {
                assert_ne!(sfs[i].1, sfs[j].1, "{} == {}", sfs[i].0, sfs[j].0);
            }
        }
    }

    #[test]
    fn simple_transpose_swaps_role_blocks() {
        // SimplE's transpose is SimplE with relation blocks swapped — the
        // inversion structure that makes it cover inverse relations.
        let t = simple().transposed();
        assert_eq!(t.get(1, 0), Op::pos(0));
        assert_eq!(t.get(0, 1), Op::pos(1));
    }

    #[test]
    fn distmult_any_m() {
        for m in 1..=6 {
            let sf = distmult(m);
            assert_eq!(sf.num_nonzero(), m);
            assert!(sf.uses_all_blocks());
        }
    }
}
