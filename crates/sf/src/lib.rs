//! # eras-sf
//!
//! The scoring-function DSL shared by AutoSF and ERAS.
//!
//! Both searchers operate in the block bilinear space of AutoSF (Eq. 1 of
//! the paper): embeddings `h, r, t ∈ R^d` are split into `M` equal blocks
//! and a scoring function is an `M × M` grid of operations
//!
//! ```text
//! f(h, r, t) = Σ_{i,j} ⟨h_i, o_{ij}, t_j⟩,   o_{ij} ∈ {0, ±r_1, …, ±r_M}
//! ```
//!
//! This crate provides:
//!
//! - [`op::Op`] — the operation alphabet with its dense index encoding
//!   (`2M + 1` symbols) used by the supernet and the controller;
//! - [`BlockSf`] — the grid itself, plus structural queries (non-zero
//!   count, blocks used, transpose) used throughout search;
//! - [`zoo`] — canonical [`BlockSf`] encodings of DistMult, ComplEx,
//!   SimplE and Analogy, the human-designed functions the space
//!   generalises (Section II-B);
//! - [`expressive`] — exact algebraic tests for whether a structure *can*
//!   model symmetry / anti-symmetry / inversion / general asymmetry
//!   (Table I's "expressive" column), via nullspace computations on the
//!   per-block scalar algebra;
//! - [`canonical`] — canonicalisation under the space's symmetry group
//!   (simultaneous block permutation + per-block sign flips), used to
//!   deduplicate candidates during search;
//! - [`numeric`] — abstract interpretation of the DSL: guaranteed
//!   score/gradient intervals under declared embedding-norm bounds
//!   ([`numeric::certify`]), backing the `eras audit --pass numeric`
//!   certifier and the search-time static pruning filter;
//! - [`features`] — the symmetry-related structural features the AutoSF
//!   predictor ranks candidates with;
//! - [`render`] — the grid pretty-printer behind Figures 3 and 4;
//! - [`space`] — raw and canonical search-space size accounting.

// Indexed loops are the clearer idiom for the small dense matrices in
// the expressiveness analysis.
#![allow(clippy::needless_range_loop)]

pub mod block_sf;
pub mod canonical;
pub mod expressive;
pub mod features;
pub mod numeric;
pub mod op;
pub mod render;
pub mod space;
pub mod zoo;

pub use block_sf::BlockSf;
pub use expressive::Expressiveness;
pub use numeric::NormBounds;
pub use op::Op;
